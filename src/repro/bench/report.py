"""Versioned machine-readable bench results + regression comparison.

``BENCH_<suite>.json`` documents carry a format/version pair, an
environment capture, the scenario identity table (name → content hash),
and one entry per case with raw timings, median/IQR, evals/sec, and the
case's own metrics.  :func:`compare` diffs two documents: a case whose
median slowed beyond the threshold is a **regression**, a scenario
whose hash changed is **drift** (timings of different instances are not
comparable), and both make ``repro bench compare`` exit non-zero — the
regression gate every subsequent performance PR runs against the
previous trajectory point.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.bench.harness import SuiteRun
from repro.errors import ConfigurationError

RESULTS_FORMAT = "bench-results"
RESULTS_VERSION = 1

#: A case counts as regressed when ``new_median > threshold * old_median``.
DEFAULT_SLOWDOWN_THRESHOLD = 1.3

#: ...and the absolute slowdown also exceeds this floor.  Millisecond
#: cases jitter by double-digit percentages on shared machines; a
#: ratio-only gate would flag them constantly while a 30% slowdown of a
#: minutes-long sweep (the regressions that matter) clears any floor.
DEFAULT_MIN_DELTA_S = 0.05


# ----------------------------------------------------------------------
# results documents
# ----------------------------------------------------------------------
def capture_environment() -> Dict[str, Any]:
    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def results_document(
    suite_run: SuiteRun,
    environment: Optional[Dict[str, Any]] = None,
    created_unix: Optional[float] = None,
) -> Dict[str, Any]:
    context = suite_run.context
    return {
        "format": RESULTS_FORMAT,
        "version": RESULTS_VERSION,
        "suite": suite_run.suite,
        "created_unix": time.time() if created_unix is None else created_unix,
        "environment": (
            capture_environment() if environment is None else environment
        ),
        "context": {
            "jobs": context.jobs,
            "repeats": context.repeats,
            "warmup": context.warmup,
            "evals": context.evals,
            "iterations": context.iterations,
            "runs": context.runs,
            "seed": context.seed,
        },
        "scenarios": suite_run.scenarios,
        "cases": [
            {
                "name": result.name,
                "suites": list(result.suites),
                "scenarios": list(result.scenarios),
                "timings_s": result.timings_s,
                "median_s": result.median_s,
                "iqr_s": result.iqr_s,
                "evals_per_sec": result.evals_per_sec,
                "metrics": result.metrics,
            }
            for result in suite_run.results
        ],
    }


def validate_results(document: Dict[str, Any]) -> None:
    """Schema check: loud failure beats silently comparing junk."""
    if document.get("format") != RESULTS_FORMAT:
        raise ConfigurationError(
            f"expected a {RESULTS_FORMAT!r} document, "
            f"got {document.get('format')!r}"
        )
    if document.get("version") != RESULTS_VERSION:
        raise ConfigurationError(
            f"unsupported results version {document.get('version')!r}"
        )
    for key in ("suite", "environment", "scenarios", "cases"):
        if key not in document:
            raise ConfigurationError(f"results document lacks {key!r}")
    if not isinstance(document["cases"], list):
        raise ConfigurationError("'cases' must be a list")
    for entry in document["cases"]:
        for key in ("name", "timings_s", "median_s", "metrics"):
            if key not in entry:
                raise ConfigurationError(
                    f"case entry {entry.get('name', '?')!r} lacks {key!r}"
                )
    for name, descriptor in document["scenarios"].items():
        if "hash" not in descriptor:
            raise ConfigurationError(f"scenario {name!r} lacks its hash")


def write_results(document: Dict[str, Any], path: str) -> None:
    validate_results(document)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_results(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        document = json.load(handle)
    validate_results(document)
    return document


# ----------------------------------------------------------------------
# comparison / regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaseDelta:
    name: str
    old_median_s: float
    new_median_s: float
    ratio: float
    status: str  # "ok" | "regression" | "improved"


@dataclass
class Comparison:
    threshold: float
    deltas: List[CaseDelta] = field(default_factory=list)
    scenario_drift: List[str] = field(default_factory=list)
    missing_cases: List[str] = field(default_factory=list)
    new_cases: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[CaseDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.scenario_drift

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for ``repro bench compare --json``."""
        return {
            "ok": self.ok,
            "threshold": self.threshold,
            "deltas": [
                {
                    "name": d.name,
                    "old_median_s": d.old_median_s,
                    "new_median_s": d.new_median_s,
                    "ratio": d.ratio,
                    "status": d.status,
                }
                for d in self.deltas
            ],
            "scenario_drift": list(self.scenario_drift),
            "missing_cases": list(self.missing_cases),
            "new_cases": list(self.new_cases),
        }


def compare(
    old: Dict[str, Any],
    new: Dict[str, Any],
    threshold: float = DEFAULT_SLOWDOWN_THRESHOLD,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> Comparison:
    """Diff two results documents case-by-case.

    A case regresses when its new median exceeds ``threshold ×`` the
    old one **and** the absolute slowdown exceeds ``min_delta_s`` (the
    noise floor for sub-millisecond cases); the symmetric bounds report
    it improved.  Scenario-hash drift is always a failure regardless of
    timing — timings of different instances are not comparable.
    """
    validate_results(old)
    validate_results(new)
    if threshold <= 1.0:
        raise ConfigurationError("threshold must be > 1.0")
    if min_delta_s < 0.0:
        raise ConfigurationError("min_delta_s must be >= 0")
    if old["suite"] != new["suite"]:
        raise ConfigurationError(
            f"cannot compare suite {old['suite']!r} against "
            f"{new['suite']!r}: medians from different suites measure "
            "different workloads"
        )
    old_context = old.get("context", {})
    new_context = new.get("context", {})
    mismatched = sorted(
        key
        for key in set(old_context) | set(new_context)
        if old_context.get(key) != new_context.get(key)
    )
    if mismatched:
        raise ConfigurationError(
            "cannot compare runs with different measurement contexts "
            f"(differing knobs: {mismatched}); re-run both sides with "
            "the same bench settings"
        )
    old_cases = {entry["name"]: entry for entry in old["cases"]}
    new_cases = {entry["name"]: entry for entry in new["cases"]}
    comparison = Comparison(threshold=threshold)
    comparison.missing_cases = sorted(set(old_cases) - set(new_cases))
    comparison.new_cases = sorted(set(new_cases) - set(old_cases))
    for name in sorted(set(old_cases) & set(new_cases)):
        old_median = float(old_cases[name]["median_s"])
        new_median = float(new_cases[name]["median_s"])
        if old_median <= 0.0:
            continue  # degenerate timing: nothing meaningful to gate on
        ratio = new_median / old_median
        if ratio > threshold and new_median - old_median > min_delta_s:
            status = "regression"
        elif ratio < 1.0 / threshold and old_median - new_median > min_delta_s:
            status = "improved"
        else:
            status = "ok"
        comparison.deltas.append(
            CaseDelta(
                name=name,
                old_median_s=old_median,
                new_median_s=new_median,
                ratio=ratio,
                status=status,
            )
        )
    old_hashes = {
        name: descriptor["hash"]
        for name, descriptor in old["scenarios"].items()
    }
    for name, descriptor in new["scenarios"].items():
        if name in old_hashes and descriptor["hash"] != old_hashes[name]:
            comparison.scenario_drift.append(name)
    comparison.scenario_drift.sort()
    return comparison


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def format_results_table(document: Dict[str, Any]) -> str:
    """Markdown table of one results document."""
    lines = [
        f"### bench suite `{document['suite']}` "
        f"({len(document['cases'])} cases, "
        f"{len(document['scenarios'])} scenarios)",
        "",
        "| case | median | IQR | evals/sec |",
        "|---|---:|---:|---:|",
    ]
    for entry in document["cases"]:
        evals = entry.get("evals_per_sec")
        lines.append(
            f"| {entry['name']} | {_format_seconds(entry['median_s'])} "
            f"| {_format_seconds(entry.get('iqr_s', 0.0))} "
            f"| {f'{evals:,.0f}' if evals else '—'} |"
        )
    return "\n".join(lines)


def format_comparison(comparison: Comparison) -> str:
    """Markdown regression report for ``repro bench compare``."""
    lines = [
        "### bench comparison "
        f"(slowdown threshold {comparison.threshold:.2f}x)",
        "",
        "| case | old | new | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for delta in comparison.deltas:
        marker = {"regression": "**REGRESSION**", "improved": "improved"}.get(
            delta.status, "ok"
        )
        lines.append(
            f"| {delta.name} | {_format_seconds(delta.old_median_s)} "
            f"| {_format_seconds(delta.new_median_s)} "
            f"| {delta.ratio:.2f}x | {marker} |"
        )
    if comparison.scenario_drift:
        lines.append("")
        lines.append(
            "**scenario drift** (instance hash changed — timings not "
            "comparable): " + ", ".join(comparison.scenario_drift)
        )
    if comparison.missing_cases:
        lines.append("")
        lines.append("missing in new run: " + ", ".join(comparison.missing_cases))
    if comparison.new_cases:
        lines.append("")
        lines.append("new cases: " + ", ".join(comparison.new_cases))
    lines.append("")
    lines.append(
        "verdict: "
        + ("OK" if comparison.ok else
           f"{len(comparison.regressions)} regression(s), "
           f"{len(comparison.scenario_drift)} drifted scenario(s)")
    )
    return "\n".join(lines)
