"""Scenario corpus + benchmark harness with machine-readable results.

Layers (each usable on its own):

* :mod:`repro.bench.corpus` — named, seed-deterministic scenario
  families; every scenario materializes to a hashed
  :class:`~repro.io.ProblemInstance`.
* :mod:`repro.bench.harness` — the :class:`BenchCase` protocol, case
  registry, and warmup/repeat timing with median/IQR and evals/sec.
* :mod:`repro.bench.report` — versioned ``BENCH_<suite>.json`` results
  documents and the ``compare()`` regression gate.
* :mod:`repro.bench.suites` — the registered cases (corpus throughput
  grid, multi-seed search, and the 14 ported benchmark scripts),
  grouped into ``quick``/``full`` suites.

CLI: ``repro bench run|list|compare``.
"""

from repro.bench.corpus import (
    ARCHITECTURE_REGIMES,
    CORPUS,
    FAMILIES,
    Scenario,
    corpus_table,
    get_scenario,
    iter_scenarios,
    register_family,
    scenario,
    scenario_hash,
)
from repro.bench.harness import (
    ENGINES,
    BenchCase,
    BenchContext,
    CaseResult,
    FunctionCase,
    SuiteRun,
    bench_case,
    context_for_suite,
    get_case,
    list_cases,
    move_eval_loop,
    register_case,
    run_case,
    run_suite,
)
from repro.bench.report import (
    DEFAULT_SLOWDOWN_THRESHOLD,
    CaseDelta,
    Comparison,
    capture_environment,
    compare,
    format_comparison,
    format_results_table,
    load_results,
    results_document,
    validate_results,
    write_results,
)
from repro.bench import suites  # noqa: F401  (registers the cases)

__all__ = [
    "ARCHITECTURE_REGIMES",
    "CORPUS",
    "FAMILIES",
    "Scenario",
    "corpus_table",
    "get_scenario",
    "iter_scenarios",
    "register_family",
    "scenario",
    "scenario_hash",
    "ENGINES",
    "BenchCase",
    "BenchContext",
    "CaseResult",
    "FunctionCase",
    "SuiteRun",
    "bench_case",
    "context_for_suite",
    "get_case",
    "list_cases",
    "move_eval_loop",
    "register_case",
    "run_case",
    "run_suite",
    "DEFAULT_SLOWDOWN_THRESHOLD",
    "CaseDelta",
    "Comparison",
    "capture_environment",
    "compare",
    "format_comparison",
    "format_results_table",
    "load_results",
    "results_document",
    "validate_results",
    "write_results",
    "suites",
]
