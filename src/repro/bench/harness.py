"""Benchmark case protocol, registry, and timing harness.

A :class:`BenchCase` is prepared once (untimed: build instances, wire
evaluators), then its ``run`` is executed ``warmup`` times untimed and
``repeats`` times timed; the harness reports the median and
inter-quartile range of the wall-clock samples plus an evaluations/sec
counter whenever the case's metrics carry an ``"evaluations"`` count.
Cases that need multi-seed statistics submit their replicates through
the :mod:`repro.search.runner` (``jobs=N`` worker processes), so one
``--jobs`` knob parallelizes the whole suite's inner experiments
without changing any result bit.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.bench.corpus import CORPUS, Scenario, get_scenario, scenario_hash
from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.io import ProblemInstance
from repro.mapping.compiled import compile_instance
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.sa.moves import MoveGenerator

#: The evaluation engines every throughput scenario is measured under.
ENGINES = ("full", "incremental", "array")


# ----------------------------------------------------------------------
# context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchContext:
    """Execution knobs shared by every case in one suite run."""

    suite: str = "quick"
    jobs: int = 1
    repeats: int = 3
    warmup: int = 1
    evals: int = 120
    iterations: int = 400
    runs: int = 2
    seed: int = 7

    def validate(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be >= 1")
        if self.warmup < 0:
            raise ConfigurationError("warmup must be >= 0")
        if min(self.evals, self.iterations, self.runs) < 1:
            raise ConfigurationError(
                "evals, iterations and runs must be >= 1"
            )


#: Per-suite defaults: ``quick`` is the CI smoke scale, ``full`` the
#: paper-faithful scale.
SUITE_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "quick": dict(repeats=3, warmup=1, evals=120, iterations=400, runs=2),
    "full": dict(repeats=5, warmup=1, evals=3000, iterations=8000, runs=3),
}


def context_for_suite(suite: str, **overrides: Any) -> BenchContext:
    if suite not in SUITE_DEFAULTS:
        raise ConfigurationError(
            f"unknown suite {suite!r}; known: {sorted(SUITE_DEFAULTS)}"
        )
    knobs = dict(SUITE_DEFAULTS[suite])
    knobs.update({k: v for k, v in overrides.items() if v is not None})
    context = BenchContext(suite=suite, **knobs)
    context.validate()
    return context


# ----------------------------------------------------------------------
# cases
# ----------------------------------------------------------------------
@runtime_checkable
class BenchCase(Protocol):
    """What the harness needs from a benchmark case."""

    name: str
    suites: Tuple[str, ...]
    scenarios: Tuple[str, ...]

    def prepare(self, context: BenchContext) -> Any:
        """Untimed setup; the return value is passed to every ``run``."""

    def run(self, context: BenchContext, state: Any) -> Mapping[str, Any]:
        """One timed measurement; returns JSON-serializable metrics.

        The optional ``"report"`` key (a preformatted string) is
        stripped from the stored metrics and surfaced separately.  An
        ``"evaluations"`` count enables the evals/sec counter.
        """


@dataclass
class FunctionCase:
    """A :class:`BenchCase` from plain functions.

    ``repeats_cap``/``warmup_cap`` bound the context's repeat/warmup
    counts for expensive cases (a multi-minute sweep is measured once
    even when the suite default is five timed repeats).
    """

    name: str
    fn: Callable[[BenchContext, Any], Mapping[str, Any]]
    suites: Tuple[str, ...] = ("full",)
    scenarios: Tuple[str, ...] = ()
    setup: Optional[Callable[[BenchContext], Any]] = None
    repeats_cap: Optional[int] = None
    warmup_cap: Optional[int] = None

    def prepare(self, context: BenchContext) -> Any:
        return self.setup(context) if self.setup is not None else None

    def run(self, context: BenchContext, state: Any) -> Mapping[str, Any]:
        return self.fn(context, state)


CASE_REGISTRY: Dict[str, BenchCase] = {}


def register_case(case: BenchCase) -> BenchCase:
    if case.name in CASE_REGISTRY:
        raise ConfigurationError(f"duplicate bench case {case.name!r}")
    for scenario_name in case.scenarios:
        if scenario_name not in CORPUS:
            raise ConfigurationError(
                f"case {case.name!r} references unknown scenario "
                f"{scenario_name!r}"
            )
    CASE_REGISTRY[case.name] = case
    return case


def bench_case(
    name: str,
    suites: Sequence[str] = ("full",),
    scenarios: Sequence[str] = (),
    setup: Optional[Callable[[BenchContext], Any]] = None,
    repeats_cap: Optional[int] = None,
    warmup_cap: Optional[int] = None,
) -> Callable[[Callable], Callable]:
    """Decorator flavor of :func:`register_case`."""

    def decorate(fn: Callable) -> Callable:
        register_case(
            FunctionCase(
                name=name,
                fn=fn,
                suites=tuple(suites),
                scenarios=tuple(scenarios),
                setup=setup,
                repeats_cap=repeats_cap,
                warmup_cap=warmup_cap,
            )
        )
        return fn

    return decorate


def get_case(name: str) -> BenchCase:
    try:
        return CASE_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench case {name!r}; see `repro bench list`"
        ) from None


def list_cases(
    suite: Optional[str] = None, pattern: Optional[str] = None
) -> List[BenchCase]:
    cases = [
        case
        for case in CASE_REGISTRY.values()
        if (suite is None or suite in case.suites)
        and (pattern is None or pattern in case.name)
    ]
    return sorted(cases, key=lambda case: case.name)


# ----------------------------------------------------------------------
# timing
# ----------------------------------------------------------------------
def _quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted samples."""
    if not sorted_samples:
        raise ConfigurationError("quantile of empty sample set")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = q * (len(sorted_samples) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_samples) - 1)
    weight = position - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


def timing_stats(timings: Sequence[float]) -> Tuple[float, float]:
    """(median, inter-quartile range) of wall-clock samples."""
    ordered = sorted(timings)
    return (
        _quantile(ordered, 0.5),
        _quantile(ordered, 0.75) - _quantile(ordered, 0.25),
    )


@dataclass
class CaseResult:
    """One case's measurement: timings, robust stats, metrics."""

    name: str
    suites: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    timings_s: List[float]
    median_s: float
    iqr_s: float
    metrics: Dict[str, Any]
    evals_per_sec: Optional[float] = None
    report: Optional[str] = None
    #: cProfile top-N cumulative dump of one extra run (``--profile``).
    profile: Optional[str] = None


#: Functions shown per case in a ``--profile`` dump.
PROFILE_TOP_N = 25


def _profile_case(case: BenchCase, context: BenchContext, state: Any) -> str:
    """One additional (untimed) run under cProfile; returns the top-N
    cumulative-time table — the hotspot attribution that made PR 1's
    RC-layout finding possible, now reproducible per case."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    case.run(context, state)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP_N)
    return stream.getvalue()


def run_case(
    case: BenchCase, context: BenchContext, profile: bool = False
) -> CaseResult:
    state = case.prepare(context)
    repeats_cap = getattr(case, "repeats_cap", None)
    warmup_cap = getattr(case, "warmup_cap", None)
    repeats = context.repeats if repeats_cap is None else min(
        context.repeats, repeats_cap
    )
    warmup = context.warmup if warmup_cap is None else min(
        context.warmup, warmup_cap
    )
    for _ in range(warmup):
        case.run(context, state)
    timings: List[float] = []
    metrics: Dict[str, Any] = {}
    for _ in range(repeats):
        started = time.perf_counter()
        metrics = dict(case.run(context, state))
        timings.append(time.perf_counter() - started)
    report = metrics.pop("report", None)
    median_s, iqr_s = timing_stats(timings)
    evals_per_sec = None
    evaluations = metrics.get("evaluations")
    if isinstance(evaluations, (int, float)) and median_s > 0:
        evals_per_sec = evaluations / median_s
    return CaseResult(
        name=case.name,
        suites=case.suites,
        scenarios=case.scenarios,
        timings_s=timings,
        median_s=median_s,
        iqr_s=iqr_s,
        metrics=metrics,
        evals_per_sec=evals_per_sec,
        report=report,
        profile=_profile_case(case, context, state) if profile else None,
    )


@dataclass
class SuiteRun:
    """Everything one suite execution measured."""

    suite: str
    context: BenchContext
    results: List[CaseResult] = field(default_factory=list)
    #: scenario name -> descriptor (family, seed, params, hash, sizes)
    scenarios: Dict[str, Dict[str, Any]] = field(default_factory=dict)


def describe_scenario(entry: Scenario) -> Dict[str, Any]:
    instance = entry.build()
    return {
        "family": entry.family,
        "seed": entry.seed,
        "params": entry.param_dict,
        "hash": scenario_hash(instance),
        "num_tasks": len(instance.application),
        "num_edges": instance.application.dag.num_edges(),
        "deadline_ms": instance.deadline_ms,
        "resources": sorted(
            resource.name for resource in instance.architecture.resources()
        ),
    }


def run_suite(
    suite: str,
    context: Optional[BenchContext] = None,
    pattern: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    profile: bool = False,
) -> SuiteRun:
    """Run every registered case of ``suite`` (optionally filtered).
    ``profile`` adds one cProfile'd run per case (dump on the result)."""
    context = context if context is not None else context_for_suite(suite)
    cases = list_cases(suite=suite, pattern=pattern)
    if not cases:
        raise ConfigurationError(
            f"no bench cases match suite={suite!r} pattern={pattern!r}"
        )
    suite_run = SuiteRun(suite=suite, context=context)
    for case in cases:
        if progress is not None:
            progress(f"running {case.name} ...")
        suite_run.results.append(run_case(case, context, profile=profile))
    touched = sorted({name for case in cases for name in case.scenarios})
    for name in touched:
        suite_run.scenarios[name] = describe_scenario(get_scenario(name))
    return suite_run


# ----------------------------------------------------------------------
# shared measurement helpers
# ----------------------------------------------------------------------
def move_eval_loop(
    instance: ProblemInstance,
    engine: str,
    n_evals: int,
    seed: int = 7,
    time_evals_only: bool = False,
) -> Dict[str, Any]:
    """The annealer-shaped hot loop: propose, apply, evaluate, 50% undo.

    Returns ``evaluations`` (for the harness's evals/sec counter), the
    final makespan, and — with ``time_evals_only`` — ``eval_elapsed_s``
    covering just the ``evaluate`` calls (the engine-comparison tables
    exclude move-proposal overhead).
    """
    application, architecture = instance.application, instance.architecture
    evaluator = Evaluator(application, architecture, engine=engine)
    rng = random.Random(seed)
    solution = random_initial_solution(
        application, architecture, rng, hw_fraction=0.5
    )
    generator = MoveGenerator(application)
    elapsed = 0.0
    done = 0
    makespan = evaluator.evaluate(solution).makespan_ms
    while done < n_evals:
        try:
            move = generator.propose(solution, rng)
            move.apply(solution)
        except InfeasibleMoveError:
            continue
        if time_evals_only:
            started = time.perf_counter()
            makespan = evaluator.evaluate(solution).makespan_ms
            elapsed += time.perf_counter() - started
        else:
            makespan = evaluator.evaluate(solution).makespan_ms
        done += 1
        if rng.random() < 0.5:
            move.undo(solution)
    out: Dict[str, Any] = {
        "evaluations": done,
        "final_makespan_ms": makespan,
        "engine": engine,
    }
    compiled = getattr(evaluator.engine, "compiled", None)
    if compiled is None:
        compiled = compile_instance(application, architecture.bus)
    # Static graph shape from the compile pass: the depth-aware
    # dispatcher keys off these (deep/narrow graphs ride the scalar
    # persistent path, shallow/wide ones the fused kernels), so the
    # report records them next to every throughput number.
    out["depth"] = compiled.depth
    out["mean_level_width"] = compiled.mean_level_width
    resolved = getattr(evaluator.engine, "resolved_dispatch", None)
    if resolved is not None:
        # Where the auto dispatcher would route this graph's batches
        # (kernel vs scalar), plus the engine's internal telemetry
        # counters — memo/cycle-witness hit rates next to every
        # throughput number make dispatch regressions attributable.
        out["dispatch_route"] = resolved()
    for name, value in sorted(evaluator.telemetry_counters().items()):
        out[f"counter_{name}"] = value
    if time_evals_only:
        out["eval_elapsed_s"] = elapsed
    return out
