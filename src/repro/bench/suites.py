"""The registered benchmark cases, grouped into ``quick``/``full`` suites.

Three layers of cases:

* **Corpus throughput** — every corpus scenario × both evaluation
  engines through the annealer-shaped move/evaluate/undo loop; the
  machine-readable evals/sec trajectory that perf PRs are gated on.
* **Multi-seed search** — adaptive-SA replicate batches expressed as
  batch :class:`~repro.api.specs.ExplorationRequest` specs (the
  scenario's bundled document is the application) and executed through
  :func:`repro.api.facade.explore` (``jobs=N``); cases whose per-job
  architectures vary (the reconfiguration ablation) stay on the raw
  runner underneath the façade.
* **Ported experiment scripts** — the measurement bodies of the 14
  historical ``benchmarks/bench_*.py`` scripts; the scripts are now
  thin shims that call these cases and assert on the returned metrics.

Every case returns a flat JSON-serializable metrics mapping; the
optional ``"report"`` key carries the human-readable table the old
scripts used to print.
"""

from __future__ import annotations

import math
import os
import random
import time
from typing import Any, Dict, List

from repro.analysis.combinatorics import (
    chain_interleavings,
    solution_space_report,
)
from repro.analysis.plot import plot_sweep, plot_trace
from repro.analysis.stats import Summary
from repro.analysis.sweep import run_device_sweep
from repro.api.facade import explore
from repro.api.specs import (
    ApplicationSpec,
    BudgetSpec,
    ExplorationRequest,
)
from repro.api.specs import StrategySpec as ApiStrategySpec
from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.bench.corpus import CORPUS, get_scenario
from repro.bench.harness import (
    ENGINES,
    BenchContext,
    bench_case,
    move_eval_loop,
)
from repro.experiments.ablations import (
    SCHEDULE_ABLATION_HEADER,
    run_bus_ablation,
    run_impl_ablation,
    run_schedule_ablation,
)
from repro.experiments.comparison import run_comparison
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import FIG3_SIZES, format_fig3_table
from repro.experiments.pareto import format_pareto_table, run_pareto_front
from repro.experiments.quality import format_quality_table, run_quality_knob
from repro.graph.dag import Dag
from repro.graph.generators import layered
from repro.graph.longest_path import longest_path_length
from repro.graph.maxplus import MaxPlusClosure
from repro.mapping.compiled import compile_instance
from repro.mapping.cost import SystemCost
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer
from repro.sa.trace import downsample
from repro.search.runner import (
    InstanceSpec,
    SearchJob,
    StrategySpec,
    best_evaluation_of,
    run_search_jobs,
)


def _scaled_warmup(iterations: int) -> int:
    """The historical scripts' warmup (1200 at the paper's budget),
    scaled down safely for quick contexts."""
    return min(1200, max(1, iterations // 4))


def _summary_dict(summary: Summary) -> Dict[str, float]:
    return {
        "mean": summary.mean,
        "std": summary.std,
        "min": summary.minimum,
        "median": summary.median,
        "max": summary.maximum,
        "n": summary.n,
    }


# ----------------------------------------------------------------------
# corpus throughput (quick + full): the evals/sec trajectory
# ----------------------------------------------------------------------
def _register_throughput_cases() -> None:
    for scenario_name, entry in CORPUS.items():
        for engine in ENGINES:
            suites = ("quick", "full") if "quick" in entry.tags else ("full",)

            def fn(
                context: BenchContext,
                state: Any,
                _engine: str = engine,
            ) -> Dict[str, Any]:
                return move_eval_loop(
                    state, _engine, context.evals, seed=context.seed
                )

            def setup(
                context: BenchContext, _name: str = scenario_name
            ) -> Any:
                return get_scenario(_name).build()

            bench_case(
                name=f"throughput/{scenario_name}@{engine}",
                suites=suites,
                scenarios=(scenario_name,),
                setup=setup,
            )(fn)


_register_throughput_cases()


# ----------------------------------------------------------------------
# multi-seed search through the spec façade (quick + full)
# ----------------------------------------------------------------------
def _register_search_cases() -> None:
    for scenario_name in ("motion/2000", "tgff/36"):

        def setup(
            context: BenchContext, _name: str = scenario_name
        ) -> Any:
            # Scenario materialization is spec-shaped: the bundled
            # instance document doubles as the request's application.
            return get_scenario(_name).document()

        def fn(
            context: BenchContext,
            state: Any,
            _name: str = scenario_name,
        ) -> Dict[str, Any]:
            request = ExplorationRequest(
                kind="batch",
                application=ApplicationSpec(kind="bundled", document=state),
                strategy=ApiStrategySpec("sa", {"keep_trace": False}),
                budget=BudgetSpec(
                    iterations=context.iterations,
                    warmup_iterations=_scaled_warmup(context.iterations),
                ),
                seeds=tuple(
                    context.seed + r for r in range(context.runs)
                ),
            )
            response = explore(request, jobs=context.jobs)
            return {
                "evaluations": sum(
                    r["evaluations"] for r in response.results
                ),
                "runs": context.runs,
                "best_cost_min": response.summary["best_cost_min"],
                "best_cost_mean": response.summary["best_cost_mean"],
                "deadline_ms": state["deadline_ms"],
            }

        bench_case(
            name=f"search/sa_multiseed@{scenario_name}",
            suites=("quick", "full"),
            scenarios=(scenario_name,),
            setup=setup,
        )(fn)


_register_search_cases()


# ----------------------------------------------------------------------
# population tempering: cross-chain batched annealing
# ----------------------------------------------------------------------
def _population_run(application, architecture, chains, rounds, seed,
                    engine="array", swap_interval=10):
    from repro.sa.population import PopulationAnnealer

    annealer = PopulationAnnealer(
        application, architecture, chains=chains, iterations=rounds,
        warmup_iterations=max(1, rounds // 4), seed=seed,
        swap_interval=swap_interval, engine=engine, keep_trace=False,
    )
    started = time.perf_counter()
    result = annealer.search()
    return result, time.perf_counter() - started


def _register_tempering_cases() -> None:
    for scenario_name, chains in (("motion/2000", 4), ("tgff/120", 8)):

        def setup(context: BenchContext, _name: str = scenario_name) -> Any:
            return get_scenario(_name).build()

        def fn(
            context: BenchContext,
            state: Any,
            _chains: int = chains,
        ) -> Dict[str, Any]:
            rounds = max(10, context.iterations // _chains)
            result, elapsed = _population_run(
                state.application, state.architecture, _chains, rounds,
                context.seed,
            )
            steps = result.iterations_run * _chains
            compiled = compile_instance(
                state.application, state.architecture.bus
            )
            return {
                "chains": _chains,
                "rounds": result.iterations_run,
                "chain_steps_per_sec": steps / max(elapsed, 1e-9),
                "best_cost": result.best_cost,
                "swap_attempts": result.extras["swap_attempts"],
                "swap_accepts": result.extras["swap_accepts"],
                "evaluations": result.evaluations,
                "depth": compiled.depth,
                "mean_level_width": compiled.mean_level_width,
            }

        bench_case(
            name=f"tempering/population@{scenario_name}",
            suites=("quick", "full"),
            scenarios=(scenario_name,),
            setup=setup,
        )(fn)


_register_tempering_cases()


@bench_case(
    name="tempering/population_vs_sequential@tgff/120",
    suites=("quick", "full"),
    scenarios=("tgff/120",),
    setup=lambda context: get_scenario("tgff/120").build(),
)
def _population_vs_sequential(
    context: BenchContext, state: Any
) -> Dict[str, Any]:
    """K=8 cross-batched chains vs 8 sequential scalar SA chains.

    Records the aggregate chain-steps/sec of the population annealer's
    persistent per-chain delta path (apply → delta-sync → read the
    makespan, commit-on-accept) against both sequential baselines (full
    rebuild and incremental delta repair) at an identical per-chain
    round budget.  The depth-aware dispatcher routes these deep/narrow
    graphs (tgff/120: mean level width ~10.7 over 29 static levels)
    onto the scalar persistent path — the fused K-lane kernels, which
    pay their dispatch cost once per topological level, only win on
    shallow/wide graphs (see README, Performance notes).  Each path
    reports the best of two identically-seeded timed runs, damping
    scheduler noise symmetrically.
    """
    chains = 8
    rounds = max(10, context.iterations // chains)
    warmup = max(1, rounds // 4)
    application, architecture = state.application, state.architecture

    population_sps = 0.0
    best_cost = math.inf
    result = None
    for _ in range(2):
        result, elapsed = _population_run(
            application, architecture, chains, rounds, context.seed,
        )
        steps = result.iterations_run * chains
        population_sps = max(population_sps, steps / max(elapsed, 1e-9))
        best_cost = result.best_cost  # identical seeds: same result
    sequential_sps = {}
    for engine in ("full", "incremental"):
        best_sps = 0.0
        for _ in range(2):
            explorers = [
                DesignSpaceExplorer(
                    application, architecture, iterations=rounds,
                    warmup_iterations=warmup, seed=context.seed + c,
                    engine=engine, keep_trace=False,
                )
                for c in range(chains)
            ]
            started = time.perf_counter()
            run_steps = sum(e.search().iterations_run for e in explorers)
            best_sps = max(
                best_sps,
                run_steps / max(time.perf_counter() - started, 1e-9),
            )
        sequential_sps[engine] = best_sps

    compiled = compile_instance(application, architecture.bus)
    return {
        "chains": chains,
        "rounds": result.iterations_run,
        "population_steps_per_sec": population_sps,
        "sequential_full_steps_per_sec": sequential_sps["full"],
        "sequential_incremental_steps_per_sec": (
            sequential_sps["incremental"]
        ),
        "speedup_vs_full": population_sps / sequential_sps["full"],
        "speedup_vs_incremental": (
            population_sps / sequential_sps["incremental"]
        ),
        "best_cost": best_cost,
        "depth": compiled.depth,
        "mean_level_width": compiled.mean_level_width,
        "report": (
            f"cross-chain batched annealing, K={chains}, "
            f"{rounds} rounds (tgff/120)\n"
            f"{'path':<24} {'chain-steps/s':>14}\n"
            f"{'population (array)':<24} {population_sps:>14.1f}\n"
            f"{'8x sequential full':<24} "
            f"{sequential_sps['full']:>14.1f}\n"
            f"{'8x sequential incr.':<24} "
            f"{sequential_sps['incremental']:>14.1f}\n"
            f"speedup vs full: "
            f"{population_sps / sequential_sps['full']:.2f}x, "
            f"vs incremental: "
            f"{population_sps / sequential_sps['incremental']:.2f}x"
        ),
    }


# ----------------------------------------------------------------------
# exploration service: cold compute vs warm cache hit
# ----------------------------------------------------------------------
@bench_case(
    name="service/cache_hit@motion",
    suites=("quick", "full"),
    scenarios=("motion/2000",),
)
def _service_cache_hit(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Cold submit+compute vs warm cache lookup through the service.

    Each timed run builds a *fresh* temp store (the harness repeats the
    body, and the cold path must actually be cold), submits one annealer
    request, drains it inline, then submits the identical request again
    and serves it from the cache.  The headline metric is the hit/miss
    latency ratio — how much a content-addressed hit saves over
    recomputing."""
    import shutil
    import tempfile

    from repro.service import ExplorationService

    request = ExplorationRequest(
        kind="single",
        application=ApplicationSpec(kind="builtin", name="motion"),
        strategy=ApiStrategySpec("sa", {"keep_trace": False}),
        budget=BudgetSpec(
            iterations=context.iterations,
            warmup_iterations=_scaled_warmup(context.iterations),
        ),
        seed=context.seed,
    )
    root = tempfile.mkdtemp(prefix="repro-bench-store-")
    try:
        service = ExplorationService(root)
        started = time.perf_counter()
        cold = service.submit(request)
        executed = service.run_local()
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = service.submit(request)
        warm_s = time.perf_counter() - started
        record = service.status(cold.key)
        return {
            "cold_submit_s": cold_s,
            "warm_lookup_s": warm_s,
            "hit_miss_latency_ratio": cold_s / max(warm_s, 1e-9),
            "cold_status": cold.status,
            "warm_status": warm.status,
            "executions": record.attempts,
            "cache_hits": record.hits,
            "jobs_executed": executed,
            "evaluations": sum(
                r["evaluations"] for r in warm.response.results
            ),
            "report": (
                f"service cache (motion, {context.iterations} iterations)\n"
                f"{'path':<14} {'seconds':>10}\n"
                f"{'cold compute':<14} {cold_s:>10.4f}\n"
                f"{'warm hit':<14} {warm_s:>10.4f}\n"
                f"hit/miss latency ratio: "
                f"{cold_s / max(warm_s, 1e-9):.0f}x"
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


@bench_case(
    name="service/warm_start@motion",
    suites=("quick", "full"),
    scenarios=("motion/2000",),
    setup=lambda context: get_scenario("motion/2000").document(),
)
def _service_warm_start(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Warm-started convergence vs a cold run on a perturbed instance.

    The anytime/warm-start headline: solve the motion instance once
    (the donor), perturb one task's software duration by 5% (a
    param-only delta — same structure hash, different cache key), and
    submit the perturbed instance through the service.  The near-index
    finds the donor, its best solution is re-seeded onto the perturbed
    instance, and the annealer starts from it with warmup folded to
    zero.  The headline metric is ``evals_ratio``: the evaluations the
    warm run needs to reach the *cold* run's final best cost, as a
    fraction of the cold run's evaluations (the ISSUE target is
    <= 0.5x).  Each timed run builds a fresh temp store so the donor
    lookup is exercised end to end."""
    import copy
    import shutil
    import tempfile

    from repro.service import ExplorationService

    def request_for(
        document: Dict[str, Any], keep_trace: bool = False
    ) -> ExplorationRequest:
        # keep_trace doubles as keep_history: the measured runs need the
        # per-iteration best-so-far curve to locate the crossing point.
        return ExplorationRequest(
            kind="single",
            application=ApplicationSpec(kind="bundled", document=document),
            strategy=ApiStrategySpec("sa", {"keep_trace": keep_trace}),
            budget=BudgetSpec(
                iterations=context.iterations,
                warmup_iterations=_scaled_warmup(context.iterations),
            ),
            seed=context.seed,
        )

    perturbed = copy.deepcopy(state)
    task = perturbed["application"]["tasks"][0]
    task["sw_time_ms"] = task["sw_time_ms"] * 1.05

    # cold baseline: the perturbed instance from a random initial
    cold = explore(request_for(perturbed))
    cold_result = cold.results[0]
    cold_best = cold_result["best_cost"]

    root = tempfile.mkdtemp(prefix="repro-bench-warm-")
    try:
        service = ExplorationService(root)
        service.submit(request_for(state))  # the donor
        service.run_local()
        outcome = service.submit(request_for(perturbed, keep_trace=True))
        service.run_local()
        record = service.status(outcome.key)
        warm = service.result(outcome.key)
        warm_result = warm.results[0]
        # history[i] is the best-so-far cost after iteration i+1, so the
        # first index at or below the cold final cost is the evaluation
        # count the warm run needed to match the cold run end-to-end.
        reached = next(
            (
                i + 1
                for i, cost in enumerate(warm_result["history"])
                if cost <= cold_best
            ),
            None,
        )
        evals_to_cold = (
            reached if reached is not None else warm_result["evaluations"]
        )
        ratio = evals_to_cold / max(cold_result["evaluations"], 1)
        warm_start = record.warm_start or {}
        delta = warm_start.get("delta", {})
        return {
            "cold_best_cost": cold_best,
            "cold_evaluations": cold_result["evaluations"],
            "warm_best_cost": warm_result["best_cost"],
            "warm_evaluations": warm_result["evaluations"],
            "warm_evals_to_cold_best": evals_to_cold,
            "evals_ratio": ratio,
            "reached_cold_best": reached is not None,
            "warm_start_hit": int(record.warm_start is not None),
            "warm_start_repairs": warm_start.get("repairs", 0),
            "delta_kind": delta.get("kind"),
            "delta_size": delta.get("size"),
            "evaluations": (
                cold_result["evaluations"] + warm_result["evaluations"]
            ),
            "report": (
                f"service warm start (motion, 5% duration perturbation, "
                f"{context.iterations} iterations)\n"
                f"{'path':<22} {'evals to cold best':>19}\n"
                f"{'cold (random init)':<22} "
                f"{cold_result['evaluations']:>19}\n"
                f"{'warm (delta-seeded)':<22} {evals_to_cold:>19}\n"
                f"evals ratio: {ratio:.3f}x "
                f"(delta {delta.get('kind')}/{delta.get('size')}, "
                f"{warm_start.get('repairs', 0)} repair(s))"
            ),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# pure-analysis and kernel cases (quick + full)
# ----------------------------------------------------------------------
@bench_case(
    name="analysis/combinatorics",
    suites=("quick", "full"),
    scenarios=("motion/2000",),
)
def _combinatorics(context: BenchContext, state: Any) -> Dict[str, Any]:
    """E4 — solution-space size table (paper section 5)."""
    application = motion_detection_application()
    report = solution_space_report(application, context_changes=(2, 4, 6))
    return {
        "total_orders": report.total_orders,
        "placements_2": report.placements[2],
        "placements_6": report.placements[6],
        "combinations_2": report.combinations[2],
        "combinations_4": report.combinations[4],
        "chain_7_6": chain_interleavings([7, 6]),
        "chain_2_1": chain_interleavings([2, 1]),
        "report": "Solution-space size (paper section 5)\n"
        + report.format_table(),
    }


def closure_edge_stream(num_layers: int = 8, width: int = 5, seed: int = 3):
    """Shared input of the closure kernels (also used by the shim)."""
    dag = layered(num_layers, width, edge_probability=0.4, seed=seed)
    rng = random.Random(seed)
    edges = [(a, b, rng.uniform(0.5, 3.0)) for a, b, _ in dag.edges()]
    return list(dag.nodes()), edges


@bench_case(name="kernel/closure_incremental", suites=("quick", "full"))
def _closure_incremental(context: BenchContext, state: Any) -> Dict[str, Any]:
    """A2 — O(n^2) incremental max-plus closure, per-edge insertion."""
    nodes, edges = closure_edge_stream()
    closure = MaxPlusClosure(nodes)
    for a, b, w in edges:
        closure.add_edge(a, b, w)
    return {
        "longest_path": closure.longest_path_length(),
        "edges": len(edges),
        "evaluations": len(edges),
    }


@bench_case(name="kernel/closure_full_recompute", suites=("quick", "full"))
def _closure_full(context: BenchContext, state: Any) -> Dict[str, Any]:
    """A2 baseline — full O(V+E) longest-path DP after every insertion."""
    nodes, edges = closure_edge_stream()
    dag = Dag()
    for node in nodes:
        dag.add_node(node)
    length = 0.0
    for a, b, w in edges:
        dag.add_edge(a, b, w)
        length = longest_path_length(dag)
    return {
        "longest_path": length,
        "edges": len(edges),
        "evaluations": len(edges),
    }


@bench_case(
    name="micro/rc_layout_realization",
    suites=("quick", "full"),
    scenarios=("motion/2000",),
)
def _rc_layout_realization(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Targeted micro-bench for the per-move RC-layout realization path
    (PR 1's residual constant factor): every iteration flips one
    hardware task's implementation choice — re-stamping the DRLC and
    forcing ``IncrementalEngine._refresh_rc`` — and re-evaluates.  The
    layout *content* recurs after every full cycle through the variants,
    so this measures exactly the stamp-miss/content-hit path the
    content-keyed layout memo accelerates."""
    instance = get_scenario("motion/2000").build()
    application, architecture = instance.application, instance.architecture
    evaluator = Evaluator(application, architecture, engine="incremental")
    solution = random_initial_solution(
        application, architecture, random.Random(context.seed),
        hw_fraction=1.0,
    )
    flippable = [
        t for t in application.task_indices()
        if solution.context_of(t) is not None
        and application.task(t).num_implementations > 1
    ]
    makespan = evaluator.evaluate(solution).makespan_ms
    n = context.evals
    for k in range(n):
        task_index = flippable[k % len(flippable)]
        task = application.task(task_index)
        choice = (
            solution.implementation_choice(task_index) + 1
        ) % task.num_implementations
        solution.set_implementation_choice(task_index, choice)
        makespan = evaluator.evaluate(solution).makespan_ms
    return {
        "evaluations": n,
        "final_makespan_ms": makespan,
        "engine": "incremental",
        "flippable_tasks": len(flippable),
    }


@bench_case(
    name="kernel/solution_evaluation",
    suites=("quick", "full"),
    scenarios=("motion/2000",),
)
def _solution_evaluation(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Full-pipeline evaluation throughput on the motion benchmark."""
    instance = get_scenario("motion/2000").build()
    evaluator = Evaluator(instance.application, instance.architecture)
    solution = random_initial_solution(
        instance.application,
        instance.architecture,
        random.Random(context.seed),
    )
    n = min(context.evals, 50)
    makespan = 0.0
    for _ in range(n):
        makespan = evaluator.makespan_ms(solution)
    return {"makespan_ms": makespan, "evaluations": n}


# ----------------------------------------------------------------------
# ported experiment scripts (full suite; heavy => single repeat)
# ----------------------------------------------------------------------
#: Ported experiment scripts run minutes, not milliseconds: one timed
#: measurement, no warmup — their value is the metrics trajectory.
_HEAVY = dict(suites=("full",), repeats_cap=1, warmup_cap=0)


@bench_case(name="experiment/fig2_trace", scenarios=("motion/2000",), **_HEAVY)
def _fig2(context: BenchContext, state: Any) -> Dict[str, Any]:
    """E1 / Fig. 2 — execution time and context count vs iteration."""
    result = run_fig2(
        n_clbs=2000,
        iterations=context.iterations,
        warmup_iterations=_scaled_warmup(context.iterations),
        seed=context.seed,
    )
    ev = result.final_evaluation
    lo, hi = result.warmup_spread()
    table = [f"{'iteration':>10} {'exec (ms)':>10} {'contexts':>9}"]
    for record in downsample(
        result.trace, every=max(len(result.trace) // 40, 1)
    ):
        table.append(
            f"{record.iteration:>10} {record.current_cost:>10.2f} "
            f"{record.num_contexts:>9}"
        )
    return {
        "initial_makespan_ms": result.initial_evaluation.makespan_ms,
        "final_makespan_ms": ev.makespan_ms,
        "num_contexts": ev.num_contexts,
        "hw_tasks": ev.hw_tasks,
        "warmup_lo": lo,
        "warmup_hi": hi,
        "iterations_to_deadline": result.iterations_to_deadline(),
        "deadline_ms": result.deadline_ms,
        "evaluations": result.iterations_run,
        "report": "\n".join(
            [result.format_summary(), "", plot_trace(result.trace), ""]
            + table
        ),
    }


@bench_case(name="experiment/fig3_sweep", scenarios=("motion/2000",), **_HEAVY)
def _fig3(context: BenchContext, state: Any) -> Dict[str, Any]:
    """E2 / Fig. 3 — execution/reconfiguration/contexts vs device size."""
    rows = run_device_sweep(
        motion_detection_application(),
        sizes=FIG3_SIZES,
        runs=context.runs,
        iterations=context.iterations,
        warmup_iterations=_scaled_warmup(context.iterations),
        deadline_ms=MOTION_DEADLINE_MS,
        seed0=1,
        jobs=context.jobs,
    )
    return {
        "rows": {
            str(row.n_clbs): {
                "execution_ms": row.execution_ms,
                "execution_std_ms": row.execution_std_ms,
                "initial_reconfig_ms": row.initial_reconfig_ms,
                "dynamic_reconfig_ms": row.dynamic_reconfig_ms,
                "reconfig_ms": row.reconfig_ms,
                "num_contexts": row.num_contexts,
                "hw_tasks": row.hw_tasks,
                "feasible_fraction": row.feasible_fraction,
            }
            for row in rows
        },
        "best_n_clbs": min(rows, key=lambda r: r.execution_ms).n_clbs,
        "sizes": list(FIG3_SIZES),
        "report": format_fig3_table(rows) + "\n\n" + plot_sweep(rows),
    }


@bench_case(name="experiment/comparison", scenarios=("motion/2000",), **_HEAVY)
def _comparison(context: BenchContext, state: Any) -> Dict[str, Any]:
    """E3 — adaptive SA vs the GA baseline of Ben Chehida & Auguin.

    Always sequential: the headline metric is the SA/GA *wall-clock
    ratio*, and racing both optimizers concurrently would let CPU
    contention distort exactly that number.
    """
    result = run_comparison(
        n_clbs=2000,
        sa_iterations=context.iterations,
        sa_warmup=_scaled_warmup(context.iterations),
        ga_population=300,
        ga_generations=60,
        seed=11,
        jobs=1,
    )
    return {
        "sa_makespan_ms": result.sa_makespan_ms,
        "ga_makespan_ms": result.ga_makespan_ms,
        "sa_runtime_s": result.sa_runtime_s,
        "ga_runtime_s": result.ga_runtime_s,
        "sa_contexts": result.sa_contexts,
        "ga_contexts": result.ga_contexts,
        "speedup": result.speedup,
        "deadline_ms": result.deadline_ms,
        "report": result.format_table(),
    }


@bench_case(
    name="experiment/quality_knob", scenarios=("motion/2000",), **_HEAVY
)
def _quality(context: BenchContext, state: Any) -> Dict[str, Any]:
    """The designer's quality/time knob (lambda_rate sweep)."""
    rates = (0.4, 0.1, 0.025)
    rows = run_quality_knob(
        lambda_rates=rates, runs=context.runs, jobs=context.jobs
    )
    return {
        "rows": {
            str(row.lambda_rate): {
                "makespan": _summary_dict(row.makespan),
                "mean_iterations": row.mean_iterations,
                "mean_runtime_s": row.mean_runtime_s,
            }
            for row in rows
        },
        "report": format_quality_table(rows),
    }


@bench_case(
    name="experiment/pareto_front", scenarios=("motion/2000",), **_HEAVY
)
def _pareto(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Cost-performance Pareto front over a deadline sweep."""
    deadlines = (80.0, 60.0, 40.0, 30.0)
    points = run_pareto_front(
        deadlines_ms=deadlines,
        iterations=context.iterations,
        warmup=_scaled_warmup(context.iterations),
    )
    return {
        "rows": {
            str(point.deadline_ms): {
                "makespan_ms": point.makespan_ms,
                "monetary_cost": point.monetary_cost,
                "meets_deadline": point.meets_deadline,
                "resources": list(point.resources),
            }
            for point in points
        },
        "report": format_pareto_table(points),
    }


ARCH_EXPLORATION_CATALOG = [
    lambda name: Processor(name, speed_factor=1.0, monetary_cost=1.0),
    lambda name: ReconfigurableCircuit(
        name, n_clbs=1000, reconfig_ms_per_clb=0.0225, monetary_cost=2.0
    ),
    lambda name: Asic(name, monetary_cost=4.0),
]


def minimal_platform() -> Architecture:
    arch = Architecture("minimal", bus=Bus(rate_kbytes_per_ms=50.0))
    arch.add_resource(Processor("arm922", monetary_cost=1.0))
    arch.add_resource(
        ReconfigurableCircuit(
            "virtex", n_clbs=1000, reconfig_ms_per_clb=0.0225,
            monetary_cost=2.0,
        )
    )
    return arch


@bench_case(
    name="experiment/arch_exploration", scenarios=("motion/2000",), **_HEAVY
)
def _arch_exploration(context: BenchContext, state: Any) -> Dict[str, Any]:
    """A4 — architecture exploration with moves m3/m4 under SystemCost."""
    explorer = DesignSpaceExplorer(
        motion_detection_application(),
        minimal_platform(),
        iterations=context.iterations,
        warmup_iterations=_scaled_warmup(context.iterations),
        seed=19,
        p_zero=0.05,
        catalog=ARCH_EXPLORATION_CATALOG,
        cost_function=SystemCost(
            deadline_ms=MOTION_DEADLINE_MS, penalty_per_ms=50.0
        ),
        keep_trace=False,
    )
    result = explorer.run()
    arch = result.best_solution.architecture
    ev = result.best_evaluation
    return {
        "makespan_ms": ev.makespan_ms,
        "feasible": ev.feasible,
        "monetary_cost": arch.total_monetary_cost(),
        "num_resources": len(list(arch.resources())),
        "num_processors": len(arch.processors()),
        "resources": [r.name for r in arch.resources()],
        "evaluations": result.annealing.iterations_run,
        "report": (
            "Architecture exploration (SystemCost, 40 ms deadline)\n"
            f"  final makespan:   {ev.makespan_ms:.2f} ms\n"
            f"  final resources:  {[r.name for r in arch.resources()]}\n"
            f"  monetary cost:    {arch.total_monetary_cost():.1f}"
        ),
    }


@bench_case(name="ablation/schedules", scenarios=("motion/2000",), **_HEAVY)
def _ablation_schedules(context: BenchContext, state: Any) -> Dict[str, Any]:
    """A1 — cooling schedules vs no-temperature baselines, equal budget."""
    rows = run_schedule_ablation(
        n_clbs=2000,
        iterations=context.iterations,
        warmup=_scaled_warmup(context.iterations),
        runs=context.runs,
        jobs=context.jobs,
    )
    return {
        "rows": {
            row.method: dict(
                _summary_dict(row.makespan),
                mean_runtime_s=row.mean_runtime_s,
            )
            for row in rows
        },
        "report": "\n".join(
            ["Schedule ablation (motion detection, 2000 CLBs)",
             SCHEDULE_ABLATION_HEADER]
            + [row.format_row() for row in rows]
        ),
    }


@bench_case(name="ablation/impls", scenarios=("motion/2000",), **_HEAVY)
def _ablation_impls(context: BenchContext, state: Any) -> Dict[str, Any]:
    """A3 — multi-implementation exploration on/off."""
    results = run_impl_ablation(
        n_clbs=2000,
        iterations=context.iterations,
        warmup=_scaled_warmup(context.iterations),
        runs=context.runs,
        jobs=context.jobs,
    )
    return {
        "rows": {mode: _summary_dict(s) for mode, s in results.items()},
        "report": "\n".join(
            ["Implementation-selection ablation (motion, 2000 CLBs)"]
            + [f"  {mode:<10} {summary.format('ms')}"
               for mode, summary in results.items()]
        ),
    }


@bench_case(name="ablation/bus", scenarios=("motion/2000",), **_HEAVY)
def _ablation_bus(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Bus policy: serialized transactions vs plain edge delays."""
    results = run_bus_ablation(
        n_clbs=2000,
        iterations=context.iterations,
        warmup=_scaled_warmup(context.iterations),
        runs=context.runs,
        jobs=context.jobs,
    )
    return {
        "rows": {policy: _summary_dict(s) for policy, s in results.items()},
        "report": "\n".join(
            ["Bus-policy ablation (motion detection, 2000 CLBs)"]
            + [f"  {policy:<8} {summary.format('ms')}"
               for policy, summary in results.items()]
        ),
    }


def reconfig_ablation_arch(partial: bool) -> Architecture:
    arch = Architecture(
        "ablation_platform", bus=Bus(rate_kbytes_per_ms=50.0)
    )
    arch.add_resource(Processor("arm922"))
    arch.add_resource(
        ReconfigurableCircuit(
            "virtex",
            n_clbs=2000,
            reconfig_ms_per_clb=0.0225,
            partial_reconfiguration=partial,
        )
    )
    return arch


@bench_case(name="ablation/reconfig", scenarios=("motion/2000",), **_HEAVY)
def _ablation_reconfig(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Partial vs full reconfiguration, multi-seed through the runner."""
    application = motion_detection_application()
    spec = StrategySpec("sa", {
        "iterations": context.iterations,
        "warmup_iterations": _scaled_warmup(context.iterations),
        "keep_trace": False,
    })
    job_list = [
        SearchJob(
            spec,
            InstanceSpec(
                application,
                architecture=reconfig_ablation_arch(partial),
            ),
            seed=31 + r,
            tag=["partial" if partial else "full", r],
        )
        for partial in (True, False)
        for r in range(context.runs)
    ]
    outcomes = run_search_jobs(job_list, jobs=context.jobs)
    by_mode: Dict[str, Dict[str, List[float]]] = {
        "partial": {"exec": [], "reconfig": [], "contexts": []},
        "full": {"exec": [], "reconfig": [], "contexts": []},
    }
    for outcome in outcomes:
        ev = best_evaluation_of(outcome.result)
        bucket = by_mode[outcome.tag[0]]
        bucket["exec"].append(ev.makespan_ms)
        bucket["reconfig"].append(ev.reconfig_ms)
        bucket["contexts"].append(float(ev.num_contexts))
    rows = {
        mode: {
            "exec_mean": sum(v["exec"]) / len(v["exec"]),
            "reconfig_mean": sum(v["reconfig"]) / len(v["reconfig"]),
            "contexts_mean": sum(v["contexts"]) / len(v["contexts"]),
        }
        for mode, v in by_mode.items()
    }
    report = [
        "Partial vs full reconfiguration (2000 CLBs, tR = 22.5 us/CLB)",
        f"{'mode':<9} {'exec(ms)':>9} {'reconfig(ms)':>13} {'contexts':>9}",
    ]
    for mode, row in rows.items():
        report.append(
            f"{mode:<9} {row['exec_mean']:>9.2f} "
            f"{row['reconfig_mean']:>13.2f} {row['contexts_mean']:>9.2f}"
        )
    return {"rows": rows, "report": "\n".join(report)}


@bench_case(
    name="runner/parallel_scaling", scenarios=("motion/2000",), **_HEAVY
)
def _runner_scaling(context: BenchContext, state: Any) -> Dict[str, Any]:
    """Parallel sweep scaling: jobs=1 vs jobs=N wall clock, rows equal."""
    application = motion_detection_application()
    workers = min(os.cpu_count() or 1, 4)
    kwargs = dict(
        sizes=(400, 800, 2000),
        runs=context.runs,
        iterations=context.iterations,
        warmup_iterations=_scaled_warmup(context.iterations),
        seed0=1,
        engine="incremental",
    )
    started = time.perf_counter()
    sequential = run_device_sweep(application, jobs=1, **kwargs)
    t_seq = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_device_sweep(application, jobs=workers, **kwargs)
    t_par = time.perf_counter() - started
    speedup = t_seq / max(t_par, 1e-9)
    return {
        "t_sequential_s": t_seq,
        "t_parallel_s": t_par,
        "speedup": speedup,
        "workers": workers,
        "rows_identical": sequential == parallel,
        "cpu_count": os.cpu_count(),
        "report": (
            f"device sweep: 3 sizes x {context.runs} runs x "
            f"{context.iterations} iterations\n"
            f"{'jobs':>6} {'wall (s)':>10}\n"
            f"{1:>6} {t_seq:>10.2f}\n"
            f"{workers:>6} {t_par:>10.2f}\n"
            f"speedup: {speedup:.2f}x on {os.cpu_count()} visible cores"
        ),
    }
