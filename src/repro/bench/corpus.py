"""Registry of named, seed-deterministic benchmark scenarios.

A *scenario* is ``(family, params, seed)`` — everything needed to
materialize one :class:`~repro.io.ProblemInstance` (application ×
architecture × deadline) bit-for-bit.  Families span the repository's
workload axes:

* ``motion`` — the paper's 28-task motion-detection benchmark on
  EPICURE-style platforms, including starved-bus / ASIC-rich / RC-heavy
  architecture regimes;
* ``tgff`` / ``layered`` / ``series_parallel`` / ``fork_join`` —
  random-application scaling ladders (12 → 240 tasks) materialized
  through :func:`repro.model.generator.random_application`.

Scenarios hash via the canonical JSON of their bundled instance
document (:func:`repro.io.instance_to_dict`), so ``scenario_hash`` is
identical across runs, machines, and Python versions — the regression
gate ``repro bench compare`` treats a hash drift as a failure, because
timings of different instances are not comparable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.asic import Asic
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError
from repro.io import ProblemInstance, instance_to_dict
from repro.model.generator import TOPOLOGIES, GeneratorConfig, random_application
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application

FamilyBuilder = Callable[..., ProblemInstance]

#: Architecture regimes shared by every family.  ``default`` is the
#: paper's EPICURE platform; the others stress one resource axis so the
#: corpus exercises bus-bound, ASIC-offload and multi-RC code paths.
ARCHITECTURE_REGIMES = ("default", "bus_starved", "asic_rich", "rc_heavy")


def _platform(regime: str, n_clbs: int) -> Architecture:
    if regime not in ARCHITECTURE_REGIMES:
        raise ConfigurationError(
            f"unknown architecture regime {regime!r}; "
            f"known: {list(ARCHITECTURE_REGIMES)}"
        )
    if regime == "bus_starved":
        # One tenth of the paper's bus bandwidth: communication, not
        # computation, dominates the makespan.
        return epicure_architecture(n_clbs=n_clbs, bus_rate_kbytes_per_ms=5.0)
    arch = epicure_architecture(n_clbs=n_clbs)
    if regime == "asic_rich":
        arch.add_resource(Asic("asic_a", monetary_cost=4.0))
        arch.add_resource(Asic("asic_b", monetary_cost=4.0))
    elif regime == "rc_heavy":
        arch.add_resource(
            ReconfigurableCircuit(
                "virtex2",
                n_clbs=max(n_clbs // 2, 100),
                reconfig_ms_per_clb=0.0225,
                monetary_cost=2.0,
            )
        )
    return arch


# ----------------------------------------------------------------------
# family registry
# ----------------------------------------------------------------------
FAMILIES: Dict[str, FamilyBuilder] = {}


def register_family(name: str) -> Callable[[FamilyBuilder], FamilyBuilder]:
    """Decorator: register ``builder(seed, **params) -> ProblemInstance``."""

    def decorate(builder: FamilyBuilder) -> FamilyBuilder:
        if name in FAMILIES:
            raise ConfigurationError(f"duplicate scenario family {name!r}")
        FAMILIES[name] = builder
        return builder

    return decorate


@register_family("motion")
def _build_motion(
    seed: int,
    n_clbs: int = 2000,
    regime: str = "default",
) -> ProblemInstance:
    """The paper's benchmark; ``seed`` is carried for uniformity only
    (the application itself is a fixed dataset)."""
    return ProblemInstance(
        application=motion_detection_application(),
        architecture=_platform(regime, n_clbs),
        deadline_ms=MOTION_DEADLINE_MS,
    )


def _build_generated(
    topology: str,
    seed: int,
    num_tasks: int,
    n_clbs: Optional[int] = None,
    regime: str = "default",
    deadline_fraction: float = 0.5,
) -> ProblemInstance:
    if n_clbs is None:
        # Capacity scaled with the workload so ladder rungs stay in the
        # interesting multi-context regime instead of trivially fitting.
        n_clbs = max(400, 25 * num_tasks)
    config = GeneratorConfig(num_tasks=num_tasks, topology=topology)
    application = random_application(
        config, seed=seed, name=f"{topology}_{num_tasks}_s{seed}"
    )
    deadline = round(deadline_fraction * application.total_sw_time_ms(), 6)
    return ProblemInstance(
        application=application,
        architecture=_platform(regime, n_clbs),
        deadline_ms=deadline,
    )


def _register_topology_family(topology: str) -> None:
    @register_family(topology)
    def _build(seed: int, **params: Any) -> ProblemInstance:
        return _build_generated(topology, seed, **params)


for _topology in TOPOLOGIES:
    _register_topology_family(_topology)


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """A named, reproducible benchmark instance recipe."""

    name: str
    family: str
    seed: int = 0
    params: Tuple[Tuple[str, Any], ...] = ()
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ConfigurationError(
                f"unknown scenario family {self.family!r}; "
                f"known: {sorted(FAMILIES)}"
            )

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def build(self) -> ProblemInstance:
        """Materialize the instance (fresh objects every call)."""
        instance = FAMILIES[self.family](self.seed, **self.param_dict)
        instance.name = self.name
        instance.metadata = {
            "family": self.family,
            "seed": self.seed,
            "params": self.param_dict,
        }
        return instance

    def document(self) -> Dict[str, Any]:
        """The bundled, versioned instance document (see ``repro.io``)."""
        return instance_to_dict(self.build())

    def application_spec(self):
        """The scenario as a bundled
        :class:`~repro.api.specs.ApplicationSpec` — drop it into an
        :class:`~repro.api.specs.ExplorationRequest` to search this
        scenario through :func:`repro.api.facade.explore`."""
        from repro.api.specs import ApplicationSpec

        return ApplicationSpec(kind="bundled", document=self.document())


def scenario(
    family: str,
    seed: int = 0,
    name: Optional[str] = None,
    tags: Tuple[str, ...] = (),
    **params: Any,
) -> Scenario:
    """Build a scenario; the default name is ``family/<key params>``."""
    if name is None:
        suffix = "/".join(
            str(v) for _, v in sorted(params.items()) if v != "default"
        )
        name = f"{family}/{suffix}" if suffix else family
    return Scenario(
        name=name,
        family=family,
        seed=seed,
        params=tuple(sorted(params.items())),
        tags=tags,
    )


def scenario_hash(target: "Scenario | ProblemInstance") -> str:
    """SHA-256 of the canonical instance JSON — the scenario's identity.

    Two runs (or two machines, or two Python versions) produce the same
    hash exactly when they benchmarked the same problem.
    """
    document = (
        target.document()
        if isinstance(target, Scenario)
        else instance_to_dict(target)
    )
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the standard corpus
# ----------------------------------------------------------------------
def _standard_corpus() -> Dict[str, Scenario]:
    quick = ("quick", "full")
    full = ("full",)
    entries: List[Scenario] = [
        # motion-detection variants (application fixed, platform varies)
        scenario("motion", name="motion/2000", tags=quick, n_clbs=2000),
        scenario("motion", name="motion/800", tags=quick, n_clbs=800),
        scenario("motion", name="motion/bus_starved", tags=quick,
                 n_clbs=2000, regime="bus_starved"),
        scenario("motion", name="motion/asic_rich", tags=quick,
                 n_clbs=2000, regime="asic_rich"),
        scenario("motion", name="motion/rc_heavy", tags=quick,
                 n_clbs=2000, regime="rc_heavy"),
    ]
    ladders = {
        "tgff": (12, 36, 60, 120, 240),
        "layered": (24, 48, 96, 192),
        "series_parallel": (24, 48, 96, 192),
        "fork_join": (24, 48, 96, 192),
    }
    for family, sizes in ladders.items():
        for num_tasks in sizes:
            tags = quick if num_tasks <= 60 else full
            entries.append(
                scenario(
                    family,
                    name=f"{family}/{num_tasks}",
                    seed=100 + num_tasks,
                    tags=tags,
                    num_tasks=num_tasks,
                )
            )
    # architecture-regime stress on a generated workload
    for regime in ("bus_starved", "asic_rich", "rc_heavy"):
        entries.append(
            scenario(
                "tgff",
                name=f"tgff/60/{regime}",
                seed=160,
                tags=full,
                num_tasks=60,
                regime=regime,
            )
        )
    corpus: Dict[str, Scenario] = {}
    for entry in entries:
        if entry.name in corpus:
            raise ConfigurationError(f"duplicate scenario name {entry.name!r}")
        corpus[entry.name] = entry
    return corpus


CORPUS: Dict[str, Scenario] = _standard_corpus()


def get_scenario(name: str) -> Scenario:
    try:
        return CORPUS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; see `repro bench list`"
        ) from None


def iter_scenarios(
    tag: Optional[str] = None, family: Optional[str] = None
) -> Iterator[Scenario]:
    for entry in CORPUS.values():
        if tag is not None and tag not in entry.tags:
            continue
        if family is not None and entry.family != family:
            continue
        yield entry


def corpus_table(scenarios: Optional[Mapping[str, Scenario]] = None) -> str:
    """Human-readable corpus listing for ``repro bench list``."""
    rows = ["scenario                     family           seed  tags"]
    for entry in (scenarios or CORPUS).values():
        rows.append(
            f"{entry.name:<28} {entry.family:<16} {entry.seed:>5}  "
            f"{','.join(entry.tags)}"
        )
    return "\n".join(rows)
