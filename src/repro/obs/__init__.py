"""Observability layer: run-scoped telemetry recorders and stream tools.

See :mod:`repro.obs.telemetry` for the recorder, the ``NULL`` disabled
singleton, and the JSONL load/validate/summarize helpers.
"""

from repro.obs.telemetry import (
    EVENT_SCHEMA_VERSION,
    NULL,
    NullTelemetry,
    Telemetry,
    canonical_stream,
    format_summary_table,
    load_events,
    strip_times,
    summarize_events,
    validate_events,
)

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "canonical_stream",
    "format_summary_table",
    "load_events",
    "strip_times",
    "summarize_events",
    "validate_events",
]
