"""Run-scoped telemetry: counters, gauges, timers and structured events.

One :class:`Telemetry` recorder accompanies a run (a strategy search, a
runner job, a façade request).  Layers feed it three kinds of data:

* **events** — append-only structured records (``{"ts": ..., "kind":
  ..., **payload}``) with monotonic timestamps, serialized as JSONL;
* **counters / gauges** — cheap integers and scalars (engine memo hits,
  dispatch routes, delta sizes);
* **timers** — per-phase wall-clock accumulators fed by
  :meth:`Telemetry.phase` spans (``propose`` / ``evaluate`` /
  ``accept`` ...).

Determinism contract: *every* wall-clock quantity lives either under the
reserved ``ts`` key or under a key ending in ``_s``.  :func:`strip_times`
removes exactly those keys (recursively), so a fixed-seed event stream is
byte-identical across runs and across ``jobs=N`` once stripped — pinned
by ``tests/obs/test_telemetry.py``.

The disabled path is :data:`NULL`, a shared :class:`NullTelemetry`
singleton whose methods are allocation-free no-ops; hot loops guard
payload construction with ``if telemetry.enabled:`` so a disabled run
does no extra work at all.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro.errors import TelemetryError

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "canonical_stream",
    "format_summary_table",
    "load_events",
    "strip_times",
    "summarize_events",
    "validate_events",
]

#: Version stamp written in the ``run_header`` event of every JSONL
#: stream; bump when the envelope (header/summary framing, reserved
#: keys) changes shape.
EVENT_SCHEMA_VERSION = 1

#: Keys every event record must carry.
_REQUIRED_KEYS = ("ts", "kind")

#: Keys an event may not use for payload data (reserved by the merge
#: and framing layers).
_RESERVED_KEYS = ("ts", "kind", "job", "tag")


class _NullSpan:
    """Reusable no-op context manager (one shared instance, no state)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled recorder: every method is an allocation-free no-op.

    ``enabled`` is ``False`` so instrumented code can skip payload
    construction entirely (``if telemetry.enabled: telemetry.event(...)``).
    Use the module-level :data:`NULL` singleton; there is no reason to
    construct more instances.
    """

    __slots__ = ()

    enabled = False

    def event(self, kind: str, **payload: Any) -> None:
        pass

    def count(self, name: str, value: int = 1) -> None:
        pass

    def counts(self, values: Dict[str, int], prefix: str = "") -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN


#: The shared disabled recorder.  Strategies and engines default to it.
NULL = NullTelemetry()


class _PhaseSpan:
    """Accumulates elapsed wall-clock into ``telemetry.timers[name]``."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        elapsed = time.perf_counter() - self._start
        timers = self._telemetry.timers
        key = self._name
        timers[key] = timers.get(key, 0.0) + elapsed
        return False


class Telemetry:
    """Run-scoped recorder for events, counters, gauges and phase timers.

    Parameters
    ----------
    label:
        Human-readable run label written in the ``run_header`` event.
    step_interval:
        Strategies emit a ``step`` event every ``step_interval``
        iterations (plus the first and last); 0 disables step sampling
        while keeping begin/end events.
    """

    enabled = True

    def __init__(self, label: Optional[str] = None, step_interval: int = 100) -> None:
        self.label = label
        self.step_interval = int(step_interval)
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Any] = {}
        #: Phase name -> accumulated seconds.  Keys are suffixed ``_s``
        #: by :meth:`phase` so :func:`strip_times` drops them wholesale.
        self.timers: Dict[str, float] = {}

    # -- recording -----------------------------------------------------
    def event(self, kind: str, **payload: Any) -> None:
        """Append a structured event stamped with a monotonic time."""
        rec: Dict[str, Any] = {"ts": time.monotonic(), "kind": kind}
        rec.update(payload)
        self.events.append(rec)

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def counts(self, values: Dict[str, int], prefix: str = "") -> None:
        """Merge a counter dict (e.g. an engine's ``telemetry_counters()``)."""
        counters = self.counters
        for name, value in values.items():
            key = prefix + name
            counters[key] = counters.get(key, 0) + value

    def gauge(self, name: str, value: Any) -> None:
        self.gauges[name] = value

    def phase(self, name: str) -> _PhaseSpan:
        """Context manager timing one phase; accumulates ``<name>_s``."""
        return _PhaseSpan(self, name + "_s")

    # -- export / merge ------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Counters/gauges/timers as one JSON-safe dict."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "timers": dict(sorted(self.timers.items())),
        }

    def export(self) -> Dict[str, Any]:
        """Picklable payload for crossing a process boundary."""
        out = self.snapshot()
        out["label"] = self.label
        out["events"] = list(self.events)
        return out

    def job_config(self) -> Dict[str, Any]:
        """Plain-dict config a worker uses to build its own recorder."""
        return {"step_interval": self.step_interval}

    def absorb(
        self,
        index: int,
        tag: Any,
        payload: Optional[Dict[str, Any]],
    ) -> None:
        """Merge one job's exported stream into this recorder.

        Events are re-emitted tagged with ``job`` (submission index) and
        ``tag``; counters and timers are summed; gauges are last-write
        in absorb order.  Callers absorb jobs in index order, which
        makes the merged stream deterministic regardless of how many
        workers raced.
        """
        if not payload:
            return
        for ev in payload.get("events", ()):
            rec = dict(ev)
            rec["job"] = index
            if tag is not None:
                rec.setdefault("tag", tag)
            self.events.append(rec)
        self.counts(payload.get("counters", {}))
        for name, value in payload.get("timers", {}).items():
            self.timers[name] = self.timers.get(name, 0.0) + value
        self.gauges.update(payload.get("gauges", {}))

    # -- serialization -------------------------------------------------
    def header_record(self) -> Dict[str, Any]:
        return {
            "ts": time.monotonic(),
            "kind": "run_header",
            "schema_version": EVENT_SCHEMA_VERSION,
            "label": self.label,
            "step_interval": self.step_interval,
        }

    def summary_record(self) -> Dict[str, Any]:
        rec: Dict[str, Any] = {"ts": time.monotonic(), "kind": "run_summary"}
        rec.update(self.snapshot())
        return rec

    def write_jsonl(self, stream: TextIO) -> int:
        """Write header + events + summary as JSONL; returns line count."""
        records = [self.header_record()]
        records.extend(self.events)
        records.append(self.summary_record())
        for rec in records:
            stream.write(json.dumps(rec, sort_keys=True))
            stream.write("\n")
        return len(records)

    def write_jsonl_path(self, path: str) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            return self.write_jsonl(handle)


# ----------------------------------------------------------------------
# Stream utilities: load / validate / strip / summarize.
# ----------------------------------------------------------------------
def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL file into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise TelemetryError(f"{path}:{lineno}: invalid JSON: {exc}")
            events.append(rec)
    return events


def validate_events(events: Sequence[Dict[str, Any]]) -> None:
    """Check a stream against the event schema; raises TelemetryError.

    Rules: every record is a JSON object with a numeric ``ts`` and a
    non-empty string ``kind``; the first record is a ``run_header``
    carrying a known ``schema_version``; all values are JSON-safe.
    """
    if not events:
        raise TelemetryError("empty telemetry stream")
    for pos, rec in enumerate(events):
        if not isinstance(rec, dict):
            raise TelemetryError(f"event {pos}: not a JSON object")
        for key in _REQUIRED_KEYS:
            if key not in rec:
                raise TelemetryError(f"event {pos}: missing required key {key!r}")
        if not isinstance(rec["ts"], (int, float)) or isinstance(rec["ts"], bool):
            raise TelemetryError(f"event {pos}: 'ts' must be a number")
        kind = rec["kind"]
        if not isinstance(kind, str) or not kind:
            raise TelemetryError(f"event {pos}: 'kind' must be a non-empty string")
        try:
            json.dumps(rec)
        except (TypeError, ValueError) as exc:
            raise TelemetryError(f"event {pos}: not JSON-serializable: {exc}")
    head = events[0]
    if head["kind"] != "run_header":
        raise TelemetryError("stream must start with a 'run_header' event")
    if head.get("schema_version") != EVENT_SCHEMA_VERSION:
        raise TelemetryError(
            "unknown schema_version "
            f"{head.get('schema_version')!r} (expected {EVENT_SCHEMA_VERSION})"
        )


def strip_times(obj: Any) -> Any:
    """Drop every wall-clock field: ``ts`` keys and keys ending ``_s``.

    Applied recursively; what survives must be byte-identical across
    fixed-seed runs (the determinism contract of this module).
    """
    if isinstance(obj, dict):
        return {
            key: strip_times(value)
            for key, value in obj.items()
            if key != "ts" and not key.endswith("_s")
        }
    if isinstance(obj, (list, tuple)):
        return [strip_times(value) for value in obj]
    return obj


def canonical_stream(events: Sequence[Dict[str, Any]]) -> str:
    """Timestamp-stripped, key-sorted JSONL — the comparison form used
    by the determinism tests and CI smoke."""
    return "\n".join(
        json.dumps(strip_times(rec), sort_keys=True) for rec in events
    )


def summarize_events(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a loaded stream into per-kind counts, merged counters
    and timers, and per-job search outcomes."""
    kinds: Dict[str, int] = {}
    counters: Dict[str, int] = {}
    timers: Dict[str, float] = {}
    jobs: Dict[str, Dict[str, Any]] = {}
    label = None
    for rec in events:
        kind = rec.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "run_header":
            label = rec.get("label")
        elif kind == "run_summary":
            for name, value in rec.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            for name, value in rec.get("timers", {}).items():
                timers[name] = timers.get(name, 0.0) + value
        elif kind == "search_end":
            job_key = _job_key(rec)
            jobs[job_key] = {
                "strategy": rec.get("strategy"),
                "best_cost": rec.get("best_cost"),
                "iterations": rec.get("iterations"),
                "evaluations": rec.get("evaluations"),
                "runtime_s": rec.get("runtime_s"),
            }
    return {
        "label": label,
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "counters": dict(sorted(counters.items())),
        "timers": dict(sorted(timers.items())),
        "jobs": jobs,
    }


def _job_key(rec: Dict[str, Any]) -> str:
    parts = []
    if "job" in rec:
        parts.append(f"job{rec['job']}")
    if "tag" in rec:
        parts.append(str(rec["tag"]))
    return ":".join(parts) if parts else "run"


def format_summary_table(summary: Dict[str, Any]) -> str:
    """Render :func:`summarize_events` output as an aligned text table."""
    lines = [f"telemetry summary — {summary.get('label') or 'unlabeled run'}"]
    lines.append(f"events: {summary['events']}")
    lines.append(f"{'kind':<24} {'count':>8}")
    for kind, count in summary["kinds"].items():
        lines.append(f"{kind:<24} {count:>8}")
    if summary["jobs"]:
        lines.append("")
        lines.append(
            f"{'job':<20} {'strategy':<14} {'best cost':>12} "
            f"{'iters':>8} {'evals':>9} {'time (s)':>9}"
        )
        for key, row in summary["jobs"].items():
            best = row.get("best_cost")
            runtime = row.get("runtime_s")
            best_text = "-" if best is None else format(best, ".3f")
            runtime_text = "-" if runtime is None else format(runtime, ".2f")
            lines.append(
                f"{key:<20} {str(row.get('strategy') or '?'):<14} "
                f"{best_text:>12} "
                f"{row.get('iterations') or 0:>8} "
                f"{row.get('evaluations') or 0:>9} "
                f"{runtime_text:>9}"
            )
    if summary["counters"]:
        lines.append("")
        lines.append(f"{'counter':<40} {'value':>12}")
        for name, value in summary["counters"].items():
            lines.append(f"{name:<40} {value:>12}")
    if summary["timers"]:
        lines.append("")
        lines.append(f"{'phase':<40} {'seconds':>12}")
        for name, value in summary["timers"].items():
            lines.append(f"{name:<40} {value:>12.4f}")
    return "\n".join(lines)
