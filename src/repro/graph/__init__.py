"""Graph substrate: DAGs, incremental closures and longest-path algebra.

This subpackage is self-contained (no dependency on the application or
architecture models) and provides:

* :class:`~repro.graph.dag.Dag` — a mutable directed acyclic graph with
  node/edge attributes, the base structure for task graphs and search
  graphs.
* :class:`~repro.graph.closure.PathCountClosure` — an incrementally
  maintained path-count matrix giving O(1) reachability/cycle queries
  (the "transitive closure matrix" of the paper's section 4.3).
* :mod:`~repro.graph.longest_path` — topological longest-path dynamic
  programming (the paper's makespan evaluation, section 4.4).
* :class:`~repro.graph.maxplus.MaxPlusClosure` — a max-plus all-pairs
  longest-distance matrix with Woodbury-style incremental edge updates
  (the paper's incremental evaluation, section 4.4).
* :mod:`~repro.graph.generators` — random DAG generators used by tests
  and benchmarks.
"""

from repro.graph.dag import Dag, NodeInterner
from repro.graph.closure import PathCountClosure
from repro.graph.maxplus import MaxPlusClosure, NEG_INF
from repro.graph.longest_path import (
    topological_order,
    longest_path_length,
    earliest_start_times,
    earliest_starts_indexed,
    kahn_order_indices,
    makespan_from_starts,
    critical_path,
)

__all__ = [
    "Dag",
    "NodeInterner",
    "PathCountClosure",
    "MaxPlusClosure",
    "NEG_INF",
    "topological_order",
    "longest_path_length",
    "earliest_start_times",
    "earliest_starts_indexed",
    "kahn_order_indices",
    "makespan_from_starts",
    "critical_path",
]
