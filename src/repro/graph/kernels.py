"""Vectorized graph kernels for batched candidate evaluation.

The scalar engines score one candidate at a time with Python loops;
these kernels score a whole *batch* of candidate realizations in a
handful of NumPy calls.  The K candidates are laid out as K disjoint
copies ("lanes") of an ``n``-node graph — lane ``k``'s node ``v`` has
the global id ``k * n + v`` — and one frontier-synchronous pass runs
Kahn's peeling and the ASAP/longest-path DP fused over all lanes at
once.  Per frontier round the kernel gathers every in-edge of every
ready node across every lane, reduces them with a segment max, and
peels the frontier's out-edges; the number of NumPy dispatches is
proportional to the graph *depth*, not to ``K * (V + E)``.

Bitwise parity with the scalar DP is part of the contract: a node's
start time is ``max(0.0, max over in-edges of finish[src] + w)`` and
its finish time is ``start + duration`` — the identical float
operations, and ``max`` over an identical candidate set does not depend
on reduction order (the operands are non-NaN and the result is one of
them, not a rounded combination).  ``tests/graph/test_kernels.py``
pins the equivalence against the dict- and list-based DPs.

Cyclic lanes do not deadlock the batch: peeling simply never reaches
their cycle members, and the per-lane ``feasible`` flags report which
lanes realized acyclically (mirroring the scalar engines' infeasible
verdict for cyclic realizations).
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError


def require_numpy():
    """Return the :mod:`numpy` module or raise a pointed error.

    The ``array`` engine and the batched move-evaluation kernels are
    NumPy-backed; the scalar engines are not, so the import lives in a
    helper instead of at module scope.
    """
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy ships with the env
        raise ConfigurationError(
            "the array evaluation engine requires numpy; install it or "
            "select engine='incremental'"
        ) from None
    return numpy


def batched_longest_path(
    num_lanes: int,
    num_nodes: int,
    edge_src,
    edge_dst,
    edge_weight,
    durations,
) -> Tuple[object, object, object]:
    """Fused Kahn + ASAP-DP over ``num_lanes`` disjoint graph copies.

    Parameters
    ----------
    edge_src, edge_dst:
        int64 arrays of *global* node ids (``lane * num_nodes + v``)
        covering every lane's edges; parallel edges are allowed.
    edge_weight:
        float64 edge weights, aligned with ``edge_src``.
    durations:
        float64 array of length ``num_lanes * num_nodes`` — per-lane
        node durations.

    Returns
    -------
    (starts, finish, feasible):
        ``starts``/``finish`` are float64 arrays of length
        ``num_lanes * num_nodes``; ``feasible`` is a bool array of
        length ``num_lanes`` (False for lanes whose edges form a cycle;
        their start/finish entries are meaningless).
    """
    np = require_numpy()
    total = num_lanes * num_nodes
    edge_src = np.asarray(edge_src, dtype=np.int64)
    edge_dst = np.asarray(edge_dst, dtype=np.int64)
    edge_weight = np.asarray(edge_weight, dtype=np.float64)
    durations = np.asarray(durations, dtype=np.float64)

    starts = np.zeros(total)
    finish = np.empty(total)
    if edge_src.size == 0:
        np.add(starts, durations, out=finish)
        return starts, finish, np.ones(num_lanes, dtype=bool)

    # CSR by destination (in-edges) and by source (out-edges).
    in_order = np.argsort(edge_dst, kind="stable")
    in_src = edge_src[in_order]
    in_w = edge_weight[in_order]
    in_counts = np.bincount(edge_dst, minlength=total)
    in_indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(in_counts, out=in_indptr[1:])

    out_order = np.argsort(edge_src, kind="stable")
    out_dst = edge_dst[out_order]
    out_counts = np.bincount(edge_src, minlength=total)
    out_indptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_indptr[1:])

    indeg = in_counts.copy()
    frontier = np.nonzero(indeg == 0)[0]
    done = 0
    while frontier.size:
        done += frontier.size
        # Start times: segment max of finish[src] + w over each ready
        # node's in-edges (ready nodes' predecessors are all final).
        counts = in_counts[frontier]
        has_preds = counts > 0
        with_preds = frontier[has_preds]
        if with_preds.size:
            cnt = counts[has_preds]
            offsets = in_indptr[with_preds]
            seg_starts = np.zeros(cnt.size, dtype=np.int64)
            np.cumsum(cnt[:-1], out=seg_starts[1:])
            flat = np.arange(int(cnt.sum()), dtype=np.int64)
            flat += np.repeat(offsets - seg_starts, cnt)
            candidates = finish[in_src[flat]] + in_w[flat]
            best = np.maximum.reduceat(candidates, seg_starts)
            starts[with_preds] = np.maximum(best, 0.0)
        finish[frontier] = starts[frontier] + durations[frontier]
        # Peel the frontier's out-edges and collect newly ready nodes.
        counts = out_counts[frontier]
        has_succs = counts > 0
        with_succs = frontier[has_succs]
        if not with_succs.size:
            break
        cnt = counts[has_succs]
        offsets = out_indptr[with_succs]
        seg_starts = np.zeros(cnt.size, dtype=np.int64)
        np.cumsum(cnt[:-1], out=seg_starts[1:])
        flat = np.arange(int(cnt.sum()), dtype=np.int64)
        flat += np.repeat(offsets - seg_starts, cnt)
        targets = out_dst[flat]
        # Frontier-local decrement via one bincount over the peeled
        # edges' targets (cheaper than per-element ufunc.at), then the
        # newly-ready set is every decremented node that hit zero.  A
        # target can never be an already-processed node (that would be
        # a back-edge), so ``indeg == 0`` identifies exactly the fresh
        # frontier; the bincount mask dedups repeated targets without a
        # sort.
        lo = int(targets.min())
        hits = np.bincount(targets - lo)
        indeg[lo : lo + hits.size] -= hits
        ready_mask = hits.astype(bool)
        ready_mask &= indeg[lo : lo + hits.size] == 0
        frontier = np.flatnonzero(ready_mask) + lo

    if done == total:
        feasible = np.ones(num_lanes, dtype=bool)
    else:
        # A node was processed iff its indegree was consumed to zero
        # (cycle members keep a positive residual forever), so the
        # final indegrees identify the cyclic lanes for free.
        feasible = (indeg == 0).reshape(num_lanes, num_nodes).all(axis=1)
    return starts, finish, feasible


def lane_makespans(finish, feasible, num_lanes: int, num_nodes: int):
    """Per-lane makespan: max finish over each feasible lane's nodes
    (``inf`` for infeasible lanes)."""
    np = require_numpy()
    spans = np.asarray(finish, dtype=np.float64).reshape(
        num_lanes, num_nodes
    ).max(axis=1)
    spans[~np.asarray(feasible, dtype=bool)] = np.inf
    return spans
