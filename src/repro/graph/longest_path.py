"""Topological longest-path dynamic programming.

This is the paper's solution-evaluation primitive (section 4.4): the cost
of a candidate mapping is the longest path of the search graph, where
node weights are execution times and edge weights are communication or
reconfiguration delays.

The functions operate directly on :class:`~repro.graph.dag.Dag`
adjacency (no copies), with node weights read from a callable so the
mapping layer can plug in assignment-dependent execution times.

Two families live here:

* the :class:`Dag`-based functions (``earliest_start_times``,
  ``longest_path_length``, ``critical_path``, ``bottom_levels``) used by
  analysis, scheduling and the full-rebuild evaluation engine;
* generic array-backed kernels (``kahn_order_indices``,
  ``earliest_starts_indexed``, ``makespan_from_starts``) operating on
  dense integer node ids and flat edge arrays, equivalents of the
  ``Dag`` functions without tuple-key hashing
  (``tests/graph/test_array_kernels.py`` proves the equivalence).
  :class:`repro.mapping.engine.IncrementalEngine` computes its base
  topological order through ``kahn_order_indices`` and inlines
  further-specialized DP variants that exploit its fixed node-id
  layout.
"""

from __future__ import annotations

from math import isclose
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import CycleError

Node = Hashable
Weight = Callable[[Node], float]


def _zero_weight(_node: Node) -> float:
    return 0.0


def topological_order(dag) -> List[Node]:
    """Topological order of a :class:`Dag` (Kahn); raises on cycles."""
    return dag.topological_order()


def earliest_start_times(
    dag,
    node_weight: Weight = _zero_weight,
    order: Optional[Sequence[Node]] = None,
) -> Dict[Node, float]:
    """ASAP start time of every node.

    ``start[v] = max over predecessors u of (start[u] + w(u) + edge(u, v))``
    with sources starting at 0.  ``node_weight(u)`` is the execution
    duration of ``u`` and edge weights are read from the DAG.
    """
    if order is None:
        order = dag.topological_order()
    start: Dict[Node, float] = {}
    pred = dag.pred
    for node in order:
        best = 0.0
        for prev, edge_w in pred[node].items():
            candidate = start[prev] + node_weight(prev) + edge_w
            if candidate > best:
                best = candidate
        start[node] = best
    return start


def longest_path_length(
    dag,
    node_weight: Weight = _zero_weight,
    order: Optional[Sequence[Node]] = None,
) -> float:
    """Length of the longest path: max over nodes of finish time.

    Finish time of ``v`` is ``start[v] + node_weight(v)``; with zero node
    weights this degenerates to the classic edge-weighted longest path.
    Returns 0.0 for an empty graph.
    """
    start = earliest_start_times(dag, node_weight, order)
    best = 0.0
    for node, s in start.items():
        finish = s + node_weight(node)
        if finish > best:
            best = finish
    return best


def latest_start_times(
    dag,
    makespan: float,
    node_weight: Weight = _zero_weight,
    order: Optional[Sequence[Node]] = None,
) -> Dict[Node, float]:
    """ALAP start times for a given overall deadline ``makespan``."""
    if order is None:
        order = dag.topological_order()
    late: Dict[Node, float] = {}
    succ = dag.succ
    for node in reversed(order):
        best = makespan - node_weight(node)
        for nxt, edge_w in succ[node].items():
            candidate = late[nxt] - edge_w - node_weight(node)
            if candidate < best:
                best = candidate
        late[node] = best
    return late


def critical_path(
    dag,
    node_weight: Weight = _zero_weight,
) -> Tuple[float, List[Node]]:
    """Longest path length and one witness path (list of nodes).

    Ties are broken arbitrarily but deterministically (dict order).
    """
    order = dag.topological_order()
    start = earliest_start_times(dag, node_weight, order)
    best_node: Optional[Node] = None
    best_finish = 0.0
    for node in order:
        finish = start[node] + node_weight(node)
        if best_node is None or finish > best_finish:
            best_node = node
            best_finish = finish
    if best_node is None:
        return 0.0, []
    # Walk backwards along tight predecessors.  Tightness is a *relative*
    # comparison: an absolute epsilon (the old ``< 1e-12``) fails for
    # durations far from 1.0 — microsecond-scale graphs would match every
    # predecessor, second-scale graphs none (float error exceeds 1e-12).
    path = [best_node]
    pred = dag.pred
    current = best_node
    while True:
        found = None
        for prev, edge_w in pred[current].items():
            if isclose(
                start[prev] + node_weight(prev) + edge_w,
                start[current],
                rel_tol=1e-9,
                abs_tol=0.0,
            ):
                found = prev
                break
        if found is None:
            break
        path.append(found)
        current = found
    path.reverse()
    return best_finish, path


# ----------------------------------------------------------------------
# array-backed kernels (dense integer node ids, flat edge arrays)
# ----------------------------------------------------------------------
def kahn_order_indices(
    num_nodes: int,
    indegree: Sequence[int],
    successors: Sequence[Sequence[int]],
    keys: Optional[Sequence[Hashable]] = None,
    successors2: Optional[Sequence[Sequence[int]]] = None,
    chain_next: Optional[Sequence[int]] = None,
) -> List[int]:
    """Kahn's algorithm over dense ids; raises :class:`CycleError`.

    ``indegree`` is copied (the caller's array is not consumed) and
    ``successors[u]`` lists the targets of every edge out of ``u``
    (parallel edges appear once per edge, matching their contribution to
    ``indegree``).  ``successors2`` optionally overlays a second edge
    layer, so a caller can keep a static skeleton and a mutable overlay
    in separate structures without merging them; ``chain_next``
    optionally overlays chain edges in pointer-array form (at most one
    outgoing chain edge per node, ``-1`` meaning none — how the
    incremental engine stores processor orders).  The ready set is
    consumed FIFO, mirroring
    :meth:`repro.graph.dag.Dag.topological_order`.  ``keys`` maps ids
    back to original node identifiers for the cycle report.
    """
    indeg = list(indegree)
    order = [v for v in range(num_nodes) if indeg[v] == 0]
    head = 0
    while head < len(order):
        node = order[head]
        head += 1
        for succ in successors[node]:
            indeg[succ] -= 1
            if indeg[succ] == 0:
                order.append(succ)
        if successors2 is not None:
            for succ in successors2[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    order.append(succ)
        if chain_next is not None:
            succ = chain_next[node]
            if succ >= 0:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    order.append(succ)
    if len(order) != num_nodes:
        stuck = [v for v in range(num_nodes) if indeg[v] > 0]
        raise CycleError(
            "graph contains a cycle",
            cycle=[keys[v] for v in stuck] if keys is not None else stuck,
        )
    return order


def earliest_starts_indexed(
    order: Sequence[int],
    pred_edges: Sequence[Sequence[int]],
    edge_src: Sequence[int],
    edge_weight: Sequence[float],
    durations: Sequence[float],
    starts: Optional[List[float]] = None,
    chain_pred: Optional[Sequence[int]] = None,
    pred_pairs2: Optional[Sequence[Sequence[Tuple[int, float]]]] = None,
    finish: Optional[List[float]] = None,
) -> List[float]:
    """ASAP start times over flat arrays.

    ``pred_edges[v]`` holds *edge ids*; edge ``ei`` runs from
    ``edge_src[ei]`` to ``v`` with weight ``edge_weight[ei]``.  Node
    durations are charged on the source side exactly like
    :func:`earliest_start_times` (``start[u] + dur[u] + w``), so the two
    DPs produce bit-identical floats on identical graphs (the maximum
    over an identical candidate set does not depend on iteration order).
    ``pred_pairs2`` overlays a second edge layer in ``(src, weight)``
    pair form; ``chain_pred`` optionally adds one zero-weight
    predecessor per node (a serialization chain), ``-1`` meaning none.
    ``starts`` may be a preallocated buffer of length >= num nodes;
    ``finish``, when given, receives ``starts[v] + durations[v]`` per
    node so the caller can reduce the makespan with a C-level ``max``.
    """
    if starts is None:
        starts = [0.0] * len(pred_edges)
    if finish is None:
        for v in order:
            best = 0.0
            for ei in pred_edges[v]:
                u = edge_src[ei]
                candidate = starts[u] + durations[u] + edge_weight[ei]
                if candidate > best:
                    best = candidate
            if pred_pairs2 is not None:
                for u, w in pred_pairs2[v]:
                    candidate = starts[u] + durations[u] + w
                    if candidate > best:
                        best = candidate
            if chain_pred is not None:
                u = chain_pred[v]
                if u >= 0:
                    candidate = starts[u] + durations[u]
                    if candidate > best:
                        best = candidate
            starts[v] = best
        return starts
    # Finish-folding variant: each candidate reads the predecessor's
    # precomputed finish time ((start + dur) + w associates exactly like
    # start + dur + w, so the floats are unchanged).
    for v in order:
        best = 0.0
        for ei in pred_edges[v]:
            candidate = finish[edge_src[ei]] + edge_weight[ei]
            if candidate > best:
                best = candidate
        if pred_pairs2 is not None:
            for u, w in pred_pairs2[v]:
                candidate = finish[u] + w
                if candidate > best:
                    best = candidate
        if chain_pred is not None:
            u = chain_pred[v]
            if u >= 0:
                candidate = finish[u]
                if candidate > best:
                    best = candidate
        starts[v] = best
        finish[v] = best + durations[v]
    return starts


def makespan_from_starts(
    starts: Sequence[float], durations: Sequence[float], num_nodes: int
) -> float:
    """Max finish time over the first ``num_nodes`` ids (0.0 if none)."""
    best = 0.0
    for v in range(num_nodes):
        finish = starts[v] + durations[v]
        if finish > best:
            best = finish
    return best


def bottom_levels(
    dag,
    node_weight: Weight = _zero_weight,
) -> Dict[Node, float]:
    """Bottom level of each node: longest node+edge weight path to a sink,
    *including* the node's own weight.  This is the classic critical-path
    priority used by list schedulers.
    """
    order = dag.topological_order()
    levels: Dict[Node, float] = {}
    succ = dag.succ
    for node in reversed(order):
        best = 0.0
        for nxt, edge_w in succ[node].items():
            candidate = edge_w + levels[nxt]
            if candidate > best:
                best = candidate
        levels[node] = node_weight(node) + best
    return levels
