"""Topological longest-path dynamic programming.

This is the paper's solution-evaluation primitive (section 4.4): the cost
of a candidate mapping is the longest path of the search graph, where
node weights are execution times and edge weights are communication or
reconfiguration delays.

The functions operate directly on :class:`~repro.graph.dag.Dag`
adjacency (no copies), with node weights read from a callable so the
mapping layer can plug in assignment-dependent execution times.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import CycleError

Node = Hashable
Weight = Callable[[Node], float]


def _zero_weight(_node: Node) -> float:
    return 0.0


def topological_order(dag) -> List[Node]:
    """Topological order of a :class:`Dag` (Kahn); raises on cycles."""
    return dag.topological_order()


def earliest_start_times(
    dag,
    node_weight: Weight = _zero_weight,
    order: Optional[Sequence[Node]] = None,
) -> Dict[Node, float]:
    """ASAP start time of every node.

    ``start[v] = max over predecessors u of (start[u] + w(u) + edge(u, v))``
    with sources starting at 0.  ``node_weight(u)`` is the execution
    duration of ``u`` and edge weights are read from the DAG.
    """
    if order is None:
        order = dag.topological_order()
    start: Dict[Node, float] = {}
    pred = dag.pred
    for node in order:
        best = 0.0
        for prev, edge_w in pred[node].items():
            candidate = start[prev] + node_weight(prev) + edge_w
            if candidate > best:
                best = candidate
        start[node] = best
    return start


def longest_path_length(
    dag,
    node_weight: Weight = _zero_weight,
    order: Optional[Sequence[Node]] = None,
) -> float:
    """Length of the longest path: max over nodes of finish time.

    Finish time of ``v`` is ``start[v] + node_weight(v)``; with zero node
    weights this degenerates to the classic edge-weighted longest path.
    Returns 0.0 for an empty graph.
    """
    start = earliest_start_times(dag, node_weight, order)
    best = 0.0
    for node, s in start.items():
        finish = s + node_weight(node)
        if finish > best:
            best = finish
    return best


def latest_start_times(
    dag,
    makespan: float,
    node_weight: Weight = _zero_weight,
    order: Optional[Sequence[Node]] = None,
) -> Dict[Node, float]:
    """ALAP start times for a given overall deadline ``makespan``."""
    if order is None:
        order = dag.topological_order()
    late: Dict[Node, float] = {}
    succ = dag.succ
    for node in reversed(order):
        best = makespan - node_weight(node)
        for nxt, edge_w in succ[node].items():
            candidate = late[nxt] - edge_w - node_weight(node)
            if candidate < best:
                best = candidate
        late[node] = best
    return late


def critical_path(
    dag,
    node_weight: Weight = _zero_weight,
) -> Tuple[float, List[Node]]:
    """Longest path length and one witness path (list of nodes).

    Ties are broken arbitrarily but deterministically (dict order).
    """
    order = dag.topological_order()
    start = earliest_start_times(dag, node_weight, order)
    best_node: Optional[Node] = None
    best_finish = 0.0
    for node in order:
        finish = start[node] + node_weight(node)
        if best_node is None or finish > best_finish:
            best_node = node
            best_finish = finish
    if best_node is None:
        return 0.0, []
    # Walk backwards along tight predecessors.
    path = [best_node]
    pred = dag.pred
    current = best_node
    while True:
        found = None
        for prev, edge_w in pred[current].items():
            if abs(start[prev] + node_weight(prev) + edge_w - start[current]) < 1e-12:
                found = prev
                break
        if found is None:
            break
        path.append(found)
        current = found
    path.reverse()
    return best_finish, path


def bottom_levels(
    dag,
    node_weight: Weight = _zero_weight,
) -> Dict[Node, float]:
    """Bottom level of each node: longest node+edge weight path to a sink,
    *including* the node's own weight.  This is the classic critical-path
    priority used by list schedulers.
    """
    order = dag.topological_order()
    levels: Dict[Node, float] = {}
    succ = dag.succ
    for node in reversed(order):
        best = 0.0
        for nxt, edge_w in succ[node].items():
            candidate = edge_w + levels[nxt]
            if candidate > best:
                best = candidate
        levels[node] = node_weight(node) + best
    return levels
