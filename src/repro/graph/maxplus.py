"""Max-plus all-pairs longest-distance closure with incremental updates.

Section 4.4 of the paper notes that, because simulated annealing only
perturbs the search graph locally, the longest path "may in some cases be
obtained incrementally by means of a Woodbury-type update formula".  In
the (max, +) semiring the closure matrix ``D`` (``D[u][v]`` = longest
edge-weight distance from ``u`` to ``v``) plays the role of the matrix
inverse, and the rank-one Woodbury correction for a new edge ``(a, b)``
of weight ``w`` reads::

    D'[u][v] = max(D[u][v],  D[u][a] + w + D[b][v])

with the convention ``D[x][x] = 0`` and ``-inf`` for unreachable pairs.

Edge *insertions* and weight *increases* are therefore O(n²).  Weight
decreases and deletions cannot be downdated in (max, +) (no additive
inverse), so they mark the closure dirty and the next query triggers a
full O(n·e) recomputation — matching the paper's "in some cases"
qualifier.  The annealer exploits this: a rejected move is rolled back
cheaply by restoring a snapshot instead of downdating.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import CycleError, GraphError

Node = Hashable

#: Additive identity of the (max, +) semiring.
NEG_INF = -math.inf


class MaxPlusClosure:
    """All-pairs longest distances over a DAG, incrementally updatable."""

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._index: Dict[Node, int] = {}
        self._dist: List[List[float]] = []
        self._edges: Dict[Tuple[Node, Node], float] = {}
        self._dirty = False
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def add_node(self, node: Node) -> None:
        if node in self._index:
            raise GraphError(f"node {node!r} already tracked")
        slot = len(self._dist)
        for row in self._dist:
            row.append(NEG_INF)
        self._dist.append([NEG_INF] * (slot + 1))
        self._dist[slot][slot] = 0.0
        self._index[node] = slot

    def _require(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"node {node!r} is not tracked") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, src: Node, dst: Node) -> float:
        """Longest edge-weight distance, ``-inf`` if unreachable."""
        if self._dirty:
            self._recompute()
        return self._dist[self._require(src)][self._require(dst)]

    def has_path(self, src: Node, dst: Node) -> bool:
        return self.distance(src, dst) > NEG_INF

    def would_create_cycle(self, src: Node, dst: Node) -> bool:
        if src == dst:
            return True
        return self.has_path(dst, src)

    def longest_path_length(self) -> float:
        """Maximum finite entry of the closure (0.0 for edgeless graphs)."""
        if self._dirty:
            self._recompute()
        best = 0.0
        for row in self._dist:
            for value in row:
                if value > best:
                    best = value
        return best

    @property
    def is_dirty(self) -> bool:
        return self._dirty

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_edge(self, src: Node, dst: Node, weight: float = 0.0) -> None:
        """Insert an edge with the O(n²) Woodbury-style max-plus update."""
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        if (src, dst) in self._edges:
            raise GraphError(f"edge ({src!r}, {dst!r}) already exists")
        i, j = self._require(src), self._require(dst)
        if self._dirty:
            self._edges[(src, dst)] = weight
            return
        dist = self._dist
        if dist[j][i] > NEG_INF:
            raise CycleError(f"edge ({src!r}, {dst!r}) would create a cycle")
        self._edges[(src, dst)] = weight
        slots = list(self._index.values())
        row_j = dist[j]
        for u in slots:
            via = dist[u][i] + weight
            if via == NEG_INF:
                continue
            row_u = dist[u]
            for v in slots:
                candidate = via + row_j[v]
                if candidate > row_u[v]:
                    row_u[v] = candidate

    def increase_edge_weight(self, src: Node, dst: Node, weight: float) -> None:
        """Raise an existing edge's weight (O(n²) incremental)."""
        old = self._edges.get((src, dst))
        if old is None:
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist")
        if weight < old:
            raise GraphError("use set_edge_weight for weight decreases")
        self._edges[(src, dst)] = weight
        if self._dirty or weight == old:
            return
        i, j = self._require(src), self._require(dst)
        dist = self._dist
        slots = list(self._index.values())
        row_j = dist[j]
        for u in slots:
            via = dist[u][i] + weight
            if via == NEG_INF:
                continue
            row_u = dist[u]
            for v in slots:
                candidate = via + row_j[v]
                if candidate > row_u[v]:
                    row_u[v] = candidate

    def remove_edge(self, src: Node, dst: Node) -> None:
        """Delete an edge; marks the closure dirty (lazy recompute)."""
        if (src, dst) not in self._edges:
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist")
        del self._edges[(src, dst)]
        self._dirty = True

    def set_edge_weight(self, src: Node, dst: Node, weight: float) -> None:
        """Change an edge weight; decreases mark the closure dirty."""
        old = self._edges.get((src, dst))
        if old is None:
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist")
        if weight >= old:
            self.increase_edge_weight(src, dst, weight)
        else:
            self._edges[(src, dst)] = weight
            self._dirty = True

    # ------------------------------------------------------------------
    # recomputation
    # ------------------------------------------------------------------
    def _recompute(self) -> None:
        """Full rebuild: topological DP from every source, O(n·e)."""
        succ: Dict[Node, List[Tuple[Node, float]]] = {n: [] for n in self._index}
        indeg: Dict[Node, int] = {n: 0 for n in self._index}
        for (src, dst), weight in self._edges.items():
            succ[src].append((dst, weight))
            indeg[dst] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for nxt, _ in succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(self._index):
            raise CycleError("closure edge set contains a cycle")
        n = len(self._dist)
        for i, row in enumerate(self._dist):
            for j in range(n):
                row[j] = NEG_INF
            row[i] = 0.0
        dist = self._dist
        positions = {node: pos for pos, node in enumerate(order)}
        for start in self._index:
            row = dist[self._index[start]]
            start_pos = positions[start]
            for node in order[start_pos:]:
                base = row[self._index[node]]
                if base == NEG_INF:
                    continue
                for nxt, weight in succ[node]:
                    candidate = base + weight
                    k = self._index[nxt]
                    if candidate > row[k]:
                        row[k] = candidate
        self._dirty = False

    @classmethod
    def from_dag(cls, dag) -> "MaxPlusClosure":
        closure = cls(dag.nodes())
        for src, dst, weight in dag.edges():
            closure.add_edge(src, dst, weight)
        return closure

    def self_check(self) -> None:
        """Verify incremental distances against a fresh recomputation."""
        snapshot = [row[:] for row in self._dist]
        dirty = self._dirty
        self._dirty = True
        self._recompute()
        if not dirty:
            for i, row in enumerate(snapshot):
                for j, value in enumerate(row):
                    reference = self._dist[i][j]
                    if value == reference:
                        continue
                    # Incremental and batch recomputation may sum edge
                    # weights in different orders; allow fp slack.
                    if not math.isclose(
                        value, reference, rel_tol=1e-9, abs_tol=1e-9
                    ):
                        raise GraphError(
                            f"max-plus closure mismatch at slot ({i}, {j}): "
                            f"incremental={value} reference={reference}"
                        )
