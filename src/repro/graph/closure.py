"""Incrementally maintained path-count transitive closure.

The paper (section 4.3) rejects moves that would create a cycle using the
transitive closure matrix of the search graph, with an O(1) lookup per
candidate edge.  We maintain the closure under both edge *insertions and
deletions* by storing, instead of booleans, the **number of distinct
paths** between every ordered pair of nodes.

For a DAG this count algebra is exact:

* inserting edge ``(a, b)`` adds ``P[u][a] * P[b][v]`` new paths from
  ``u`` to ``v`` (every new path crosses the new edge exactly once —
  a path cannot revisit ``a`` after ``b`` in a DAG);
* deleting edge ``(a, b)`` removes exactly the same quantity, because
  the side factors ``P[u][a]`` and ``P[b][v]`` cannot themselves use the
  edge (that would require a ``b``-to-``a`` path, i.e. a cycle).

Counts are Python integers (arbitrary precision), so overflow is
impossible even though path counts grow combinatorially.  Updates are
O(n²); reachability and cycle queries are O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.errors import CycleError, GraphError

Node = Hashable


class PathCountClosure:
    """Path-count matrix over a dynamic node set.

    ``P[i][j]`` counts the directed paths (of length >= 1) from node ``i``
    to node ``j``.  The diagonal is implicitly 1 (the empty path), which
    makes the insert/delete rank-1 updates uniform.
    """

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._index: Dict[Node, int] = {}
        self._free: List[int] = []
        # Row-major list of lists of ints; rows/cols of freed slots are zeroed.
        self._counts: List[List[int]] = []
        self._edges: set = set()
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return len(self._index)

    def add_node(self, node: Node) -> None:
        if node in self._index:
            raise GraphError(f"node {node!r} already tracked")
        if self._free:
            self._index[node] = self._free.pop()
            return
        slot = len(self._counts)
        for row in self._counts:
            row.append(0)
        self._counts.append([0] * (slot + 1))
        self._index[node] = slot

    def remove_node(self, node: Node) -> None:
        """Remove a node; its incident edges must have been removed first."""
        slot = self._require(node)
        row = self._counts[slot]
        if any(row) or any(r[slot] for r in self._counts):
            raise GraphError(f"node {node!r} still has paths; remove its edges first")
        del self._index[node]
        self._free.append(slot)

    def _require(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise GraphError(f"node {node!r} is not tracked") from None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def path_count(self, src: Node, dst: Node) -> int:
        """Number of distinct paths of length >= 1 from ``src`` to ``dst``."""
        return self._counts[self._require(src)][self._require(dst)]

    def has_path(self, src: Node, dst: Node) -> bool:
        return self.path_count(src, dst) > 0

    def would_create_cycle(self, src: Node, dst: Node) -> bool:
        """O(1) test used to reject annealing moves before applying them."""
        if src == dst:
            return True
        return self._counts[self._require(dst)][self._require(src)] > 0

    def has_edge(self, src: Node, dst: Node) -> bool:
        return (src, dst) in self._edges

    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_edge(self, src: Node, dst: Node) -> None:
        """Insert edge and update all pair counts in O(n²).

        Raises :class:`CycleError` if the edge would close a cycle, and
        :class:`GraphError` if it is a duplicate or a self-loop.
        """
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        i, j = self._require(src), self._require(dst)
        if (src, dst) in self._edges:
            raise GraphError(f"edge ({src!r}, {dst!r}) already exists")
        counts = self._counts
        if counts[j][i] > 0:
            raise CycleError(f"edge ({src!r}, {dst!r}) would create a cycle")
        self._apply_rank_one(i, j, +1)
        self._edges.add((src, dst))

    def remove_edge(self, src: Node, dst: Node) -> None:
        """Delete edge and downdate all pair counts in O(n²)."""
        if (src, dst) not in self._edges:
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist")
        i, j = self._require(src), self._require(dst)
        self._apply_rank_one(i, j, -1)
        self._edges.remove((src, dst))

    def _apply_rank_one(self, i: int, j: int, sign: int) -> None:
        """Apply ``P += sign * (P[:, i] + e_i) (P[j, :] + e_j)``.

        The ``+ e`` terms account for the implicit unit diagonal (empty
        paths at the endpoints of the new/removed edge).
        """
        counts = self._counts
        occupied = self._index.values()
        row_j = counts[j]
        # Left factor: paths u -> i, including the empty path at u == i.
        left = [(u, counts[u][i] + (1 if u == i else 0)) for u in occupied]
        for u, lu in left:
            if lu == 0:
                continue
            row_u = counts[u]
            for v in self._index.values():
                rv = row_j[v] + (1 if v == j else 0)
                if rv:
                    row_u[v] += sign * lu * rv
                    if row_u[v] < 0:  # pragma: no cover - defensive
                        raise GraphError("negative path count: closure corrupted")

    # ------------------------------------------------------------------
    # bulk construction / verification helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dag(cls, dag) -> "PathCountClosure":
        """Build a closure from a :class:`~repro.graph.dag.Dag`."""
        closure = cls(dag.nodes())
        for src, dst, _ in dag.edges():
            closure.add_edge(src, dst)
        return closure

    def recompute_reference(self) -> Dict[Tuple[Node, Node], int]:
        """Recompute all path counts from scratch (test oracle, O(n·e))."""
        succ: Dict[Node, List[Node]] = {n: [] for n in self._index}
        indeg: Dict[Node, int] = {n: 0 for n in self._index}
        for src, dst in self._edges:
            succ[src].append(dst)
            indeg[dst] += 1
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[Node] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for nxt in succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        counts: Dict[Tuple[Node, Node], int] = {}
        for start in self._index:
            acc: Dict[Node, int] = {start: 1}
            for node in order:
                value = acc.get(node)
                if not value:
                    continue
                for nxt in succ[node]:
                    acc[nxt] = acc.get(nxt, 0) + value
            for dst, cnt in acc.items():
                if dst != start:
                    counts[(start, dst)] = cnt
        return counts

    def self_check(self) -> None:
        """Assert the incremental matrix matches a from-scratch recount."""
        reference = self.recompute_reference()
        for src, i in self._index.items():
            for dst, j in self._index.items():
                expected = reference.get((src, dst), 0) if src != dst else 0
                actual = self._counts[i][j]
                if src == dst:
                    continue
                if actual != expected:
                    raise GraphError(
                        f"closure mismatch for ({src!r}, {dst!r}): "
                        f"incremental={actual} reference={expected}"
                    )
