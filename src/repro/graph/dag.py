"""A small, fast, mutable directed acyclic graph.

The class is deliberately minimal: adjacency is kept in plain dicts so the
simulated-annealing hot loop (add/remove sequentialization edges, longest
path) does not pay abstraction costs.  Conversion to :mod:`networkx` is
provided for analysis and debugging.

Nodes may be any hashable object.  Node and edge attributes are free-form
dictionaries; the mapping layer stores execution times and data volumes
in them.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import CycleError, GraphError

Node = Hashable


class Dag:
    """Mutable directed graph with acyclicity checking utilities.

    The structure itself does not forbid cycles on every mutation (the
    annealer uses a :class:`~repro.graph.closure.PathCountClosure` for
    O(1) cycle rejection before mutating); :meth:`add_edge` only raises
    for self-loops, and :meth:`check_acyclic` / :meth:`topological_order`
    detect cycles globally.
    """

    __slots__ = ("_succ", "_pred", "_node_attrs", "_edge_attrs")

    def __init__(self) -> None:
        self._succ: Dict[Node, Dict[Node, float]] = {}
        self._pred: Dict[Node, Dict[Node, float]] = {}
        self._node_attrs: Dict[Node, Dict[str, Any]] = {}
        self._edge_attrs: Dict[Tuple[Node, Node], Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, **attrs: Any) -> None:
        """Add ``node``; merging ``attrs`` if it already exists."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}
            self._node_attrs[node] = {}
        if attrs:
            self._node_attrs[node].update(attrs)

    def add_edge(self, src: Node, dst: Node, weight: float = 0.0, **attrs: Any) -> None:
        """Add a weighted edge ``src -> dst`` (creating missing endpoints).

        Raises :class:`GraphError` for self-loops and when the edge
        already exists (the mapping layer never overwrites silently; use
        :meth:`set_edge_weight` to retune a weight).
        """
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        self.add_node(src)
        self.add_node(dst)
        if dst in self._succ[src]:
            raise GraphError(f"edge ({src!r}, {dst!r}) already exists")
        self._succ[src][dst] = weight
        self._pred[dst][src] = weight
        if attrs:
            self._edge_attrs[(src, dst)] = dict(attrs)

    def remove_edge(self, src: Node, dst: Node) -> None:
        try:
            del self._succ[src][dst]
            del self._pred[dst][src]
        except KeyError:
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist") from None
        self._edge_attrs.pop((src, dst), None)

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident edge."""
        if node not in self._succ:
            raise GraphError(f"node {node!r} does not exist")
        for dst in list(self._succ[node]):
            self.remove_edge(node, dst)
        for src in list(self._pred[node]):
            self.remove_edge(src, node)
        del self._succ[node]
        del self._pred[node]
        del self._node_attrs[node]

    def set_edge_weight(self, src: Node, dst: Node, weight: float) -> None:
        if dst not in self._succ.get(src, ()):
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist")
        self._succ[src][dst] = weight
        self._pred[dst][src] = weight

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> Iterator[Node]:
        return iter(self._succ)

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        for src, nbrs in self._succ.items():
            for dst, weight in nbrs.items():
                yield src, dst, weight

    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._succ.values())

    def has_edge(self, src: Node, dst: Node) -> bool:
        return dst in self._succ.get(src, ())

    def edge_weight(self, src: Node, dst: Node) -> float:
        try:
            return self._succ[src][dst]
        except KeyError:
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist") from None

    def successors(self, node: Node) -> Iterator[Node]:
        try:
            return iter(self._succ[node])
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def predecessors(self, node: Node) -> Iterator[Node]:
        try:
            return iter(self._pred[node])
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def sources(self) -> List[Node]:
        """Nodes with no predecessors."""
        return [n for n, preds in self._pred.items() if not preds]

    def sinks(self) -> List[Node]:
        """Nodes with no successors."""
        return [n for n, succs in self._succ.items() if not succs]

    def node_attrs(self, node: Node) -> Dict[str, Any]:
        try:
            return self._node_attrs[node]
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def edge_attrs(self, src: Node, dst: Node) -> Dict[str, Any]:
        if not self.has_edge(src, dst):
            raise GraphError(f"edge ({src!r}, {dst!r}) does not exist")
        return self._edge_attrs.setdefault((src, dst), {})

    # low-level accessors used by the longest-path DP (no copies)
    @property
    def succ(self) -> Dict[Node, Dict[Node, float]]:
        return self._succ

    @property
    def pred(self) -> Dict[Node, Dict[Node, float]]:
        return self._pred

    # ------------------------------------------------------------------
    # global structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Node]:
        """Kahn's algorithm; raises :class:`CycleError` if cyclic.

        The ready set is consumed FIFO, so the returned order is a
        breadth-first layering that depends only on node/edge insertion
        order — deterministic across runs and Python versions (dicts
        preserve insertion order).  Downstream longest-path values never
        depend on which valid order is used, but a stable order keeps
        traces, schedules and regression tests reproducible.
        """
        indeg = {n: len(p) for n, p in self._pred.items()}
        order = [n for n, d in indeg.items() if d == 0]
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for succ in self._succ[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    order.append(succ)
        if len(order) != len(self._succ):
            raise CycleError(
                "graph contains a cycle",
                cycle=[n for n, d in indeg.items() if d > 0],
            )
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def check_acyclic(self) -> None:
        """Raise :class:`CycleError` if the graph has a cycle."""
        self.topological_order()

    def has_path(self, src: Node, dst: Node) -> bool:
        """DFS reachability (used by tests; hot paths use closures)."""
        if src not in self._succ or dst not in self._succ:
            return False
        stack = [src]
        seen = set()
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ[node])
        return False

    def descendants(self, node: Node) -> set:
        """All nodes reachable from ``node`` (excluding itself)."""
        stack = list(self._succ[node])
        seen = set()
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._succ[cur])
        return seen

    def ancestors(self, node: Node) -> set:
        """All nodes from which ``node`` is reachable (excluding itself)."""
        stack = list(self._pred[node])
        seen = set()
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self._pred[cur])
        return seen

    # ------------------------------------------------------------------
    # conversion / copy
    # ------------------------------------------------------------------
    def copy(self) -> "Dag":
        clone = Dag()
        for node, attrs in self._node_attrs.items():
            clone.add_node(node, **attrs)
        for src, dst, weight in self.edges():
            clone.add_edge(src, dst, weight, **self._edge_attrs.get((src, dst), {}))
        return clone

    def to_networkx(self):
        """Return a :class:`networkx.DiGraph` copy (for analysis only)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node, attrs in self._node_attrs.items():
            graph.add_node(node, **attrs)
        for src, dst, weight in self.edges():
            graph.add_edge(src, dst, weight=weight, **self._edge_attrs.get((src, dst), {}))
        return graph

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node]],
        nodes: Optional[Iterable[Node]] = None,
    ) -> "Dag":
        """Build a DAG from ``(src, dst)`` pairs (weight 0) and extra nodes."""
        dag = cls()
        if nodes is not None:
            for node in nodes:
                dag.add_node(node)
        for src, dst in edges:
            dag.add_edge(src, dst)
        return dag

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Dag(nodes={len(self)}, edges={self.num_edges()})"


class NodeInterner:
    """Bidirectional mapping between hashable node keys and dense ids.

    The array-backed evaluation fast path
    (:class:`repro.mapping.engine.IncrementalEngine`) interns every
    search-graph node — task indices, ``(COMM_NODE, src, dst)`` tuples,
    ``(CONFIG_NODE, rc)`` tuples — to a dense integer once per problem
    instance, then runs Kahn's sort and the longest-path DP over flat
    lists indexed by those ids instead of dict-of-dicts keyed by tuples.

    Ids are allocated contiguously from 0 in first-intern order and are
    never recycled, so arrays indexed by id only ever grow.
    """

    __slots__ = ("_ids", "_keys")

    def __init__(self, keys: Optional[Iterable[Node]] = None) -> None:
        self._ids: Dict[Node, int] = {}
        self._keys: List[Node] = []
        if keys is not None:
            for key in keys:
                self.intern(key)

    def intern(self, key: Node) -> int:
        """Return the dense id of ``key``, allocating one if needed."""
        node_id = self._ids.get(key)
        if node_id is None:
            node_id = len(self._keys)
            self._ids[key] = node_id
            self._keys.append(key)
        return node_id

    def id_of(self, key: Node) -> int:
        """Dense id of an already-interned key (KeyError otherwise)."""
        return self._ids[key]

    def key_of(self, node_id: int) -> Node:
        """Original node key for a dense id."""
        return self._keys[node_id]

    def __contains__(self, key: Node) -> bool:
        return key in self._ids

    def __len__(self) -> int:
        return len(self._keys)

    def keys(self) -> List[Node]:
        """All interned keys, in id order (index == id)."""
        return list(self._keys)

    def copy(self) -> "NodeInterner":
        """Independent interner with the same id assignments.

        Engines intern virtual nodes on top of the compile pass's
        interner; forking it lets several engines grow private virtual
        regions without ever disagreeing on the shared prefix."""
        clone = NodeInterner()
        clone._ids = dict(self._ids)
        clone._keys = list(self._keys)
        return clone
