"""Random and structured DAG generators for tests and benchmarks.

All generators take an explicit :class:`random.Random` (or a seed) so
every experiment in the repository is reproducible.  Node identifiers
are consecutive integers starting at 0 and every generator returns a
:class:`~repro.graph.dag.Dag` whose edges carry zero weight (callers
attach application semantics separately).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.graph.dag import Dag

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def chain(length: int) -> Dag:
    """A simple path ``0 -> 1 -> ... -> length-1``."""
    if length < 1:
        raise ConfigurationError("chain length must be >= 1")
    dag = Dag()
    for node in range(length):
        dag.add_node(node)
    for node in range(length - 1):
        dag.add_edge(node, node + 1)
    return dag


def fork_join(width: int) -> Dag:
    """A source, ``width`` parallel nodes, and a sink (diamond for 2)."""
    if width < 1:
        raise ConfigurationError("fork_join width must be >= 1")
    dag = Dag()
    source, sink = 0, width + 1
    dag.add_node(source)
    dag.add_node(sink)
    for k in range(1, width + 1):
        dag.add_edge(source, k)
        dag.add_edge(k, sink)
    return dag


def fork_join_chain(widths: Sequence[int]) -> Dag:
    """Sequential fork-join blocks sharing their junction nodes.

    Block ``i`` forks from a junction node into ``widths[i]`` parallel
    nodes that join on the next junction, so the whole graph is a chain
    of diamonds — the classic map-reduce / pipeline-stage shape.  Node
    0 is the unique source, junctions follow their block's parallel
    nodes, and the final junction is the unique sink.  Total node count
    is ``1 + len(widths) + sum(widths)``.
    """
    if not widths or any(w < 1 for w in widths):
        raise ConfigurationError("every fork_join_chain width must be >= 1")
    dag = Dag()
    dag.add_node(0)
    fork = 0
    next_id = 1
    for width in widths:
        members = list(range(next_id, next_id + width))
        join = next_id + width
        next_id = join + 1
        for node in members:
            dag.add_node(node)
            dag.add_edge(fork, node)
        dag.add_node(join)
        for node in members:
            dag.add_edge(node, join)
        fork = join
    return dag


def fork_join_chain_widths(
    num_nodes: int, seed: RandomLike = None
) -> List[int]:
    """Block widths whose :func:`fork_join_chain` has ``num_nodes`` nodes.

    Picks roughly square blocks (width ~ sqrt(n)) and spreads the
    remainder over the blocks; with a seed the per-block widths are
    shuffled so different seeds give different (but equally sized)
    ladders.  Deterministic for a given ``(num_nodes, seed)``.
    """
    if num_nodes < 4:
        raise ConfigurationError("fork_join_chain needs num_nodes >= 4")
    width = max(2, int(num_nodes ** 0.5))
    blocks = max(1, round((num_nodes - 1) / (width + 1)))
    widths = [width] * blocks
    # 1 + blocks + sum(widths) must equal num_nodes: adjust widths by
    # +/-1 round-robin (never below 1).
    deficit = num_nodes - (1 + blocks + sum(widths))
    index = 0
    while deficit != 0:
        if deficit > 0:
            widths[index % blocks] += 1
            deficit -= 1
        elif widths[index % blocks] > 1:
            widths[index % blocks] -= 1
            deficit += 1
        index += 1
    rng = _rng(seed)
    rng.shuffle(widths)
    return widths


def layered(
    num_layers: int,
    width: int,
    edge_probability: float = 0.5,
    seed: RandomLike = None,
) -> Dag:
    """Layer-by-layer random DAG, the classic scheduling benchmark shape.

    Every node in layer ``k+1`` gets at least one predecessor in layer
    ``k`` (so the graph is connected layer to layer) plus extra edges
    drawn independently with ``edge_probability``.
    """
    if num_layers < 1 or width < 1:
        raise ConfigurationError("layered graphs need num_layers >= 1 and width >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError("edge_probability must lie in [0, 1]")
    rng = _rng(seed)
    dag = Dag()
    layers: List[List[int]] = []
    next_id = 0
    for _ in range(num_layers):
        layer = list(range(next_id, next_id + width))
        next_id += width
        for node in layer:
            dag.add_node(node)
        layers.append(layer)
    for prev, cur in zip(layers, layers[1:]):
        for node in cur:
            anchor = rng.choice(prev)
            dag.add_edge(anchor, node)
            for candidate in prev:
                if candidate != anchor and rng.random() < edge_probability:
                    dag.add_edge(candidate, node)
    return dag


def random_dag(
    num_nodes: int,
    edge_probability: float = 0.2,
    seed: RandomLike = None,
) -> Dag:
    """Erdős–Rényi-style DAG: edges only from lower to higher index."""
    if num_nodes < 1:
        raise ConfigurationError("random_dag needs num_nodes >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ConfigurationError("edge_probability must lie in [0, 1]")
    rng = _rng(seed)
    dag = Dag()
    for node in range(num_nodes):
        dag.add_node(node)
    for src in range(num_nodes):
        for dst in range(src + 1, num_nodes):
            if rng.random() < edge_probability:
                dag.add_edge(src, dst)
    return dag


def series_parallel(
    num_nodes: int,
    series_probability: float = 0.5,
    seed: RandomLike = None,
) -> Dag:
    """Random two-terminal series-parallel DAG with ``num_nodes`` nodes.

    Built top-down: start from a single edge (source, sink) and repeatedly
    apply series or parallel expansions until the node budget is used.
    Series-parallel task graphs are the shape for which the paper's
    linear-extension counting in section 5 has closed forms, so these
    graphs double as oracles for :mod:`repro.analysis.combinatorics`.
    """
    if num_nodes < 2:
        raise ConfigurationError("series_parallel needs num_nodes >= 2")
    rng = _rng(seed)
    dag = Dag()
    dag.add_node(0)
    dag.add_node(1)
    dag.add_edge(0, 1)
    next_id = 2
    while next_id < num_nodes:
        edges = list(dag.edges())
        src, dst, _ = edges[rng.randrange(len(edges))]
        node = next_id
        next_id += 1
        dag.add_node(node)
        if rng.random() < series_probability:
            # Series: subdivide src -> dst into src -> node -> dst.
            dag.remove_edge(src, dst)
            dag.add_edge(src, node)
            dag.add_edge(node, dst)
        else:
            # Parallel: add a fresh branch src -> node -> dst.
            dag.add_edge(src, node)
            dag.add_edge(node, dst)
    return dag


def tgff_like(
    num_nodes: int,
    max_out_degree: int = 3,
    max_in_degree: int = 2,
    seed: RandomLike = None,
) -> Dag:
    """TGFF-style fan-out/fan-in growth (Dick, Rhodes & Wolf generator).

    Nodes are added one at a time; each new node attaches to 1..
    ``max_in_degree`` existing nodes whose out-degree still has room,
    giving the long-and-narrow graphs typical of embedded dataflow.
    """
    if num_nodes < 1:
        raise ConfigurationError("tgff_like needs num_nodes >= 1")
    if max_out_degree < 1 or max_in_degree < 1:
        raise ConfigurationError("degree bounds must be >= 1")
    rng = _rng(seed)
    dag = Dag()
    dag.add_node(0)
    for node in range(1, num_nodes):
        dag.add_node(node)
        candidates = [
            n for n in range(node) if dag.out_degree(n) < max_out_degree
        ]
        if not candidates:
            continue
        fan_in = rng.randint(1, min(max_in_degree, len(candidates)))
        for parent in rng.sample(candidates, fan_in):
            dag.add_edge(parent, node)
    return dag


def parallel_chains(chain_lengths: Sequence[int]) -> Dag:
    """Disjoint chains sharing nothing — the paper's order-counting shape.

    Node ids are assigned chain by chain; the list of per-chain node id
    lists is stored on the Dag under no attribute, so callers needing the
    chains should use :func:`parallel_chains_with_ids`.
    """
    dag, _ = parallel_chains_with_ids(chain_lengths)
    return dag


def parallel_chains_with_ids(
    chain_lengths: Sequence[int],
) -> Tuple[Dag, List[List[int]]]:
    """Like :func:`parallel_chains` but also returns per-chain node ids."""
    if not chain_lengths or any(length < 1 for length in chain_lengths):
        raise ConfigurationError("every chain length must be >= 1")
    dag = Dag()
    chains: List[List[int]] = []
    next_id = 0
    for length in chain_lengths:
        ids = list(range(next_id, next_id + length))
        next_id += length
        for node in ids:
            dag.add_node(node)
        for a, b in zip(ids, ids[1:]):
            dag.add_edge(a, b)
        chains.append(ids)
    return dag, chains
