"""Static ancestor/descendant reachability bitsets.

PR 7 profiling put the ``precedes``/``path_count`` cluster at ~15% of
move-proposal time: :class:`~repro.graph.closure.PathCountClosure`
answers ``has_path`` through two dict lookups plus a nested-list index
per call, and the grouping/context feasibility tests in
:mod:`repro.sa.moves` fire it for every member of every context.

:class:`ReachabilityIndex` trades the closure's incremental
edge-update support for raw query speed: one dense big-int bitmask per
node (bit ``j`` of ``descendants[i]`` set iff node ``j`` is reachable
from node ``i``), built in one topological sweep, answered with a
shift-and-mask.  The index is immutable — callers rebuild it when the
graph changes (applications are static during a search, so in practice
it is built once per instance).

Parity with the closure's graph-walk answer over the full scenario
corpus is pinned by ``tests/graph/test_reachability.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from repro.errors import GraphError

Node = Hashable

__all__ = ["ReachabilityIndex"]


class ReachabilityIndex:
    """Transitive reachability over a fixed DAG as per-node bitmasks."""

    __slots__ = ("_pos", "_order", "_ancestors", "_descendants")

    def __init__(
        self,
        pos: Dict[Node, int],
        order: List[Node],
        ancestors: List[int],
        descendants: List[int],
    ) -> None:
        self._pos = pos
        self._order = order
        self._ancestors = ancestors
        self._descendants = descendants

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dag(cls, dag) -> "ReachabilityIndex":
        """Build from a :class:`~repro.graph.dag.Dag` (or anything with
        ``topological_order()``/``predecessors()``/``successors()``)."""
        order = dag.topological_order()
        pos = {node: i for i, node in enumerate(order)}
        n = len(order)
        ancestors = [0] * n
        descendants = [0] * n
        for i, node in enumerate(order):
            mask = 0
            for p in dag.predecessors(node):
                j = pos[p]
                mask |= ancestors[j] | (1 << j)
            ancestors[i] = mask
        for i in range(n - 1, -1, -1):
            mask = 0
            for s in dag.successors(order[i]):
                j = pos[s]
                mask |= descendants[j] | (1 << j)
            descendants[i] = mask
        return cls(pos, order, ancestors, descendants)

    @classmethod
    def from_successors(
        cls, successors: Sequence[Sequence[int]]
    ) -> "ReachabilityIndex":
        """Build from dense successor lists (node ids ``0..n-1``), e.g.
        the compile pass's ``succ_ids`` adjacency.  Runs its own Kahn
        pass, so the lists may be in any order."""
        n = len(successors)
        indeg = [0] * n
        for succs in successors:
            for s in succs:
                indeg[s] += 1
        ready = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for s in successors[node]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != n:
            raise GraphError("successor lists describe a cyclic graph")
        ancestors = [0] * n
        descendants = [0] * n
        for node in order:
            for s in successors[node]:
                ancestors[s] |= ancestors[node] | (1 << node)
        for node in reversed(order):
            mask = 0
            for s in successors[node]:
                mask |= descendants[s] | (1 << s)
            descendants[node] = mask
        pos = {i: i for i in range(n)}
        return cls(pos, list(range(n)), ancestors, descendants)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, node: Node) -> bool:
        return node in self._pos

    def _require(self, node: Node) -> int:
        try:
            return self._pos[node]
        except KeyError:
            raise GraphError(f"node {node!r} is not tracked") from None

    def has_path(self, src: Node, dst: Node) -> bool:
        """True when ``dst`` is reachable from ``src`` (strictly; a node
        never reaches itself)."""
        return (
            self._descendants[self._require(src)] >> self._require(dst)
        ) & 1 == 1

    def descendants_mask(self, node: Node) -> int:
        """Bitmask of positions reachable *from* ``node``."""
        return self._descendants[self._require(node)]

    def ancestors_mask(self, node: Node) -> int:
        """Bitmask of positions that reach ``node``."""
        return self._ancestors[self._require(node)]

    def position(self, node: Node) -> int:
        """The bit position assigned to ``node``."""
        return self._require(node)

    def descendants(self, node: Node) -> set:
        """The reachable node set (materialized; for tests/debugging)."""
        mask = self.descendants_mask(node)
        return {
            n for n in self._order if (mask >> self._pos[n]) & 1
        }

    def ancestors(self, node: Node) -> set:
        mask = self.ancestors_mask(node)
        return {
            n for n in self._order if (mask >> self._pos[n]) & 1
        }
