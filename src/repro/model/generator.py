"""Random application generator for stress tests and scaling studies.

Builds applications with TGFF-like topology (the standard embedded
benchmark generator shape), software times drawn from a lognormal-ish
range, data volumes by edge class, and hardware implementation sets
synthesized from :data:`~repro.model.functions.FUNCTION_LIBRARY` — so
generated apps are statistically similar to the motion-detection
benchmark but arbitrarily sized.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.graph.generators import (
    fork_join_chain,
    fork_join_chain_widths,
    layered,
    series_parallel,
    tgff_like,
)
from repro.model.application import Application
from repro.model.functions import FUNCTION_LIBRARY, synthesize_implementations
from repro.model.task import Task

RandomLike = Union[int, random.Random, None]

#: Supported task-graph shapes.  All four materialize through the
#: seed-deterministic generators in :mod:`repro.graph.generators` — no
#: code path below may touch the global ``random`` module, so the same
#: ``(config, seed)`` always hashes to the same instance (pinned by
#: ``tests/bench/test_corpus.py``).
TOPOLOGIES = ("tgff", "layered", "series_parallel", "fork_join")


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random application generator."""

    num_tasks: int = 20
    topology: str = "tgff"  # "tgff" | "layered" | "series_parallel" | "fork_join"
    software_only_fraction: float = 0.2
    min_sw_ms: float = 0.5
    max_sw_ms: float = 8.0
    min_kbytes: float = 1.0
    max_kbytes: float = 30.0

    def validate(self) -> None:
        if self.num_tasks < 1:
            raise ConfigurationError("num_tasks must be >= 1")
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"topology must be one of {sorted(TOPOLOGIES)}"
            )
        if self.topology in ("series_parallel", "fork_join") and self.num_tasks < 4:
            raise ConfigurationError(
                f"{self.topology} applications need num_tasks >= 4"
            )
        if not 0.0 <= self.software_only_fraction <= 1.0:
            raise ConfigurationError("software_only_fraction must lie in [0, 1]")
        if not 0 < self.min_sw_ms <= self.max_sw_ms:
            raise ConfigurationError("need 0 < min_sw_ms <= max_sw_ms")
        if not 0 < self.min_kbytes <= self.max_kbytes:
            raise ConfigurationError("need 0 < min_kbytes <= max_kbytes")


def random_application(
    config: Optional[GeneratorConfig] = None,
    seed: RandomLike = None,
    name: Optional[str] = None,
) -> Application:
    """Generate a random, validated application."""
    config = config if config is not None else GeneratorConfig()
    config.validate()
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)

    if config.topology == "tgff":
        dag = tgff_like(config.num_tasks, seed=rng)
    elif config.topology == "series_parallel":
        dag = series_parallel(config.num_tasks, seed=rng)
    elif config.topology == "fork_join":
        dag = fork_join_chain(fork_join_chain_widths(config.num_tasks, seed=rng))
    else:
        width = max(2, round(config.num_tasks ** 0.5))
        layers = max(1, (config.num_tasks + width - 1) // width)
        dag = layered(layers, width, edge_probability=0.3, seed=rng)

    hw_specs = [
        spec for name_, spec in sorted(FUNCTION_LIBRARY.items())
        if spec.min_speedup > 1.5
    ]
    app = Application(name or f"random_{config.num_tasks}")
    nodes = sorted(dag.nodes())[: config.num_tasks]
    for index in nodes:
        sw_time = rng.uniform(config.min_sw_ms, config.max_sw_ms)
        if rng.random() < config.software_only_fraction:
            functionality, impls = "CONTROL", ()
        else:
            spec = hw_specs[rng.randrange(len(hw_specs))]
            functionality = spec.name
            impls = synthesize_implementations(spec, sw_time)
        app.add_task(
            Task(
                index=index,
                name=f"t{index}",
                functionality=functionality,
                sw_time_ms=sw_time,
                implementations=impls,
            )
        )
    keep = set(nodes)
    for src, dst, _ in dag.edges():
        if src in keep and dst in keep:
            app.add_dependency(
                src, dst, rng.uniform(config.min_kbytes, config.max_kbytes)
            )
    app.validate()
    return app
