"""Functionality library and synthetic implementation generator.

The EPICURE project supplied the paper's per-task area/time estimates
(5 or 6 synthesized variants per function, forming a dominant set in the
area-time plane).  Those measurements were never published, so this
module *synthesizes* Pareto sets with the same structure: for a function
family we know a base area, and a speedup range (smallest
implementation -> fastest implementation).  Larger variants trade CLBs
for speed, with diminishing returns, which is exactly the shape of real
FPGA synthesis sweeps (loop unrolling / pipelining factors).

See DESIGN.md section 3 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ModelError
from repro.model.task import Implementation, pareto_filter


@dataclass(frozen=True)
class FunctionalitySpec:
    """Synthesis characteristics of one function family.

    Parameters
    ----------
    name:
        Family name, e.g. ``"FIR"``.
    base_clbs:
        Area of the smallest (least parallel) implementation.
    min_speedup / max_speedup:
        Speedup over software of the smallest / largest implementation.
        ``min_speedup < 1`` models control-dominated functions that do
        not benefit from hardware.
    variants:
        Number of synthesized implementations (the paper reports 5 or 6).
    area_growth:
        Geometric area ratio between consecutive variants.
    """

    name: str
    base_clbs: int
    min_speedup: float
    max_speedup: float
    variants: int = 5
    area_growth: float = 1.45

    def __post_init__(self) -> None:
        if self.base_clbs <= 0:
            raise ModelError(f"{self.name}: base_clbs must be > 0")
        if not (0 < self.min_speedup <= self.max_speedup):
            raise ModelError(f"{self.name}: need 0 < min_speedup <= max_speedup")
        if self.variants < 1:
            raise ModelError(f"{self.name}: variants must be >= 1")
        if self.area_growth <= 1.0:
            raise ModelError(f"{self.name}: area_growth must be > 1")


def synthesize_implementations(
    spec: FunctionalitySpec,
    sw_time_ms: float,
) -> Tuple[Implementation, ...]:
    """Generate the dominant area/time set for one task.

    The ``k``-th variant has area ``base_clbs * area_growth**k`` and
    speedup interpolated geometrically between ``min_speedup`` and
    ``max_speedup`` — geometric interpolation gives the concave Pareto
    fronts observed in synthesis practice (doubling area never doubles
    speed).  The result is strictly dominant and sorted by area.
    """
    if sw_time_ms < 0:
        raise ModelError("sw_time_ms must be >= 0")
    impls = []
    n = spec.variants
    for k in range(n):
        area = round(spec.base_clbs * spec.area_growth**k)
        if n == 1:
            speedup = spec.max_speedup
        else:
            ratio = spec.max_speedup / spec.min_speedup
            speedup = spec.min_speedup * ratio ** (k / (n - 1))
        impls.append(
            Implementation(
                clbs=area,
                time_ms=sw_time_ms / speedup,
                name=f"{spec.name.lower()}_v{k}",
            )
        )
    dominant = pareto_filter(impls)
    if len(dominant) != len(impls):  # pragma: no cover - defensive
        raise ModelError(f"{spec.name}: generated set was not dominant")
    return tuple(dominant)


#: Function families used by the motion-detection benchmark.  Speedup
#: ranges follow the usual folklore: regular pixel pipelines (filters,
#: morphology) accelerate 8-40x, reductions 4-20x, and control-dominated
#: bookkeeping gains little or even loses (<= 1.5x), so the optimizer
#: should leave the latter in software.
#: Areas are calibrated against the paper's reconfiguration economics:
#: at t_R = 22.5 us/CLB a 100-CLB module costs 2.25 ms to (re)configure,
#: so worthwhile modules must be small (tens of CLBs) and fast (large
#: speedups) — matching the paper's regime where ~10 hardware tasks
#: occupy ~1000 CLBs and execution time lands well under 40 ms.
FUNCTION_LIBRARY: Dict[str, FunctionalitySpec] = {
    spec.name: spec
    for spec in [
        FunctionalitySpec("CAPTURE", base_clbs=18, min_speedup=3.0, max_speedup=9.0, variants=5),
        FunctionalitySpec("FIR", base_clbs=40, min_speedup=12.0, max_speedup=50.0, variants=6),
        FunctionalitySpec("BG_MODEL", base_clbs=35, min_speedup=9.0, max_speedup=34.0, variants=5),
        FunctionalitySpec("DIFF", base_clbs=22, min_speedup=10.0, max_speedup=32.0, variants=5),
        FunctionalitySpec("THRESH", base_clbs=14, min_speedup=6.0, max_speedup=20.0, variants=5),
        FunctionalitySpec("MORPH", base_clbs=30, min_speedup=14.0, max_speedup=55.0, variants=6),
        FunctionalitySpec("SOBEL", base_clbs=36, min_speedup=12.0, max_speedup=45.0, variants=6),
        FunctionalitySpec("MAG", base_clbs=25, min_speedup=9.0, max_speedup=28.0, variants=5),
        FunctionalitySpec("CONTOUR", base_clbs=42, min_speedup=5.0, max_speedup=16.0, variants=5),
        FunctionalitySpec("CCL", base_clbs=60, min_speedup=7.0, max_speedup=28.0, variants=6),
        FunctionalitySpec("REGION", base_clbs=28, min_speedup=4.0, max_speedup=13.0, variants=5),
        FunctionalitySpec("MOTION_EST", base_clbs=50, min_speedup=9.0, max_speedup=38.0, variants=6),
        FunctionalitySpec("MEDIAN", base_clbs=33, min_speedup=8.0, max_speedup=26.0, variants=5),
        FunctionalitySpec("TRACK", base_clbs=45, min_speedup=3.0, max_speedup=10.0, variants=5),
        FunctionalitySpec("KALMAN", base_clbs=48, min_speedup=4.5, max_speedup=16.0, variants=5),
        FunctionalitySpec("RENDER", base_clbs=25, min_speedup=4.0, max_speedup=14.0, variants=5),
        FunctionalitySpec("CONTROL", base_clbs=20, min_speedup=0.6, max_speedup=1.4, variants=5),
        FunctionalitySpec("DMA", base_clbs=12, min_speedup=1.0, max_speedup=2.5, variants=5),
    ]
}
