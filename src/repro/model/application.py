"""The application: a precedence graph of tasks with data-volume edges.

Paper section 3.1: ``G = <V, E>`` is acyclic; each node carries its
functionality, CLB counts and time estimates, and each edge ``e_ij``
carries the amount of data ``q_ij`` transferred.  The transfer *time* of
an edge is architecture-dependent (bus rate ``D``), so it lives in
:mod:`repro.arch.bus`, not here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CycleError, ModelError
from repro.graph.closure import PathCountClosure
from repro.graph.dag import Dag
from repro.graph.reachability import ReachabilityIndex
from repro.model.task import Implementation, Task


class Application:
    """A named, validated application task graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._dag = Dag()
        self._tasks: Dict[int, Task] = {}
        self._closure: Optional[PathCountClosure] = None
        self._reachability: Optional[ReachabilityIndex] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        if task.index in self._tasks:
            raise ModelError(f"duplicate task index {task.index}")
        if any(existing.name == task.name for existing in self._tasks.values()):
            raise ModelError(f"duplicate task name {task.name!r}")
        self._tasks[task.index] = task
        self._dag.add_node(task.index)
        self._closure = None
        self._reachability = None
        return task

    def add_dependency(self, src: int, dst: int, data_kbytes: float = 0.0) -> None:
        """Add precedence edge ``src -> dst`` carrying ``q_ij`` kilobytes."""
        if src not in self._tasks or dst not in self._tasks:
            raise ModelError(f"dependency ({src}, {dst}) references unknown task")
        if data_kbytes < 0:
            raise ModelError("data_kbytes must be >= 0")
        self._dag.add_edge(src, dst, weight=data_kbytes)
        self._closure = None
        self._reachability = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, index: int) -> bool:
        return index in self._tasks

    def task(self, index: int) -> Task:
        try:
            return self._tasks[index]
        except KeyError:
            raise ModelError(f"no task with index {index}") from None

    def task_by_name(self, name: str) -> Task:
        for task in self._tasks.values():
            if task.name == name:
                return task
        raise ModelError(f"no task named {name!r}")

    def tasks(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task_indices(self) -> List[int]:
        return list(self._tasks)

    def dependencies(self) -> Iterator[Tuple[int, int, float]]:
        """Yield ``(src, dst, q_ij_kbytes)`` for every precedence edge."""
        return self._dag.edges()

    def data_kbytes(self, src: int, dst: int) -> float:
        return self._dag.edge_weight(src, dst)

    def predecessors(self, index: int) -> List[int]:
        return list(self._dag.predecessors(index))

    def successors(self, index: int) -> List[int]:
        return list(self._dag.successors(index))

    def sources(self) -> List[int]:
        return self._dag.sources()

    def sinks(self) -> List[int]:
        return self._dag.sinks()

    @property
    def dag(self) -> Dag:
        """The underlying precedence DAG (edge weights are q_ij)."""
        return self._dag

    def topological_order(self) -> List[int]:
        return self._dag.topological_order()

    # ------------------------------------------------------------------
    # derived data
    # ------------------------------------------------------------------
    def closure(self) -> PathCountClosure:
        """Static transitive closure of the precedence graph.

        Cached; used by the annealer for O(1) precedence feasibility
        lookups during move generation (paper section 4.3).
        """
        if self._closure is None:
            self._closure = PathCountClosure.from_dag(self._dag)
        return self._closure

    def reachability(self) -> ReachabilityIndex:
        """Static ancestor/descendant bitsets of the precedence graph.

        Cached like :meth:`closure`; rebuilt after any task/dependency
        addition.  This is the move generator's hot path: ``precedes``
        answers through one shift-and-mask instead of the closure's
        dict-and-list walk.
        """
        if self._reachability is None:
            self._reachability = ReachabilityIndex.from_dag(self._dag)
        return self._reachability

    def precedes(self, a: int, b: int) -> bool:
        """True when task ``a`` must finish before ``b`` starts."""
        index = self._reachability
        if index is None:
            index = self.reachability()
        return index.has_path(a, b)

    def total_sw_time_ms(self) -> float:
        """Execution time of the all-software, fully serialized mapping."""
        return sum(task.sw_time_ms for task in self._tasks.values())

    def hardware_capable_tasks(self) -> List[Task]:
        return [task for task in self._tasks.values() if task.hardware_capable]

    def validate(self) -> None:
        """Check acyclicity and model invariants; raise on violation."""
        if not self._tasks:
            raise ModelError(f"application {self.name!r} has no tasks")
        try:
            self._dag.check_acyclic()
        except CycleError as exc:
            raise ModelError(
                f"application {self.name!r} precedence graph is cyclic: "
                f"{exc.cycle}"
            ) from exc

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Application({self.name!r}, tasks={len(self._tasks)}, "
            f"edges={self._dag.num_edges()})"
        )
