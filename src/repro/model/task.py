"""Tasks and hardware implementations.

A :class:`Task` is a coarse-grain node of the application precedence
graph (paper section 3.1): it has a functionality ``F(v_i)``, an
estimated software execution time ``t_sw`` and one or more hardware
implementations.  The paper's experimental section stresses that each
function was synthesized several times, yielding "a set of dominant
solutions in the area-time domain" (5 or 6 per function); the annealer
picks one of these per hardware task.  :class:`Implementation` is one
such (CLB count, execution time) point.

All times in this library are expressed in **milliseconds** and areas in
**CLBs**, matching the units of the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ModelError


@dataclass(frozen=True, order=True)
class Implementation:
    """One synthesized hardware variant of a task: an area/time point."""

    clbs: int
    time_ms: float
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.clbs <= 0:
            raise ModelError(f"implementation {self.name!r}: clbs must be > 0")
        if self.time_ms < 0:
            raise ModelError(f"implementation {self.name!r}: time must be >= 0")

    def dominates(self, other: "Implementation") -> bool:
        """True when this point is at least as good on both axes and
        strictly better on one (smaller area and/or smaller time)."""
        if self.clbs > other.clbs or self.time_ms > other.time_ms:
            return False
        return self.clbs < other.clbs or self.time_ms < other.time_ms


def pareto_filter(impls: Iterable[Implementation]) -> List[Implementation]:
    """Keep only the non-dominated implementations, sorted by area."""
    points = sorted(set(impls))
    kept: List[Implementation] = []
    best_time = float("inf")
    for impl in points:  # ascending area, then time
        if impl.time_ms < best_time:
            kept.append(impl)
            best_time = impl.time_ms
    return kept


def is_dominant_set(impls: Sequence[Implementation]) -> bool:
    """True when no implementation in the sequence dominates another."""
    for i, a in enumerate(impls):
        for b in impls[i + 1:]:
            if a.dominates(b) or b.dominates(a):
                return False
    return True


@dataclass(frozen=True)
class Task:
    """A coarse-grain application task.

    Parameters
    ----------
    index:
        The paper's node index ``i`` in ``[0, N)``; unique per application.
    name:
        Human-readable identifier (e.g. ``"erosion_3x3"``).
    functionality:
        The function family ``F(v_i)`` (e.g. ``"FIR"``, ``"DCT"``).
    sw_time_ms:
        Estimated execution time on the programmable processor.
    implementations:
        Dominant hardware area/time points, sorted by increasing area.
        Empty means the task is software-only (cannot be moved to HW).
    """

    index: int
    name: str
    functionality: str
    sw_time_ms: float
    implementations: Tuple[Implementation, ...] = ()

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ModelError(f"task {self.name!r}: index must be >= 0")
        if self.sw_time_ms < 0:
            raise ModelError(f"task {self.name!r}: sw_time_ms must be >= 0")
        ordered = tuple(sorted(self.implementations))
        if not is_dominant_set(ordered):
            raise ModelError(
                f"task {self.name!r}: implementations must form a dominant "
                "(Pareto) set; filter them with pareto_filter() first"
            )
        object.__setattr__(self, "implementations", ordered)

    # ------------------------------------------------------------------
    @property
    def hardware_capable(self) -> bool:
        return bool(self.implementations)

    @property
    def num_implementations(self) -> int:
        return len(self.implementations)

    def implementation(self, choice: int) -> Implementation:
        """The implementation selected by index ``choice``."""
        try:
            return self.implementations[choice]
        except IndexError:
            raise ModelError(
                f"task {self.name!r}: implementation index {choice} out of "
                f"range [0, {len(self.implementations)})"
            ) from None

    def smallest_implementation(self) -> Implementation:
        if not self.implementations:
            raise ModelError(f"task {self.name!r} has no hardware implementation")
        return self.implementations[0]

    def fastest_implementation(self) -> Implementation:
        if not self.implementations:
            raise ModelError(f"task {self.name!r} has no hardware implementation")
        return self.implementations[-1]

    def best_speedup(self) -> float:
        """Software time over the fastest hardware time (inf if hw is 0)."""
        fastest = self.fastest_implementation()
        if fastest.time_ms == 0:
            return float("inf")
        return self.sw_time_ms / fastest.time_ms
