"""The 28-task motion-detection benchmark (paper section 5).

The paper evaluates on the motion-detection / object-labeling
application of Ben Chehida & Auguin [6]: a 40 ms-per-image real-time
constraint, an all-software time of 76.4 ms on an ARM922, and a
Virtex-E-class reconfigurable device (t_R = 22.5 us/CLB).

The task-graph *topology* is not drawn in the paper, but its
order-counting paragraph specifies it exactly:

* a 7-node chain (A), followed by
* a 7-node chain (B) **in parallel with** a 14-node sub-structure:
  a 6-node chain (C), then a 2-node chain (D) in parallel with a single
  node (E), then a 5-node chain (F).

We instantiate precisely that shape.  Its linear-extension counts must
(and do — see tests and ``benchmarks/bench_combinatorics.py``) match the
paper's numbers: C(13,6) = 1716 for the first 20 nodes, 3 orders for the
D/E fork, and 3 * C(21,7) = 348 840 in total.

The per-task timing/area estimates come from the EPICURE project and
were never published; this module provides a deterministic synthetic
dataset calibrated to the paper's published aggregates (sum of software
times = 76.4 ms, 5-6 dominant implementations per function).  See
DESIGN.md section 3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.model.application import Application
from repro.model.functions import FUNCTION_LIBRARY, synthesize_implementations
from repro.model.task import Task

#: Paper-reported aggregate: all-software execution time on the ARM922.
MOTION_TOTAL_SW_TIME_MS = 76.4

#: Paper-reported real-time constraint per image.
MOTION_DEADLINE_MS = 40.0

#: Reconfiguration time per CLB of the Virtex-E device (paper: 22.5 us).
MOTION_RECONFIG_MS_PER_CLB = 0.0225

# (name, functionality, sw_time_ms) per chain; sw times sum to 76.4 ms.
_CHAIN_A = [
    ("capture_luma", "CAPTURE", 1.2),
    ("denoise_fir", "FIR", 4.8),
    ("background_update", "BG_MODEL", 3.6),
    ("frame_difference", "DIFF", 2.4),
    ("threshold_adapt", "THRESH", 2.0),
    ("erosion_3x3", "MORPH", 4.4),
    ("dilation_3x3", "MORPH", 4.4),
]
_CHAIN_B = [
    ("sobel_x", "SOBEL", 3.2),
    ("sobel_y", "SOBEL", 3.2),
    ("gradient_mag", "MAG", 2.6),
    ("edge_threshold", "THRESH", 1.4),
    ("contour_trace", "CONTOUR", 3.0),
    ("contour_smooth", "CONTOUR", 1.6),
    ("contour_stats", "CONTROL", 1.0),
]
_CHAIN_C = [
    ("connected_components", "CCL", 7.6),
    ("label_merge", "CONTROL", 3.4),
    ("region_filter", "REGION", 1.8),
    ("bbox_extract", "REGION", 1.6),
    ("centroid_compute", "REGION", 1.4),
    ("region_sort", "CONTROL", 1.0),
]
_CHAIN_D = [
    ("motion_vectors", "MOTION_EST", 4.2),
    ("vector_median", "MEDIAN", 2.2),
]
_CHAIN_E = [
    ("region_history", "CONTROL", 1.8),
]
_CHAIN_F = [
    ("track_associate", "TRACK", 3.4),
    ("kalman_update", "KALMAN", 2.8),
    ("label_assign", "CONTROL", 2.2),
    ("overlay_render", "RENDER", 2.6),
    ("output_dma", "DMA", 1.6),
]

#: Data volume (kilobytes) transferred along the edges of each chain
#: stage.  Image-plane stages move frame-sized buffers (a QCIF luma
#: plane is ~25 KB); region/track stages move small descriptor tables.
_FRAME_KB = 25.0
_MAP_KB = 12.0
_TABLE_KB = 2.0

# Per-edge data volumes inside each chain (len(chain) - 1 entries).
_VOLUMES: Dict[str, List[float]] = {
    "A": [_FRAME_KB, _FRAME_KB, _FRAME_KB, _MAP_KB, _MAP_KB, _MAP_KB],
    "B": [_FRAME_KB, _FRAME_KB, _MAP_KB, _MAP_KB, _TABLE_KB, _TABLE_KB],
    "C": [_MAP_KB, _TABLE_KB, _TABLE_KB, _TABLE_KB, _TABLE_KB],
    "D": [_TABLE_KB],
    "E": [],
    "F": [_TABLE_KB, _TABLE_KB, _TABLE_KB, _MAP_KB],
}
# Inter-chain edges: (A7 -> B1, frame), (A7 -> C1, map),
# (C6 -> D1, table), (C6 -> E1, table), (D2 -> F1, table), (E1 -> F1, table).
_JOIN_VOLUMES = {
    ("A", "B"): _FRAME_KB,
    ("A", "C"): _MAP_KB,
    ("C", "D"): _TABLE_KB,
    ("C", "E"): _TABLE_KB,
    ("D", "F"): _TABLE_KB,
    ("E", "F"): _TABLE_KB,
}

_CHAINS = {"A": _CHAIN_A, "B": _CHAIN_B, "C": _CHAIN_C,
           "D": _CHAIN_D, "E": _CHAIN_E, "F": _CHAIN_F}

#: Function families with no synthesizable hardware variant: the
#: control-dominated bookkeeping and the DMA glue stay software-only
#: (pointer-chasing and bus mastering do not map to CLB fabric).  This
#: keeps the processor genuinely involved, as in the paper's solutions,
#: where a substantial share of the 28 tasks remains in software.
SOFTWARE_ONLY_FUNCTIONS = frozenset({"CONTROL", "DMA"})


def motion_detection_application() -> Application:
    """Build the 28-task motion-detection application.

    Deterministic: no randomness is involved, so every run of every
    experiment sees the identical benchmark.
    """
    app = Application("motion_detection")
    index = 0
    chain_ids: Dict[str, List[int]] = {}
    for label in ["A", "B", "C", "D", "E", "F"]:
        ids: List[int] = []
        for name, functionality, sw_time in _CHAINS[label]:
            if functionality in SOFTWARE_ONLY_FUNCTIONS:
                impls = ()
            else:
                spec = FUNCTION_LIBRARY[functionality]
                impls = synthesize_implementations(spec, sw_time)
            app.add_task(
                Task(
                    index=index,
                    name=name,
                    functionality=functionality,
                    sw_time_ms=sw_time,
                    implementations=impls,
                )
            )
            ids.append(index)
            index += 1
        chain_ids[label] = ids

    # Intra-chain precedence edges.
    for label, ids in chain_ids.items():
        for (a, b), volume in zip(zip(ids, ids[1:]), _VOLUMES[label]):
            app.add_dependency(a, b, volume)

    # Inter-chain joins (see module docstring for the topology).
    def last(label: str) -> int:
        return chain_ids[label][-1]

    def first(label: str) -> int:
        return chain_ids[label][0]

    app.add_dependency(last("A"), first("B"), _JOIN_VOLUMES[("A", "B")])
    app.add_dependency(last("A"), first("C"), _JOIN_VOLUMES[("A", "C")])
    app.add_dependency(last("C"), first("D"), _JOIN_VOLUMES[("C", "D")])
    app.add_dependency(last("C"), first("E"), _JOIN_VOLUMES[("C", "E")])
    app.add_dependency(last("D"), first("F"), _JOIN_VOLUMES[("D", "F")])
    app.add_dependency(last("E"), first("F"), _JOIN_VOLUMES[("E", "F")])

    app.validate()
    assert len(app) == 28, "motion-detection benchmark must have 28 tasks"
    return app


def motion_chain_ids() -> Dict[str, List[int]]:
    """Task indices per chain label (A..F), for tests and analysis."""
    ids: Dict[str, List[int]] = {}
    index = 0
    for label in ["A", "B", "C", "D", "E", "F"]:
        ids[label] = list(range(index, index + len(_CHAINS[label])))
        index += len(_CHAINS[label])
    return ids
