"""Application model: tasks, implementations and precedence graphs.

Implements the paper's application model (section 3.1): a coarse-grain
precedence DAG whose nodes carry a functionality, a software execution
time estimate, and a set of dominant (Pareto) hardware implementations —
each a (CLB count, execution time) point — and whose edges carry the
amount of data exchanged.

The motion-detection benchmark of section 5 is provided by
:func:`repro.model.motion.motion_detection_application`.
"""

from repro.model.task import Implementation, Task, pareto_filter, is_dominant_set
from repro.model.application import Application
from repro.model.functions import (
    FunctionalitySpec,
    synthesize_implementations,
    FUNCTION_LIBRARY,
)
from repro.model.motion import (
    motion_detection_application,
    MOTION_TOTAL_SW_TIME_MS,
)
from repro.model.sdf import SdfActor, SdfChannel, SdfGraph
from repro.model.generator import GeneratorConfig, random_application

__all__ = [
    "Implementation",
    "Task",
    "pareto_filter",
    "is_dominant_set",
    "Application",
    "FunctionalitySpec",
    "synthesize_implementations",
    "FUNCTION_LIBRARY",
    "motion_detection_application",
    "MOTION_TOTAL_SW_TIME_MS",
    "SdfActor",
    "SdfChannel",
    "SdfGraph",
    "GeneratorConfig",
    "random_application",
]
