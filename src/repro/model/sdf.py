"""Synchronous dataflow (SDF) front end.

The paper's conclusion announces work on "simulated annealing moves for
systems described by multiple models of computation, including SDF and
CFSM".  This module implements the SDF side as a *front end*: an SDF
graph (actors firing with fixed production/consumption rates) is
checked for consistency, its repetition vector is computed from the
balance equations, and one iteration is *unfolded* into an ordinary
:class:`~repro.model.application.Application` precedence graph — which
the existing explorer then maps unchanged.  This matches the paper's
architecture: new models of computation only require producing the
coarse-grain precedence graph; the move set is untouched.

Theory refresher: for every channel ``a -> b`` with production rate
``p``, consumption rate ``c`` the balance equation ``q(a)·p = q(b)·c``
must admit a positive integer solution ``q`` (the repetition vector);
firing ``j`` of the consumer needs ``(j+1)·c`` tokens, available once
the producer has fired ``i+1`` times where ``(i+1)·p + delay >=
(j+1)·c`` — which yields the inter-iteration precedence edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import ceil, gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError
from repro.model.application import Application
from repro.model.task import Implementation, Task


@dataclass(frozen=True)
class SdfActor:
    """One SDF actor: a named computation fired ``q`` times per iteration.

    ``sw_time_ms`` / ``implementations`` describe *one firing*, exactly
    like an ordinary task.
    """

    name: str
    functionality: str
    sw_time_ms: float
    implementations: Tuple[Implementation, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("actor name must be non-empty")
        if self.sw_time_ms < 0:
            raise ModelError(f"actor {self.name!r}: sw_time_ms must be >= 0")


@dataclass(frozen=True)
class SdfChannel:
    """A FIFO channel with fixed rates and optional initial tokens."""

    src: str
    dst: str
    production: int
    consumption: int
    initial_tokens: int = 0
    token_kbytes: float = 0.0

    def __post_init__(self) -> None:
        if self.production < 1 or self.consumption < 1:
            raise ModelError(
                f"channel {self.src}->{self.dst}: rates must be >= 1"
            )
        if self.initial_tokens < 0:
            raise ModelError(
                f"channel {self.src}->{self.dst}: initial_tokens must be >= 0"
            )
        if self.token_kbytes < 0:
            raise ModelError(
                f"channel {self.src}->{self.dst}: token_kbytes must be >= 0"
            )


class SdfGraph:
    """A synchronous dataflow graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._actors: Dict[str, SdfActor] = {}
        self._channels: List[SdfChannel] = []

    # ------------------------------------------------------------------
    def add_actor(self, actor: SdfActor) -> SdfActor:
        if actor.name in self._actors:
            raise ModelError(f"duplicate actor {actor.name!r}")
        self._actors[actor.name] = actor
        return actor

    def add_channel(self, channel: SdfChannel) -> SdfChannel:
        for endpoint in (channel.src, channel.dst):
            if endpoint not in self._actors:
                raise ModelError(f"channel references unknown actor {endpoint!r}")
        self._channels.append(channel)
        return channel

    def actors(self) -> List[SdfActor]:
        return list(self._actors.values())

    def channels(self) -> List[SdfChannel]:
        return list(self._channels)

    def actor(self, name: str) -> SdfActor:
        try:
            return self._actors[name]
        except KeyError:
            raise ModelError(f"no actor named {name!r}") from None

    # ------------------------------------------------------------------
    # consistency / repetition vector
    # ------------------------------------------------------------------
    def repetition_vector(self) -> Dict[str, int]:
        """Smallest positive integer solution of the balance equations.

        Raises :class:`ModelError` for inconsistent (rate-mismatched)
        graphs, which admit no bounded-memory periodic schedule.
        """
        if not self._actors:
            raise ModelError(f"SDF graph {self.name!r} has no actors")
        ratio: Dict[str, Optional[Fraction]] = {
            name: None for name in self._actors
        }
        # Propagate rational firing ratios over the (undirected) topology.
        adjacency: Dict[str, List[Tuple[str, Fraction]]] = {
            name: [] for name in self._actors
        }
        for ch in self._channels:
            # q(dst) = q(src) * production / consumption
            adjacency[ch.src].append(
                (ch.dst, Fraction(ch.production, ch.consumption))
            )
            adjacency[ch.dst].append(
                (ch.src, Fraction(ch.consumption, ch.production))
            )
        for start in self._actors:
            if ratio[start] is not None:
                continue
            ratio[start] = Fraction(1)
            stack = [start]
            while stack:
                node = stack.pop()
                for nbr, factor in adjacency[node]:
                    implied = ratio[node] * factor
                    if ratio[nbr] is None:
                        ratio[nbr] = implied
                        stack.append(nbr)
                    elif ratio[nbr] != implied:
                        raise ModelError(
                            f"SDF graph {self.name!r} is inconsistent at "
                            f"actor {nbr!r}: {ratio[nbr]} != {implied}"
                        )
        denominators = [r.denominator for r in ratio.values()]  # type: ignore[union-attr]
        scale = 1
        for d in denominators:
            scale = scale * d // gcd(scale, d)
        counts = {
            name: int(r * scale) for name, r in ratio.items()  # type: ignore[arg-type]
        }
        divisor = 0
        for value in counts.values():
            divisor = gcd(divisor, value)
        return {name: value // divisor for name, value in counts.items()}

    def is_consistent(self) -> bool:
        try:
            self.repetition_vector()
        except ModelError:
            return False
        return True

    def check_live(self) -> None:
        """Deadlock check: symbolically execute one iteration.

        Repeatedly fire any actor that (a) still has firings left this
        iteration and (b) has enough tokens on all inputs.  If firings
        remain but nothing can fire, the graph deadlocks (insufficient
        initial tokens on some cycle).
        """
        repetitions = self.repetition_vector()
        remaining = dict(repetitions)
        tokens: Dict[int, int] = {
            k: ch.initial_tokens for k, ch in enumerate(self._channels)
        }
        inputs: Dict[str, List[int]] = {name: [] for name in self._actors}
        outputs: Dict[str, List[int]] = {name: [] for name in self._actors}
        for k, ch in enumerate(self._channels):
            inputs[ch.dst].append(k)
            outputs[ch.src].append(k)

        progress = True
        while progress and any(remaining.values()):
            progress = False
            for name in self._actors:
                if remaining[name] == 0:
                    continue
                if all(
                    tokens[k] >= self._channels[k].consumption
                    for k in inputs[name]
                ):
                    for k in inputs[name]:
                        tokens[k] -= self._channels[k].consumption
                    for k in outputs[name]:
                        tokens[k] += self._channels[k].production
                    remaining[name] -= 1
                    progress = True
        if any(remaining.values()):
            stuck = sorted(n for n, r in remaining.items() if r)
            raise ModelError(
                f"SDF graph {self.name!r} deadlocks; stuck actors: {stuck}"
            )

    # ------------------------------------------------------------------
    # unfolding
    # ------------------------------------------------------------------
    def unfold(
        self,
        iterations: int = 1,
        sequential_firings: bool = True,
    ) -> Application:
        """Expand ``iterations`` iterations into a precedence graph.

        Each actor ``a`` becomes ``q(a) × iterations`` task instances
        named ``a#k``.  ``sequential_firings`` chains the instances of
        an actor (no auto-concurrency — the common embedded assumption);
        pass False to allow concurrent firings of one actor.
        """
        if iterations < 1:
            raise ModelError("iterations must be >= 1")
        self.check_live()
        repetitions = self.repetition_vector()

        app = Application(f"{self.name}_x{iterations}")
        index = 0
        instance_ids: Dict[str, List[int]] = {}
        for actor in self._actors.values():
            count = repetitions[actor.name] * iterations
            ids = []
            for k in range(count):
                app.add_task(
                    Task(
                        index=index,
                        name=f"{actor.name}#{k}",
                        functionality=actor.functionality,
                        sw_time_ms=actor.sw_time_ms,
                        implementations=actor.implementations,
                    )
                )
                ids.append(index)
                index += 1
            instance_ids[actor.name] = ids

        if sequential_firings:
            for ids in instance_ids.values():
                for a, b in zip(ids, ids[1:]):
                    if not app.dag.has_edge(a, b):
                        app.add_dependency(a, b, 0.0)

        for ch in self._channels:
            producers = instance_ids[ch.src]
            consumers = instance_ids[ch.dst]
            volume = ch.consumption * ch.token_kbytes
            for j, consumer in enumerate(consumers):
                needed = (j + 1) * ch.consumption - ch.initial_tokens
                if needed <= 0:
                    continue  # served entirely by initial tokens
                i_req = ceil(needed / ch.production) - 1
                if i_req >= len(producers):
                    raise ModelError(
                        f"channel {ch.src}->{ch.dst}: firing {j} needs "
                        f"producer firing {i_req}, beyond the unfolded "
                        f"horizon — increase iterations"
                    )
                producer = producers[i_req]
                if producer == consumer:
                    continue
                if app.dag.has_edge(producer, consumer):
                    # merge volumes when rates map several channels onto
                    # the same instance pair
                    current = app.data_kbytes(producer, consumer)
                    app.dag.set_edge_weight(producer, consumer, current + volume)
                else:
                    app.add_dependency(producer, consumer, volume)

        app.validate()
        return app

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SdfGraph({self.name!r}, actors={len(self._actors)}, "
            f"channels={len(self._channels)})"
        )
