"""repro — design-space exploration for dynamically reconfigurable
architectures.

A production-quality reproduction of Miramond & Delosme, *Design Space
Exploration for Dynamically Reconfigurable Architectures*, DATE 2005:
adaptive simulated annealing that simultaneously explores HW/SW spatial
partitioning, temporal partitioning into FPGA contexts, software
scheduling and bus transaction ordering, evaluated by the longest path
of a sequentialization-edge-augmented search graph.

Quickstart — the declarative public API (``repro.api``): describe the
workload as data, run it through the one façade::

    from repro.api import BudgetSpec, ExplorationRequest, explore

    request = ExplorationRequest(          # defaults: the paper's
        kind="single",                     # motion benchmark on a
        budget=BudgetSpec(iterations=5000),  # 2000-CLB EPICURE device
        seed=1,
    )
    response = explore(request)
    print(response.best["evaluation"]["makespan_ms"])
    open("run.json", "w").write(request.to_json())  # reproduce via
    # `python -m repro explore --spec run.json` — same seed, same result

The imperative objects remain available for programmatic use::

    from repro import (
        motion_detection_application, epicure_architecture,
        DesignSpaceExplorer,
    )

    app = motion_detection_application()
    arch = epicure_architecture(n_clbs=2000)
    explorer = DesignSpaceExplorer(app, arch, iterations=5000, seed=1)
    result = explorer.run()
    print(result.best_evaluation.makespan_ms)
"""

from repro.errors import (
    ReproError,
    GraphError,
    CycleError,
    ModelError,
    ArchitectureError,
    CapacityError,
    MappingError,
    MoveError,
    InfeasibleMoveError,
    ConfigurationError,
    TelemetryError,
    ServiceError,
)
from repro.graph import Dag, PathCountClosure, MaxPlusClosure
from repro.model import (
    Application,
    GeneratorConfig,
    Implementation,
    SdfActor,
    SdfChannel,
    SdfGraph,
    Task,
    motion_detection_application,
    random_application,
    MOTION_TOTAL_SW_TIME_MS,
)
from repro.arch import (
    Architecture,
    Asic,
    Bus,
    Processor,
    ReconfigurableCircuit,
    epicure_architecture,
)
from repro.mapping import (
    ENGINES,
    ArrayEngine,
    Evaluation,
    EvaluationEngine,
    Evaluator,
    ExecutionSimulator,
    FullRebuildEngine,
    IncrementalEngine,
    MakespanCost,
    make_engine,
    Schedule,
    SimulationResult,
    Solution,
    SystemCost,
    extract_schedule,
    random_initial_solution,
    render_gantt,
    simulate,
)
from repro.sa import (
    AnnealerConfig,
    DesignSpaceExplorer,
    ExplorationResult,
    GeometricSchedule,
    LamDelosmeSchedule,
    ModifiedLamSchedule,
    MoveGenerator,
    SimulatedAnnealing,
)
from repro.search import (
    InstanceSpec,
    SearchBudget,
    SearchJob,
    SearchResult,
    SearchStrategy,
    StrategySpec,
    derive_seeds,
    run_portfolio,
    run_search_jobs,
)
from repro.obs import Telemetry
from repro.service import ExplorationService, ResultStore, run_workers
from repro import api
from repro.api import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    ExplorationResponse,
    explore,
    load_request,
)

__version__ = "1.3.0"

__all__ = [
    # errors
    "ReproError", "GraphError", "CycleError", "ModelError",
    "ArchitectureError", "CapacityError", "MappingError", "MoveError",
    "InfeasibleMoveError", "ConfigurationError", "TelemetryError",
    "ServiceError",
    # graph
    "Dag", "PathCountClosure", "MaxPlusClosure",
    # model
    "Application", "Implementation", "Task",
    "SdfActor", "SdfChannel", "SdfGraph",
    "GeneratorConfig", "random_application",
    "motion_detection_application", "MOTION_TOTAL_SW_TIME_MS",
    # architecture
    "Architecture", "Asic", "Bus", "Processor", "ReconfigurableCircuit",
    "epicure_architecture",
    # mapping
    "Evaluation", "Evaluator", "MakespanCost", "Schedule", "Solution",
    "SystemCost", "extract_schedule", "random_initial_solution",
    "render_gantt", "ExecutionSimulator", "SimulationResult", "simulate",
    "ENGINES", "ArrayEngine", "EvaluationEngine", "FullRebuildEngine",
    "IncrementalEngine", "make_engine",
    # annealing
    "AnnealerConfig", "DesignSpaceExplorer", "ExplorationResult",
    "GeometricSchedule", "LamDelosmeSchedule", "ModifiedLamSchedule",
    "MoveGenerator", "SimulatedAnnealing",
    # search subsystem
    "SearchStrategy", "SearchBudget", "SearchResult",
    "StrategySpec", "InstanceSpec", "SearchJob",
    "run_search_jobs", "run_portfolio", "derive_seeds",
    # observability
    "Telemetry",
    # exploration service
    "ExplorationService", "ResultStore", "run_workers",
    # declarative public API (note: repro.api.StrategySpec is the
    # spec-layer strategy document; repro.StrategySpec stays the
    # runner-level job spec)
    "api", "ApplicationSpec", "ArchitectureSpec", "BudgetSpec",
    "EngineSpec", "ExplorationRequest", "ExplorationResponse",
    "explore", "load_request",
    "__version__",
]
