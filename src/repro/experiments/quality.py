"""The designer's quality knob (paper abstract & section 4.1).

"[The tool] lets the designer select the quality of the optimization
(hence its computing time) and finds accordingly a solution with
close-to-minimal cost."  The knob is the Lam schedule's ``lambda_rate``:
the number of iterations needed to traverse the same inverse-temperature
range scales as ``1/lambda``, so choosing the rate *is* choosing the
computing time.  The sweep sizes each run's budget accordingly
(``warmup + budget_constant / lambda``) and reports the quality/time
trade the designer gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.stats import summarize, Summary
from repro.api.facade import explore
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QualityKnobRow:
    lambda_rate: float
    makespan: Summary
    mean_iterations: float
    mean_runtime_s: float

    def format_row(self) -> str:
        return (
            f"{self.lambda_rate:>8.4f} {self.makespan.mean:>9.2f} "
            f"{self.makespan.std:>7.2f} {self.mean_iterations:>11.0f} "
            f"{self.mean_runtime_s:>9.2f}"
        )


QUALITY_HEADER = (
    f"{'lambda':>8} {'exec(ms)':>9} {'std':>7} {'iterations':>11} {'time(s)':>9}"
)


def run_quality_knob(
    lambda_rates: Sequence[float] = (0.4, 0.1, 0.025),
    n_clbs: int = 2000,
    budget_constant: float = 700.0,
    warmup: int = 1200,
    runs: int = 3,
    seed0: int = 51,
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
) -> List[QualityKnobRow]:
    """Sweep the cooling-speed knob; budgets scale as 1/lambda.

    Since the ``repro.api`` redesign this is a thin spec builder: each
    lambda rate becomes one multi-seed batch
    :class:`~repro.api.specs.ExplorationRequest` executed through
    :func:`repro.api.facade.explore`; ``jobs=N`` spreads each batch
    across worker processes.
    """
    if not lambda_rates:
        raise ConfigurationError("need at least one lambda rate")
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    rows: List[QualityKnobRow] = []
    for index, rate in enumerate(lambda_rates):
        request = ExplorationRequest(
            kind="batch",
            application=ApplicationSpec(kind="builtin", name="motion"),
            architecture=ArchitectureSpec(kind="builtin", n_clbs=n_clbs),
            strategy=StrategySpec("sa", {
                "schedule_kwargs": {"lambda_rate": rate},
                "keep_trace": False,
            }),
            budget=BudgetSpec(
                iterations=warmup + round(budget_constant / rate),
                warmup_iterations=warmup,
            ),
            seeds=tuple(seed0 + r for r in range(runs)),
        )
        response = explore(
            request,
            jobs=jobs,
            checkpoint_path=None if checkpoint_path is None
            else f"{checkpoint_path}.r{index}",
        )
        rows.append(
            QualityKnobRow(
                lambda_rate=rate,
                makespan=summarize(
                    [r["evaluation"]["makespan_ms"] for r in response.results]
                ),
                mean_iterations=(
                    sum(float(r["iterations_run"]) for r in response.results)
                    / runs
                ),
                mean_runtime_s=(
                    sum(r["runtime_s"] for r in response.results) / runs
                ),
            )
        )
    return rows


def format_quality_table(rows: Sequence[QualityKnobRow]) -> str:
    lines = ["Quality/computing-time knob (Lam lambda_rate sweep)"]
    lines.append(QUALITY_HEADER)
    for row in rows:
        lines.append(row.format_row())
    return "\n".join(lines)
