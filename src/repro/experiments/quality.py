"""The designer's quality knob (paper abstract & section 4.1).

"[The tool] lets the designer select the quality of the optimization
(hence its computing time) and finds accordingly a solution with
close-to-minimal cost."  The knob is the Lam schedule's ``lambda_rate``:
the number of iterations needed to traverse the same inverse-temperature
range scales as ``1/lambda``, so choosing the rate *is* choosing the
computing time.  The sweep sizes each run's budget accordingly
(``warmup + budget_constant / lambda``) and reports the quality/time
trade the designer gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.stats import summarize, Summary
from repro.errors import ConfigurationError
from repro.model.motion import motion_detection_application
from repro.search.runner import (
    InstanceSpec,
    SearchJob,
    StrategySpec,
    best_evaluation_of,
    run_search_jobs,
)


@dataclass(frozen=True)
class QualityKnobRow:
    lambda_rate: float
    makespan: Summary
    mean_iterations: float
    mean_runtime_s: float

    def format_row(self) -> str:
        return (
            f"{self.lambda_rate:>8.4f} {self.makespan.mean:>9.2f} "
            f"{self.makespan.std:>7.2f} {self.mean_iterations:>11.0f} "
            f"{self.mean_runtime_s:>9.2f}"
        )


QUALITY_HEADER = (
    f"{'lambda':>8} {'exec(ms)':>9} {'std':>7} {'iterations':>11} {'time(s)':>9}"
)


def run_quality_knob(
    lambda_rates: Sequence[float] = (0.4, 0.1, 0.025),
    n_clbs: int = 2000,
    budget_constant: float = 700.0,
    warmup: int = 1200,
    runs: int = 3,
    seed0: int = 51,
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
) -> List[QualityKnobRow]:
    """Sweep the cooling-speed knob; budgets scale as 1/lambda.

    Every ``(rate, run)`` cell is an independent job, so ``jobs=N``
    spreads the whole sweep across worker processes.
    """
    if not lambda_rates:
        raise ConfigurationError("need at least one lambda rate")
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    application = motion_detection_application()
    instance = InstanceSpec(application, n_clbs=n_clbs)
    job_list = [
        SearchJob(
            StrategySpec("sa", {
                "iterations": warmup + round(budget_constant / rate),
                "warmup_iterations": warmup,
                "schedule_kwargs": {"lambda_rate": rate},
                "keep_trace": False,
            }),
            instance,
            seed=seed0 + r,
            tag=[rate, r],
        )
        for rate in lambda_rates
        for r in range(runs)
    ]
    outcomes = run_search_jobs(
        job_list, jobs=jobs, checkpoint_path=checkpoint_path
    )
    by_cell = {(o.tag[0], o.tag[1]): o.result for o in outcomes}
    rows: List[QualityKnobRow] = []
    for rate in lambda_rates:
        results = [by_cell[(rate, r)] for r in range(runs)]
        costs = [
            best_evaluation_of(result).makespan_ms for result in results
        ]
        rows.append(
            QualityKnobRow(
                lambda_rate=rate,
                makespan=summarize(costs),
                mean_iterations=(
                    sum(float(r.iterations_run) for r in results) / runs
                ),
                mean_runtime_s=sum(r.runtime_s for r in results) / runs,
            )
        )
    return rows


def format_quality_table(rows: Sequence[QualityKnobRow]) -> str:
    lines = ["Quality/computing-time knob (Lam lambda_rate sweep)"]
    lines.append(QUALITY_HEADER)
    for row in rows:
        lines.append(row.format_row())
    return "\n".join(lines)
