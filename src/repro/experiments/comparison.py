"""Experiment E3 — SA vs the GA baseline (paper section 5, in-text).

The paper reports, on the motion-detection benchmark with a 2000-CLB
device:

* GA flow of [6]: 28 ms execution time, ~4 minutes of optimization
  (population 300);
* this paper's adaptive SA: 18.1 ms, under 10 seconds — better quality
  and an order of magnitude faster even if the GA population were cut
  to 100.

This module runs both optimizers on identical ground (same evaluator,
same application and device) and reports quality and runtime; the shape
to reproduce is *SA at least as good and markedly faster*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api.facade import explore
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.model.motion import MOTION_DEADLINE_MS


@dataclass
class ComparisonResult:
    sa_makespan_ms: float
    sa_runtime_s: float
    sa_contexts: int
    ga_makespan_ms: float
    ga_runtime_s: float
    ga_contexts: int
    ga_evaluations: int
    deadline_ms: float

    @property
    def speedup(self) -> float:
        """GA runtime over SA runtime."""
        return self.ga_runtime_s / max(self.sa_runtime_s, 1e-9)

    @property
    def sa_wins_quality(self) -> bool:
        return self.sa_makespan_ms <= self.ga_makespan_ms

    def to_dict(self) -> dict:
        """JSON form for ``repro compare --json``."""
        return {
            "sa_makespan_ms": self.sa_makespan_ms,
            "sa_runtime_s": self.sa_runtime_s,
            "sa_contexts": self.sa_contexts,
            "ga_makespan_ms": self.ga_makespan_ms,
            "ga_runtime_s": self.ga_runtime_s,
            "ga_contexts": self.ga_contexts,
            "ga_evaluations": self.ga_evaluations,
            "deadline_ms": self.deadline_ms,
            "speedup": self.speedup,
            "sa_wins_quality": self.sa_wins_quality,
        }

    def format_table(self) -> str:
        rows = [
            "SA vs GA comparison (motion detection, 2000-CLB device)",
            f"{'method':<22} {'exec (ms)':>10} {'contexts':>9} {'runtime (s)':>12}",
            f"{'adaptive SA (ours)':<22} {self.sa_makespan_ms:>10.2f} "
            f"{self.sa_contexts:>9} {self.sa_runtime_s:>12.2f}",
            f"{'GA+cluster+list [6]':<22} {self.ga_makespan_ms:>10.2f} "
            f"{self.ga_contexts:>9} {self.ga_runtime_s:>12.2f}",
            (
                f"runtime: GA is {self.speedup:.1f}x slower than SA"
                if self.speedup >= 1.0
                else f"runtime: GA is {1 / self.speedup:.1f}x faster than SA"
            ),
            f"deadline {self.deadline_ms:.0f} ms met: "
            f"SA={self.sa_makespan_ms <= self.deadline_ms} "
            f"GA={self.ga_makespan_ms <= self.deadline_ms}",
        ]
        return "\n".join(rows)


def run_comparison(
    n_clbs: int = 2000,
    sa_iterations: int = 8000,
    sa_warmup: Optional[int] = 1200,
    ga_population: int = 300,
    ga_generations: int = 40,
    seed: int = 11,
    sa_best_of: int = 1,
    engine: str = "full",
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
) -> ComparisonResult:
    """Run both optimizers on the paper's platform.

    ``sa_best_of`` > 1 runs SA multiple times within the GA's time
    budget spirit and keeps the best (still far cheaper than one GA).
    Both optimizers score candidates through the same evaluation
    ``engine`` (``"full"`` or ``"incremental"``), so the comparison
    stays on identical ground either way.  Since the ``repro.api``
    redesign this function is a thin spec builder: the SA restarts are
    one multi-seed batch request and the GA one single request, both
    executed through :func:`repro.api.facade.explore` (``jobs=N``
    parallelizes within each request; every run is independently
    seeded, so the numbers are identical to any other grouping).
    """
    application = ApplicationSpec(kind="builtin", name="motion")
    architecture = ArchitectureSpec(kind="builtin", n_clbs=n_clbs)

    sa_request = ExplorationRequest(
        kind="batch",
        application=application,
        architecture=architecture,
        strategy=StrategySpec("sa", {"keep_trace": False}),
        budget=BudgetSpec(
            iterations=sa_iterations, warmup_iterations=sa_warmup
        ),
        engine=EngineSpec(engine),
        seeds=tuple(seed + k for k in range(sa_best_of)),
    )
    ga_request = ExplorationRequest(
        kind="single",
        application=application,
        architecture=architecture,
        strategy=StrategySpec("ga", {
            "population_size": ga_population,
            "generations": ga_generations,
        }),
        engine=EngineSpec(engine),
        seed=seed,
    )
    sa_response = explore(
        sa_request, jobs=jobs, checkpoint_path=checkpoint_path
    )
    ga_response = explore(
        ga_request,
        jobs=jobs,
        checkpoint_path=None if checkpoint_path is None
        else checkpoint_path + ".ga",
    )

    sa_best = sa_response.best
    ga_best = ga_response.best
    ga_record = ga_response.results[0]
    return ComparisonResult(
        sa_makespan_ms=sa_best["evaluation"]["makespan_ms"],
        sa_runtime_s=sum(r["runtime_s"] for r in sa_response.results),
        sa_contexts=sa_best["evaluation"]["num_contexts"],
        ga_makespan_ms=ga_best["evaluation"]["makespan_ms"],
        ga_runtime_s=ga_record["runtime_s"],
        ga_contexts=ga_best["evaluation"]["num_contexts"],
        ga_evaluations=ga_record["evaluations"],
        deadline_ms=MOTION_DEADLINE_MS,
    )
