"""Experiment E3 — SA vs the GA baseline (paper section 5, in-text).

The paper reports, on the motion-detection benchmark with a 2000-CLB
device:

* GA flow of [6]: 28 ms execution time, ~4 minutes of optimization
  (population 300);
* this paper's adaptive SA: 18.1 ms, under 10 seconds — better quality
  and an order of magnitude faster even if the GA population were cut
  to 100.

This module runs both optimizers on identical ground (same evaluator,
same application and device) and reports quality and runtime; the shape
to reproduce is *SA at least as good and markedly faster*.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.arch.architecture import epicure_architecture
from repro.baselines.ga import GeneticConfig, GeneticPartitioner, GeneticResult
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer, ExplorationResult


@dataclass
class ComparisonResult:
    sa_makespan_ms: float
    sa_runtime_s: float
    sa_contexts: int
    ga_makespan_ms: float
    ga_runtime_s: float
    ga_contexts: int
    ga_evaluations: int
    deadline_ms: float

    @property
    def speedup(self) -> float:
        """GA runtime over SA runtime."""
        return self.ga_runtime_s / max(self.sa_runtime_s, 1e-9)

    @property
    def sa_wins_quality(self) -> bool:
        return self.sa_makespan_ms <= self.ga_makespan_ms

    def format_table(self) -> str:
        rows = [
            "SA vs GA comparison (motion detection, 2000-CLB device)",
            f"{'method':<22} {'exec (ms)':>10} {'contexts':>9} {'runtime (s)':>12}",
            f"{'adaptive SA (ours)':<22} {self.sa_makespan_ms:>10.2f} "
            f"{self.sa_contexts:>9} {self.sa_runtime_s:>12.2f}",
            f"{'GA+cluster+list [6]':<22} {self.ga_makespan_ms:>10.2f} "
            f"{self.ga_contexts:>9} {self.ga_runtime_s:>12.2f}",
            (
                f"runtime: GA is {self.speedup:.1f}x slower than SA"
                if self.speedup >= 1.0
                else f"runtime: GA is {1 / self.speedup:.1f}x faster than SA"
            ),
            f"deadline {self.deadline_ms:.0f} ms met: "
            f"SA={self.sa_makespan_ms <= self.deadline_ms} "
            f"GA={self.ga_makespan_ms <= self.deadline_ms}",
        ]
        return "\n".join(rows)


def run_comparison(
    n_clbs: int = 2000,
    sa_iterations: int = 8000,
    sa_warmup: int = 1200,
    ga_population: int = 300,
    ga_generations: int = 40,
    seed: int = 11,
    sa_best_of: int = 1,
    engine: str = "full",
) -> ComparisonResult:
    """Run both optimizers on the paper's platform.

    ``sa_best_of`` > 1 runs SA multiple times within the GA's time
    budget spirit and keeps the best (still far cheaper than one GA).
    Both optimizers score candidates through the same evaluation
    ``engine`` (``"full"`` or ``"incremental"``), so the comparison
    stays on identical ground either way.
    """
    application = motion_detection_application()

    sa_best: Optional[ExplorationResult] = None
    sa_total_runtime = 0.0
    for k in range(sa_best_of):
        architecture = epicure_architecture(n_clbs=n_clbs)
        explorer = DesignSpaceExplorer(
            application,
            architecture,
            iterations=sa_iterations,
            warmup_iterations=sa_warmup,
            seed=seed + k,
            keep_trace=False,
            engine=engine,
        )
        result = explorer.run()
        sa_total_runtime += result.runtime_s
        if sa_best is None or (
            result.best_evaluation.makespan_ms
            < sa_best.best_evaluation.makespan_ms
        ):
            sa_best = result
    assert sa_best is not None

    ga_architecture = epicure_architecture(n_clbs=n_clbs)
    ga = GeneticPartitioner(
        application,
        ga_architecture,
        GeneticConfig(
            population_size=ga_population,
            generations=ga_generations,
            seed=seed,
        ),
        engine=engine,
    )
    ga_result = ga.run()

    return ComparisonResult(
        sa_makespan_ms=sa_best.best_evaluation.makespan_ms,
        sa_runtime_s=sa_total_runtime,
        sa_contexts=sa_best.best_evaluation.num_contexts,
        ga_makespan_ms=ga_result.best_evaluation.makespan_ms,
        ga_runtime_s=ga_result.runtime_s,
        ga_contexts=ga_result.best_evaluation.num_contexts,
        ga_evaluations=ga_result.evaluations,
        deadline_ms=MOTION_DEADLINE_MS,
    )
