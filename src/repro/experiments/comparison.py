"""Experiment E3 — SA vs the GA baseline (paper section 5, in-text).

The paper reports, on the motion-detection benchmark with a 2000-CLB
device:

* GA flow of [6]: 28 ms execution time, ~4 minutes of optimization
  (population 300);
* this paper's adaptive SA: 18.1 ms, under 10 seconds — better quality
  and an order of magnitude faster even if the GA population were cut
  to 100.

This module runs both optimizers on identical ground (same evaluator,
same application and device) and reports quality and runtime; the shape
to reproduce is *SA at least as good and markedly faster*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application
from repro.search.runner import (
    InstanceSpec,
    SearchJob,
    StrategySpec,
    best_evaluation_of,
    run_search_jobs,
)


@dataclass
class ComparisonResult:
    sa_makespan_ms: float
    sa_runtime_s: float
    sa_contexts: int
    ga_makespan_ms: float
    ga_runtime_s: float
    ga_contexts: int
    ga_evaluations: int
    deadline_ms: float

    @property
    def speedup(self) -> float:
        """GA runtime over SA runtime."""
        return self.ga_runtime_s / max(self.sa_runtime_s, 1e-9)

    @property
    def sa_wins_quality(self) -> bool:
        return self.sa_makespan_ms <= self.ga_makespan_ms

    def format_table(self) -> str:
        rows = [
            "SA vs GA comparison (motion detection, 2000-CLB device)",
            f"{'method':<22} {'exec (ms)':>10} {'contexts':>9} {'runtime (s)':>12}",
            f"{'adaptive SA (ours)':<22} {self.sa_makespan_ms:>10.2f} "
            f"{self.sa_contexts:>9} {self.sa_runtime_s:>12.2f}",
            f"{'GA+cluster+list [6]':<22} {self.ga_makespan_ms:>10.2f} "
            f"{self.ga_contexts:>9} {self.ga_runtime_s:>12.2f}",
            (
                f"runtime: GA is {self.speedup:.1f}x slower than SA"
                if self.speedup >= 1.0
                else f"runtime: GA is {1 / self.speedup:.1f}x faster than SA"
            ),
            f"deadline {self.deadline_ms:.0f} ms met: "
            f"SA={self.sa_makespan_ms <= self.deadline_ms} "
            f"GA={self.ga_makespan_ms <= self.deadline_ms}",
        ]
        return "\n".join(rows)


def run_comparison(
    n_clbs: int = 2000,
    sa_iterations: int = 8000,
    sa_warmup: int = 1200,
    ga_population: int = 300,
    ga_generations: int = 40,
    seed: int = 11,
    sa_best_of: int = 1,
    engine: str = "full",
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
) -> ComparisonResult:
    """Run both optimizers on the paper's platform.

    ``sa_best_of`` > 1 runs SA multiple times within the GA's time
    budget spirit and keeps the best (still far cheaper than one GA).
    Both optimizers score candidates through the same evaluation
    ``engine`` (``"full"`` or ``"incremental"``), so the comparison
    stays on identical ground either way.  All runs (the SA restarts
    and the GA) are independent jobs, so ``jobs=N`` races them across
    worker processes.
    """
    application = motion_detection_application()
    instance = InstanceSpec(application, n_clbs=n_clbs)

    sa_spec = StrategySpec("sa", {
        "iterations": sa_iterations,
        "warmup_iterations": sa_warmup,
        "keep_trace": False,
        "engine": engine,
    })
    ga_spec = StrategySpec("ga", {
        "population_size": ga_population,
        "generations": ga_generations,
        "engine": engine,
    })
    job_list = [
        SearchJob(sa_spec, instance, seed=seed + k, tag="sa")
        for k in range(sa_best_of)
    ]
    job_list.append(SearchJob(ga_spec, instance, seed=seed, tag="ga"))
    outcomes = run_search_jobs(
        job_list, jobs=jobs, checkpoint_path=checkpoint_path
    )

    sa_best = None
    sa_best_ev = None
    sa_total_runtime = 0.0
    ga_result = None
    for outcome in outcomes:
        if outcome.tag == "ga":
            ga_result = outcome.result
            continue
        sa_total_runtime += outcome.result.runtime_s
        ev = best_evaluation_of(outcome.result)
        if sa_best is None or ev.makespan_ms < sa_best_ev.makespan_ms:
            sa_best, sa_best_ev = outcome.result, ev
    assert sa_best is not None and ga_result is not None
    ga_ev = best_evaluation_of(ga_result)

    return ComparisonResult(
        sa_makespan_ms=sa_best_ev.makespan_ms,
        sa_runtime_s=sa_total_runtime,
        sa_contexts=sa_best_ev.num_contexts,
        ga_makespan_ms=ga_ev.makespan_ms,
        ga_runtime_s=ga_result.runtime_s,
        ga_contexts=ga_ev.num_contexts,
        ga_evaluations=ga_result.evaluations,
        deadline_ms=MOTION_DEADLINE_MS,
    )
