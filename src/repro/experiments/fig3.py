"""Experiment E2 — the paper's Fig. 3.

Average execution time, reconfiguration times (initial and dynamic) and
number of contexts versus FPGA size, 100 runs per size in the paper
(configurable here; the benches use fewer for wall-clock sanity).

Paper narrative to reproduce:

* execution time drops quickly once a context can hold more than one
  task, reaching a minimum around ~800 CLBs;
* it then grows slowly and plateaus around ~5000 CLBs, from which size
  all hardware tasks fit one single context;
* small devices (~400-1500 CLBs) need many contexts (up to ~10),
  dropping steadily as size increases;
* total reconfiguration time stays roughly constant in the multi-
  context regime (number and size of contexts compensate).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.sweep import (
    SWEEP_HEADER,
    DeviceSweepRow,
    run_device_sweep,
    smallest_feasible_device,
)
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application

#: The paper sweeps 100..10000 CLBs; these are the default sample sizes.
FIG3_SIZES = (100, 200, 400, 600, 800, 1000, 1500, 2000, 3000, 5000, 7500, 10000)


def run_fig3(
    sizes: Sequence[int] = FIG3_SIZES,
    runs: int = 10,
    iterations: int = 8000,
    warmup_iterations: int = 1200,
    seed0: int = 1,
) -> List[DeviceSweepRow]:
    """Run the device-size sweep on the motion-detection benchmark."""
    application = motion_detection_application()
    return run_device_sweep(
        application,
        sizes=sizes,
        runs=runs,
        iterations=iterations,
        warmup_iterations=warmup_iterations,
        deadline_ms=MOTION_DEADLINE_MS,
        seed0=seed0,
    )


def format_fig3_table(rows: Sequence[DeviceSweepRow]) -> str:
    lines = ["Fig. 3 — execution/reconfiguration time and contexts vs FPGA size"]
    lines.append(SWEEP_HEADER)
    for row in rows:
        lines.append(row.format_row())
    smallest = smallest_feasible_device(rows, MOTION_DEADLINE_MS)
    lines.append(
        f"smallest device meeting the {MOTION_DEADLINE_MS:.0f} ms constraint "
        f"(on average): {smallest} CLBs"
    )
    return "\n".join(lines)
