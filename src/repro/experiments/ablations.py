"""Ablations A1/A3 and the bus-policy study (DESIGN.md section 4).

* **Schedule ablation** — Lam adaptive vs modified-Lam vs geometric vs
  hill climbing vs random search at an equal move budget: what the
  adaptive schedule buys (the paper's central claim is that it needs no
  tuning yet matches or beats tuned alternatives).
* **Implementation-choice ablation** — with the paper's 5-6 Pareto
  variants per function versus frozen smallest/fastest variants: what
  the area/time trade-off exploration buys.
* **Bus-policy ablation** — serialized transactions (the paper's model)
  versus plain edge delays: how much bus exclusiveness matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.stats import Summary, summarize
from repro.arch.architecture import epicure_architecture
from repro.baselines.hill_climber import HillClimber
from repro.baselines.random_search import RandomSearch
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import random_initial_solution
from repro.model.motion import motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer
from repro.sa.moves import MoveGenerator

import random


@dataclass(frozen=True)
class ScheduleAblationRow:
    method: str
    makespan: Summary
    mean_runtime_s: float

    def format_row(self) -> str:
        return (
            f"{self.method:<16} {self.makespan.mean:>9.2f} {self.makespan.std:>7.2f} "
            f"{self.makespan.minimum:>8.2f} {self.makespan.maximum:>8.2f} "
            f"{self.mean_runtime_s:>9.2f}"
        )


SCHEDULE_ABLATION_HEADER = (
    f"{'method':<16} {'mean(ms)':>9} {'std':>7} {'min':>8} {'max':>8} {'time(s)':>9}"
)


def run_schedule_ablation(
    n_clbs: int = 2000,
    iterations: int = 6000,
    warmup: int = 1000,
    runs: int = 5,
    seed0: int = 42,
) -> List[ScheduleAblationRow]:
    """A1: cooling schedules and no-temperature baselines, equal budget."""
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    application = motion_detection_application()
    rows: List[ScheduleAblationRow] = []

    for name in ("lam", "modified_lam", "geometric"):
        costs: List[float] = []
        runtimes: List[float] = []
        for r in range(runs):
            explorer = DesignSpaceExplorer(
                application,
                epicure_architecture(n_clbs=n_clbs),
                iterations=iterations,
                warmup_iterations=warmup,
                seed=seed0 + r,
                schedule_name=name,
                keep_trace=False,
            )
            result = explorer.run()
            costs.append(result.best_evaluation.makespan_ms)
            runtimes.append(result.runtime_s)
        rows.append(
            ScheduleAblationRow(
                method=name,
                makespan=summarize(costs),
                mean_runtime_s=sum(runtimes) / runs,
            )
        )

    # Hill climbing: same move space, zero temperature.
    costs, runtimes = [], []
    for r in range(runs):
        architecture = epicure_architecture(n_clbs=n_clbs)
        evaluator = Evaluator(application, architecture)
        generator = MoveGenerator(application)
        climber = HillClimber(
            evaluator, generator, iterations=iterations, seed=seed0 + r
        )
        rng = random.Random(seed0 + r)
        initial = random_initial_solution(application, architecture, rng)
        result = climber.run(initial)
        costs.append(result.best_cost)
        runtimes.append(result.runtime_s)
    rows.append(
        ScheduleAblationRow(
            method="hill_climb",
            makespan=summarize(costs),
            mean_runtime_s=sum(runtimes) / runs,
        )
    )

    # Random restart: an evaluation budget comparable to one SA run.
    costs, runtimes = [], []
    for r in range(runs):
        architecture = epicure_architecture(n_clbs=n_clbs)
        evaluator = Evaluator(application, architecture)
        search = RandomSearch(
            application, architecture, evaluator,
            samples=max(iterations // 10, 1), seed=seed0 + r,
        )
        result = search.run()
        costs.append(result.best_cost)
        runtimes.append(result.runtime_s)
    rows.append(
        ScheduleAblationRow(
            method="random_search",
            makespan=summarize(costs),
            mean_runtime_s=sum(runtimes) / runs,
        )
    )
    return rows


def run_impl_ablation(
    n_clbs: int = 2000,
    iterations: int = 6000,
    warmup: int = 1000,
    runs: int = 5,
    seed0: int = 17,
) -> Dict[str, Summary]:
    """A3: multi-implementation exploration on/off.

    Returns makespan summaries for three settings: free implementation
    choice (p_impl > 0, the paper's mode), frozen smallest variants, and
    frozen fastest variants.
    """
    application = motion_detection_application()
    results: Dict[str, Summary] = {}

    def run_mode(mode: str) -> Summary:
        costs: List[float] = []
        for r in range(runs):
            architecture = epicure_architecture(n_clbs=n_clbs)
            p_impl = 0.15 if mode == "free" else 0.0
            explorer = DesignSpaceExplorer(
                application,
                architecture,
                iterations=iterations,
                warmup_iterations=warmup,
                seed=seed0 + r,
                p_impl=p_impl,
                keep_trace=False,
            )
            initial = explorer.initial_solution()
            if mode != "free":
                for task in application.hardware_capable_tasks():
                    choice = (
                        0 if mode == "smallest"
                        else task.num_implementations - 1
                    )
                    initial.set_implementation_choice(task.index, choice)
            result = explorer.run(initial)
            costs.append(result.best_evaluation.makespan_ms)
        return summarize(costs)

    for mode in ("free", "smallest", "fastest"):
        results[mode] = run_mode(mode)
    return results


def run_bus_ablation(
    n_clbs: int = 2000,
    iterations: int = 6000,
    warmup: int = 1000,
    runs: int = 5,
    seed0: int = 23,
) -> Dict[str, Summary]:
    """Bus policy: serialized transactions vs plain edge delays."""
    application = motion_detection_application()
    results: Dict[str, Summary] = {}
    for policy in ("ordered", "edge"):
        costs: List[float] = []
        for r in range(runs):
            explorer = DesignSpaceExplorer(
                application,
                epicure_architecture(n_clbs=n_clbs),
                iterations=iterations,
                warmup_iterations=warmup,
                seed=seed0 + r,
                bus_policy=policy,
                keep_trace=False,
            )
            result = explorer.run()
            costs.append(result.best_evaluation.makespan_ms)
        results[policy] = summarize(costs)
    return results
