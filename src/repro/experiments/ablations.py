"""Ablations A1/A3 and the bus-policy study (DESIGN.md section 4).

* **Schedule ablation** — Lam adaptive vs modified-Lam vs geometric vs
  hill climbing vs random search at an equal move budget: what the
  adaptive schedule buys (the paper's central claim is that it needs no
  tuning yet matches or beats tuned alternatives).
* **Implementation-choice ablation** — with the paper's 5-6 Pareto
  variants per function versus frozen smallest/fastest variants: what
  the area/time trade-off exploration buys.
* **Bus-policy ablation** — serialized transactions (the paper's model)
  versus plain edge delays: how much bus exclusiveness matters.

All three submit their runs through the parallel runner
(:mod:`repro.search.runner`): every ``(configuration, seed)`` cell is an
independent job, so ``jobs=N`` spreads a whole ablation over N worker
processes without changing its numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.stats import Summary, summarize
from repro.arch.architecture import epicure_architecture
from repro.errors import ConfigurationError
from repro.model.motion import motion_detection_application
from repro.mapping.solution import random_initial_solution
from repro.search.runner import (
    InstanceSpec,
    SearchJob,
    StrategySpec,
    run_search_jobs,
)


@dataclass(frozen=True)
class ScheduleAblationRow:
    method: str
    makespan: Summary
    mean_runtime_s: float

    def format_row(self) -> str:
        return (
            f"{self.method:<16} {self.makespan.mean:>9.2f} {self.makespan.std:>7.2f} "
            f"{self.makespan.minimum:>8.2f} {self.makespan.maximum:>8.2f} "
            f"{self.mean_runtime_s:>9.2f}"
        )


SCHEDULE_ABLATION_HEADER = (
    f"{'method':<16} {'mean(ms)':>9} {'std':>7} {'min':>8} {'max':>8} {'time(s)':>9}"
)


def _collect_rows(
    methods: Sequence[str],
    job_list: List[SearchJob],
    runs: int,
    jobs: int,
) -> List[ScheduleAblationRow]:
    outcomes = run_search_jobs(job_list, jobs=jobs)
    by_cell = {(o.tag[0], o.tag[1]): o.result for o in outcomes}
    rows: List[ScheduleAblationRow] = []
    for method in methods:
        results = [by_cell[(method, r)] for r in range(runs)]
        rows.append(
            ScheduleAblationRow(
                method=method,
                makespan=summarize([r.best_cost for r in results]),
                mean_runtime_s=sum(r.runtime_s for r in results) / runs,
            )
        )
    return rows


def run_schedule_ablation(
    n_clbs: int = 2000,
    iterations: int = 6000,
    warmup: int = 1000,
    runs: int = 5,
    seed0: int = 42,
    jobs: int = 1,
) -> List[ScheduleAblationRow]:
    """A1: cooling schedules and no-temperature baselines, equal budget."""
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    application = motion_detection_application()
    instance = InstanceSpec(application, n_clbs=n_clbs)

    methods = ["lam", "modified_lam", "geometric", "hill_climb", "random_search"]
    job_list: List[SearchJob] = []
    for name in ("lam", "modified_lam", "geometric"):
        spec = StrategySpec("sa", {
            "iterations": iterations,
            "warmup_iterations": warmup,
            "schedule_name": name,
            "keep_trace": False,
        })
        job_list.extend(
            SearchJob(spec, instance, seed=seed0 + r, tag=[name, r])
            for r in range(runs)
        )
    # Hill climbing: same move space, zero temperature.
    hill_spec = StrategySpec("hill_climber", {"iterations": iterations})
    # Random restart: an evaluation budget comparable to one SA run.
    random_spec = StrategySpec(
        "random", {"samples": max(iterations // 10, 1)}
    )
    for r in range(runs):
        seed = seed0 + r
        architecture = epicure_architecture(n_clbs=n_clbs)
        initial = random_initial_solution(
            application, architecture, random.Random(seed)
        )
        job_list.append(SearchJob(
            hill_spec,
            InstanceSpec(application, architecture=architecture),
            seed=seed, tag=["hill_climb", r], initial=initial,
        ))
        job_list.append(SearchJob(
            random_spec, instance, seed=seed, tag=["random_search", r],
        ))
    return _collect_rows(methods, job_list, runs, jobs)


def run_impl_ablation(
    n_clbs: int = 2000,
    iterations: int = 6000,
    warmup: int = 1000,
    runs: int = 5,
    seed0: int = 17,
    jobs: int = 1,
) -> Dict[str, Summary]:
    """A3: multi-implementation exploration on/off.

    Returns makespan summaries for three settings: free implementation
    choice (p_impl > 0, the paper's mode), frozen smallest variants, and
    frozen fastest variants.
    """
    application = motion_detection_application()
    job_list: List[SearchJob] = []
    for mode in ("free", "smallest", "fastest"):
        p_impl = 0.15 if mode == "free" else 0.0
        spec = StrategySpec("sa", {
            "iterations": iterations,
            "warmup_iterations": warmup,
            "p_impl": p_impl,
            "keep_trace": False,
        })
        for r in range(runs):
            seed = seed0 + r
            architecture = epicure_architecture(n_clbs=n_clbs)
            initial = None
            if mode != "free":
                # Freeze every hardware-capable task to one variant in
                # the (seeded) initial solution the explorer would have
                # drawn itself.
                initial = random_initial_solution(
                    application, architecture, random.Random(seed)
                )
                for task in application.hardware_capable_tasks():
                    choice = (
                        0 if mode == "smallest"
                        else task.num_implementations - 1
                    )
                    initial.set_implementation_choice(task.index, choice)
            job_list.append(SearchJob(
                spec,
                InstanceSpec(application, architecture=architecture),
                seed=seed, tag=[mode, r], initial=initial,
            ))
    outcomes = run_search_jobs(job_list, jobs=jobs)
    by_cell = {(o.tag[0], o.tag[1]): o.result for o in outcomes}
    return {
        mode: summarize([by_cell[(mode, r)].best_cost for r in range(runs)])
        for mode in ("free", "smallest", "fastest")
    }


def run_bus_ablation(
    n_clbs: int = 2000,
    iterations: int = 6000,
    warmup: int = 1000,
    runs: int = 5,
    seed0: int = 23,
    jobs: int = 1,
) -> Dict[str, Summary]:
    """Bus policy: serialized transactions vs plain edge delays."""
    application = motion_detection_application()
    instance = InstanceSpec(application, n_clbs=n_clbs)
    job_list = [
        SearchJob(
            StrategySpec("sa", {
                "iterations": iterations,
                "warmup_iterations": warmup,
                "bus_policy": policy,
                "keep_trace": False,
            }),
            instance,
            seed=seed0 + r,
            tag=[policy, r],
        )
        for policy in ("ordered", "edge")
        for r in range(runs)
    ]
    outcomes = run_search_jobs(job_list, jobs=jobs)
    by_cell = {(o.tag[0], o.tag[1]): o.result for o in outcomes}
    return {
        policy: summarize(
            [by_cell[(policy, r)].best_cost for r in range(runs)]
        )
        for policy in ("ordered", "edge")
    }
