"""Experiment harness: one module per paper artefact.

Every table and figure of the paper's evaluation (section 5) has a
``run_*`` function here and a corresponding bench in ``benchmarks/``;
EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import run_fig3, FIG3_SIZES
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.experiments.ablations import (
    ScheduleAblationRow,
    run_schedule_ablation,
    run_impl_ablation,
    run_bus_ablation,
)
from repro.experiments.pareto import (
    ParetoPoint,
    format_pareto_table,
    run_pareto_front,
)
from repro.experiments.quality import (
    QualityKnobRow,
    format_quality_table,
    run_quality_knob,
)

__all__ = [
    "Fig2Result",
    "run_fig2",
    "run_fig3",
    "FIG3_SIZES",
    "ComparisonResult",
    "run_comparison",
    "ScheduleAblationRow",
    "run_schedule_ablation",
    "run_impl_ablation",
    "run_bus_ablation",
    "ParetoPoint",
    "format_pareto_table",
    "run_pareto_front",
    "QualityKnobRow",
    "format_quality_table",
    "run_quality_knob",
]
