"""Experiment E1 — the paper's Fig. 2.

A single exploration run on the motion-detection application with a
2000-CLB device: plot execution time and number of contexts against the
iteration index.  Paper narrative to reproduce:

* the initial random solution violates the 40 ms constraint;
* the first 1200 iterations run at infinite temperature, broadly
  exploring (execution time bouncing over a wide range, contexts
  varying) with no average improvement;
* once adaptive cooling starts, execution time falls quickly below the
  40 ms constraint;
* the frozen final configuration sits well below the constraint with a
  small number of contexts (paper: 18.1 ms, 3 contexts).

Since the ``repro.api`` redesign the run is a thin spec builder: one
single-run :class:`~repro.api.specs.ExplorationRequest` with
``keep_trace`` on, executed through :func:`repro.api.facade.explore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api.facade import explore
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.mapping.evaluator import Evaluation
from repro.model.motion import MOTION_DEADLINE_MS
from repro.sa.trace import TraceRecord
from repro.search.strategy import SearchResult


@dataclass
class Fig2Result:
    """Trace and summary of the Fig. 2 run."""

    result: SearchResult
    deadline_ms: float
    warmup_iterations: int

    @property
    def trace(self) -> List[TraceRecord]:
        return self.result.trace

    @property
    def final_evaluation(self) -> Evaluation:
        return self.result.extras["best_evaluation"]

    @property
    def initial_evaluation(self) -> Evaluation:
        return self.result.extras["initial_evaluation"]

    @property
    def iterations_run(self) -> int:
        return self.result.iterations_run

    @property
    def runtime_s(self) -> float:
        return self.result.runtime_s

    def series(self) -> List[Tuple[int, float, int]]:
        """(iteration, execution time, number of contexts) — the two
        curves of Fig. 2."""
        return [
            (r.iteration, r.current_cost, r.num_contexts) for r in self.trace
        ]

    def warmup_spread(self) -> Tuple[float, float]:
        """(min, max) execution time during the infinite-T phase."""
        warmup = [
            r.current_cost
            for r in self.trace
            if r.iteration <= self.warmup_iterations
        ]
        return (min(warmup), max(warmup))

    def context_range(self) -> Tuple[int, int]:
        counts = [r.num_contexts for r in self.trace]
        return (min(counts), max(counts))

    def iterations_to_deadline(self) -> Optional[int]:
        """First iteration whose current solution meets the deadline."""
        for r in self.trace:
            if r.current_cost <= self.deadline_ms:
                return r.iteration
        return None

    def format_summary(self) -> str:
        ev = self.final_evaluation
        lo, hi = self.warmup_spread()
        cmin, cmax = self.context_range()
        hit = self.iterations_to_deadline()
        lines = [
            "Fig. 2 — evolution of execution time and number of contexts",
            f"  initial solution: {self.initial_evaluation.makespan_ms:.1f} ms "
            f"({self.initial_evaluation.num_contexts} contexts)",
            f"  infinite-T phase: first {self.warmup_iterations} iterations, "
            f"execution time in [{lo:.1f}, {hi:.1f}] ms",
            f"  contexts explored: {cmin}..{cmax}",
            f"  deadline ({self.deadline_ms:.0f} ms) first met at iteration: {hit}",
            f"  frozen solution: {ev.makespan_ms:.2f} ms, {ev.num_contexts} contexts, "
            f"{ev.hw_tasks} hw tasks, reconfig {ev.initial_reconfig_ms:.2f}+"
            f"{ev.dynamic_reconfig_ms:.2f} ms",
            f"  run time: {self.runtime_s:.2f} s "
            f"({self.iterations_run} iterations)",
        ]
        return "\n".join(lines)


def fig2_request(
    n_clbs: int = 2000,
    iterations: int = 8000,
    warmup_iterations: int = 1200,
    seed: int = 7,
) -> ExplorationRequest:
    """The Fig. 2 experiment as a declarative spec."""
    return ExplorationRequest(
        kind="single",
        application=ApplicationSpec(kind="builtin", name="motion"),
        architecture=ArchitectureSpec(kind="builtin", n_clbs=n_clbs),
        strategy=StrategySpec("sa", {"keep_trace": True}),
        budget=BudgetSpec(
            iterations=iterations, warmup_iterations=warmup_iterations
        ),
        engine=EngineSpec("full"),
        seed=seed,
    )


def run_fig2(
    n_clbs: int = 2000,
    iterations: int = 8000,
    warmup_iterations: int = 1200,
    seed: int = 7,
    deadline_ms: float = MOTION_DEADLINE_MS,
) -> Fig2Result:
    """Run the Fig. 2 experiment (single annealing run with full trace)."""
    request = fig2_request(
        n_clbs=n_clbs,
        iterations=iterations,
        warmup_iterations=warmup_iterations,
        seed=seed,
    )
    response = explore(request)
    return Fig2Result(
        result=response.best_result,
        deadline_ms=deadline_ms,
        warmup_iterations=warmup_iterations,
    )
