"""Cost-performance Pareto front via repeated architecture exploration.

The paper's introduction frames the tool as finding "a solution that
minimizes system cost while meeting the performance constraints".
Sweeping the deadline and running the architecture-exploration mode at
each point traces the *cost-performance front* of the design space:
how much platform one must buy for a given real-time budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError
from repro.mapping.cost import SystemCost
from repro.model.application import Application
from repro.model.motion import motion_detection_application
from repro.sa.explorer import DesignSpaceExplorer


@dataclass(frozen=True)
class ParetoPoint:
    """Best design found for one deadline."""

    deadline_ms: float
    makespan_ms: float
    monetary_cost: float
    resources: Sequence[str]
    meets_deadline: bool

    def format_row(self) -> str:
        mark = "yes" if self.meets_deadline else "NO"
        return (
            f"{self.deadline_ms:>10.1f} {self.makespan_ms:>10.2f} "
            f"{self.monetary_cost:>6.1f} {mark:>6}  {', '.join(self.resources)}"
        )


PARETO_HEADER = (
    f"{'deadline':>10} {'exec(ms)':>10} {'cost':>6} {'meets':>6}  resources"
)


def default_catalog():
    return [
        lambda name: Processor(name, speed_factor=1.0, monetary_cost=1.0),
        lambda name: ReconfigurableCircuit(
            name, n_clbs=1000, reconfig_ms_per_clb=0.0225, monetary_cost=2.0
        ),
        lambda name: Asic(name, monetary_cost=4.0),
    ]


def _seed_platform() -> Architecture:
    arch = Architecture("seed", bus=Bus(rate_kbytes_per_ms=50.0))
    arch.add_resource(Processor("arm922", monetary_cost=1.0))
    arch.add_resource(
        ReconfigurableCircuit(
            "virtex", n_clbs=1000, reconfig_ms_per_clb=0.0225,
            monetary_cost=2.0,
        )
    )
    return arch


def run_pareto_front(
    deadlines_ms: Sequence[float] = (80.0, 60.0, 40.0, 30.0),
    application: Optional[Application] = None,
    iterations: int = 8000,
    warmup: int = 1200,
    seed: int = 19,
    platform_factory: Optional[Callable[[], Architecture]] = None,
) -> List[ParetoPoint]:
    """Run architecture exploration for each deadline; returns one point
    per deadline (tighter deadlines should cost at least as much)."""
    if not deadlines_ms:
        raise ConfigurationError("need at least one deadline")
    app = application if application is not None else motion_detection_application()
    make_platform = platform_factory or _seed_platform
    points: List[ParetoPoint] = []
    for deadline in deadlines_ms:
        explorer = DesignSpaceExplorer(
            app,
            make_platform(),
            iterations=iterations,
            warmup_iterations=warmup,
            seed=seed,
            p_zero=0.05,
            catalog=default_catalog(),
            cost_function=SystemCost(deadline_ms=deadline, penalty_per_ms=50.0),
            keep_trace=False,
        )
        result = explorer.run()
        arch = result.best_solution.architecture
        ev = result.best_evaluation
        points.append(
            ParetoPoint(
                deadline_ms=deadline,
                makespan_ms=ev.makespan_ms,
                monetary_cost=arch.total_monetary_cost(),
                resources=tuple(
                    f"{type(r).__name__[0]}:{r.name}" for r in arch.resources()
                ),
                meets_deadline=ev.makespan_ms <= deadline + 1e-9,
            )
        )
    return points


def format_pareto_table(points: Sequence[ParetoPoint]) -> str:
    lines = ["Cost-performance front (architecture exploration per deadline)"]
    lines.append(PARETO_HEADER)
    for point in points:
        lines.append(point.format_row())
    return "\n".join(lines)
