"""Cost functions: what the annealer minimizes.

The paper optimizes two regimes:

* with a **fixed architecture** (the DATE'05 experiments) the criterion
  "becomes here the execution time" — :class:`MakespanCost`;
* in the **general method** the tool "finds a solution that minimizes
  system cost while meeting the performance constraints" —
  :class:`SystemCost` combines resource cost with a deadline penalty and
  drives the architecture-exploration moves m3/m4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluation
from repro.mapping.solution import Solution


class CostFunction(ABC):
    """Maps (solution, evaluation) to the scalar the annealer minimizes."""

    #: True when the cost reads only the :class:`Evaluation` (never the
    #: solution object).  Evaluation-pure costs can be computed after a
    #: candidate move has been undone, which is what lets the batched
    #: evaluation path (``EvaluationEngine.evaluate_batch``) score K
    #: candidates in one vectorized call.
    solution_independent = False

    @abstractmethod
    def __call__(self, solution: Solution, evaluation: Evaluation) -> float:
        ...


class MakespanCost(CostFunction):
    """Execution time only (the paper's fixed-architecture objective)."""

    solution_independent = True

    def __call__(self, solution: Solution, evaluation: Evaluation) -> float:
        return evaluation.makespan_ms


class SystemCost(CostFunction):
    """Monetary resource cost plus a deadline-violation penalty.

    ``cost = total_monetary_cost + penalty_per_ms * max(0, makespan - deadline)``

    With a large ``penalty_per_ms`` the annealer first drives the design
    into the feasible region, then trims resources — the "minimum cost
    meeting the performance constraints" objective of the introduction.
    """

    def __init__(self, deadline_ms: float, penalty_per_ms: float = 10.0) -> None:
        if deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be > 0")
        if penalty_per_ms <= 0:
            raise ConfigurationError("penalty_per_ms must be > 0")
        self.deadline_ms = deadline_ms
        self.penalty_per_ms = penalty_per_ms

    def __call__(self, solution: Solution, evaluation: Evaluation) -> float:
        lateness = max(0.0, evaluation.makespan_ms - self.deadline_ms)
        return solution.architecture.total_monetary_cost() + self.penalty_per_ms * lateness
