"""Search-graph construction (paper sections 3.3 and 4.3).

The search graph ``G' = <V, E ∪ Esw ∪ Ehw [∪ Ecom]>`` is the application
precedence graph augmented with:

* ``Esw`` — zero-weight sequentialization edges imposing each
  processor's total order;
* ``Ehw`` — context sequentialization edges (terminal nodes of context
  ``k`` to initial nodes of context ``k+1``) weighted by the partial
  reconfiguration time of the following context, plus a virtual
  configuration node carrying the initial reconfiguration delay;
* ``Ecom`` — with the ``"ordered"`` bus policy, each inter-resource data
  edge is expanded into a communication node on the shared bus and the
  bus's transactions are serialized in a deterministic order consistent
  with the task execution order (section 3.3's "ordering of the
  transactions on the shared communication medium").

Node durations: task execution times (assignment- and implementation-
dependent), communication transfer times, and the initial configuration
time.  The solution's cost is the longest path of this graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.errors import ConfigurationError, CycleError, MappingError
from repro.graph.dag import Dag
from repro.graph.longest_path import earliest_start_times, longest_path_length
from repro.mapping.solution import Solution
from repro.model.application import Application

#: Tag of virtual communication nodes: ``(COMM_NODE, src_task, dst_task)``.
COMM_NODE = "__comm__"

BUS_POLICIES = ("ordered", "edge")


class SearchGraph:
    """A realized solution: DAG + node durations + bookkeeping."""

    def __init__(
        self,
        dag: Dag,
        durations: Dict[Hashable, float],
        comm_nodes: List[Tuple[str, int, int]],
        config_nodes: List[Hashable],
    ) -> None:
        self.dag = dag
        self.durations = durations
        #: Communication nodes in serialized bus order (empty for the
        #: ``"edge"`` policy).
        self.comm_nodes = comm_nodes
        self.config_nodes = config_nodes
        self._order_cache: Optional[List[Hashable]] = None

    def duration(self, node: Hashable) -> float:
        return self.durations.get(node, 0.0)

    def topological_order(self) -> List[Hashable]:
        if self._order_cache is None:
            self._order_cache = self.dag.topological_order()
        return self._order_cache

    def makespan_ms(self) -> float:
        """Longest path length (execution time of the realization).

        Raises :class:`CycleError` for infeasible (cyclic) realizations.
        """
        return longest_path_length(self.dag, self.duration, self.topological_order())

    def start_times(self) -> Dict[Hashable, float]:
        return earliest_start_times(self.dag, self.duration, self.topological_order())

    def total_comm_ms(self) -> float:
        return sum(self.durations[c] for c in self.comm_nodes)


class SearchGraphBuilder:
    """Builds search graphs for candidate solutions of one application."""

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
    ) -> None:
        if bus_policy not in BUS_POLICIES:
            raise ConfigurationError(
                f"bus_policy must be one of {BUS_POLICIES}, got {bus_policy!r}"
            )
        self.application = application
        self.architecture = architecture
        self.bus_policy = bus_policy

    # ------------------------------------------------------------------
    def build(self, solution: Solution) -> SearchGraph:
        """Realize ``solution`` as a search graph.

        The graph may be cyclic for precedence-inconsistent solutions;
        cycle detection happens lazily in :meth:`SearchGraph.makespan_ms`
        (the annealer treats :class:`CycleError` as move infeasibility).
        """
        app = self.application
        arch = solution.architecture
        bus = arch.bus
        dag = Dag()
        durations: Dict[Hashable, float] = {}

        # 1. Task nodes with assignment-dependent durations.
        for t in app.task_indices():
            resource = solution.resource_of(t)
            dag.add_node(t)
            durations[t] = resource.execution_time_ms(solution, t)

        # 2. Precedence and communication.
        comm_nodes: List[Tuple[str, int, int]] = []
        for src, dst, kbytes in app.dependencies():
            crossing = solution.resource_name_of(src) != solution.resource_name_of(dst)
            transfer = bus.transfer_time_ms(kbytes) if crossing else 0.0
            if transfer > 0.0 and self.bus_policy == "ordered":
                comm = (COMM_NODE, src, dst)
                dag.add_node(comm)
                durations[comm] = transfer
                dag.add_edge(src, comm, 0.0)
                dag.add_edge(comm, dst, 0.0)
                comm_nodes.append(comm)
            else:
                dag.add_edge(src, dst, transfer)

        # 3. Per-resource sequentialization edges and virtual nodes
        #    (the paper's polymorphic PE.schedule contribution).
        config_nodes: List[Hashable] = []
        for resource in arch.resources():
            for node, duration in getattr(resource, "virtual_nodes", _no_virtual)(
                solution
            ):
                dag.add_node(node)
                durations[node] = duration
                config_nodes.append(node)
            for a, b, weight in resource.sequentialization_edges(solution):
                if dag.has_edge(a, b):
                    # A sequentialization edge may coincide with a
                    # precedence edge; keep the larger delay.
                    if weight > dag.edge_weight(a, b):
                        dag.set_edge_weight(a, b, weight)
                else:
                    dag.add_edge(a, b, weight)

        graph = SearchGraph(dag, durations, comm_nodes, config_nodes)

        # 4. Serialize bus transactions (total transaction order).
        if comm_nodes and self.bus_policy == "ordered":
            self._serialize_bus(graph)
        return graph

    # ------------------------------------------------------------------
    def _serialize_bus(self, graph: SearchGraph) -> None:
        """Impose a total order on the shared-medium transactions.

        Deterministic policy: sort communication nodes by their ASAP
        ready time in the unserialized graph (ties: node id), then chain
        them with zero-weight edges.  Because every transfer has a
        strictly positive duration, a transfer reachable from another
        always has a strictly later ready time, so the chain cannot
        create a cycle when the underlying realization is acyclic.
        """
        try:
            start = graph.start_times()
        except CycleError:
            # Realization already cyclic; leave it to makespan_ms to report.
            return
        ordered = sorted(graph.comm_nodes, key=lambda c: (start[c], c[1], c[2]))
        for a, b in zip(ordered, ordered[1:]):
            if not graph.dag.has_edge(a, b):
                graph.dag.add_edge(a, b, 0.0)
        graph.comm_nodes = ordered
        graph._order_cache = None


def _no_virtual(_solution: Solution) -> List[Tuple[Hashable, float]]:
    return []
