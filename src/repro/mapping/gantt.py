"""ASCII Gantt rendering of schedules (the paper's Fig. 1(c) view)."""

from __future__ import annotations

from typing import List

from repro.mapping.schedule import Schedule


def render_gantt(schedule: Schedule, width: int = 72) -> str:
    """Render the schedule as a fixed-width ASCII chart.

    Each row is one resource lane; activities appear as ``[label]``
    blocks positioned proportionally to their start/end times.  Used by
    the examples; precision is cosmetic (one column ≈ makespan/width).
    """
    if not schedule.entries:
        return "(empty schedule)"
    makespan = max(schedule.makespan_ms, 1e-9)
    scale = width / makespan
    lines: List[str] = [
        f"makespan = {schedule.makespan_ms:.2f} ms "
        f"(1 column = {makespan / width:.3f} ms)"
    ]
    label_width = max(len(row) for row in schedule.rows()) + 1
    for row, entries in schedule.by_row().items():
        lane = [" "] * width
        for entry in entries:
            begin = min(width - 1, int(entry.start_ms * scale))
            end = min(width, max(begin + 1, int(round(entry.end_ms * scale))))
            block = list("#" * (end - begin))
            tag = entry.label[: max(0, end - begin - 2)]
            if tag and len(block) >= len(tag) + 2:
                block[1 : 1 + len(tag)] = tag
            lane[begin:end] = block
        lines.append(f"{row:<{label_width}}|{''.join(lane)}|")
    return "\n".join(lines)
