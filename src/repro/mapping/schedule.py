"""Schedule extraction: from a realized search graph to timed entries.

Reproduces the information of the paper's Fig. 1(c): per-resource rows
(processor, the DRLC's successive contexts, the communication medium and
the reconfiguration slots) with start/end times for every activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.arch.reconfigurable import CONFIG_NODE
from repro.mapping.search_graph import COMM_NODE, SearchGraph
from repro.mapping.solution import Solution


@dataclass(frozen=True, order=True)
class ScheduleEntry:
    """One scheduled activity on one row of the Gantt chart."""

    start_ms: float
    end_ms: float
    row: str
    label: str
    kind: str  # "task" | "comm" | "reconfig"


@dataclass
class Schedule:
    """A complete timed schedule for a realized solution."""

    entries: List[ScheduleEntry]
    makespan_ms: float

    def rows(self) -> List[str]:
        seen: List[str] = []
        for entry in self.entries:
            if entry.row not in seen:
                seen.append(entry.row)
        return seen

    def by_row(self) -> Dict[str, List[ScheduleEntry]]:
        grouped: Dict[str, List[ScheduleEntry]] = {}
        for entry in sorted(self.entries):
            grouped.setdefault(entry.row, []).append(entry)
        return grouped

    def check_no_overlap(self, row: str) -> bool:
        """True when activities on ``row`` never overlap in time
        (must hold for processors and the bus)."""
        entries = self.by_row().get(row, [])
        for a, b in zip(entries, entries[1:]):
            if b.start_ms < a.end_ms - 1e-9:
                return False
        return True


def extract_schedule(solution: Solution, graph: SearchGraph) -> Schedule:
    """Compute start times and produce the per-resource schedule."""
    start = graph.start_times()
    app = solution.application
    entries: List[ScheduleEntry] = []
    makespan = 0.0

    for node, begin in start.items():
        duration = graph.duration(node)
        end = begin + duration
        makespan = max(makespan, end)
        if isinstance(node, tuple) and node and node[0] == COMM_NODE:
            _, src, dst = node
            entries.append(
                ScheduleEntry(
                    start_ms=begin,
                    end_ms=end,
                    row="bus",
                    label=f"{app.task(src).name}->{app.task(dst).name}",
                    kind="comm",
                )
            )
        elif isinstance(node, tuple) and node and node[0] == CONFIG_NODE:
            _, rc_name = node
            entries.append(
                ScheduleEntry(
                    start_ms=begin,
                    end_ms=end,
                    row=f"{rc_name}/reconfig",
                    label="initial config",
                    kind="reconfig",
                )
            )
        else:
            task = app.task(node)
            where = solution.context_of(node)
            if where is None:
                row = solution.resource_name_of(node)
            else:
                rc_name, k = where
                row = f"{rc_name}/ctx{k}"
            entries.append(
                ScheduleEntry(
                    start_ms=begin,
                    end_ms=end,
                    row=row,
                    label=task.name,
                    kind="task",
                )
            )

    # Dynamic reconfiguration slots: between consecutive contexts the
    # Ehw edge delays the next context by its reconfiguration time.
    for rc in solution.architecture.reconfigurable_circuits():
        contexts = solution.contexts(rc.name)
        for k in range(1, len(contexts)):
            reconf = rc.reconfiguration_time_ms(solution.context_clbs(rc.name, k))
            if reconf <= 0:
                continue
            initials = solution.context_initial_nodes(rc.name, k)
            begin = min(start[i] for i in initials) - reconf
            entries.append(
                ScheduleEntry(
                    start_ms=max(0.0, begin),
                    end_ms=max(0.0, begin) + reconf,
                    row=f"{rc.name}/reconfig",
                    label=f"config ctx{k}",
                    kind="reconfig",
                )
            )

    return Schedule(entries=sorted(entries), makespan_ms=makespan)
