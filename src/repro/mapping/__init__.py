"""Mapping layer: solutions, search graphs, evaluation and schedules.

A *solution* (paper section 3.3) simultaneously fixes the HW/SW spatial
partitioning, the temporal partitioning into contexts, the software
total order and (implicitly, through the deterministic bus serializer)
the transaction order.  A solution is *realized* as a search graph — the
task graph plus sequentialization edges — whose longest path is the
solution's execution time (section 4.4).
"""

from repro.mapping.solution import Solution, random_initial_solution
from repro.mapping.search_graph import SearchGraph, SearchGraphBuilder, COMM_NODE
from repro.mapping.compiled import CompiledInstance, compile_instance
from repro.mapping.engine import (
    ENGINES,
    ArrayEngine,
    EvaluationEngine,
    FullRebuildEngine,
    IncrementalEngine,
    make_engine,
)
from repro.mapping.evaluator import Evaluation, Evaluator
from repro.mapping.schedule import Schedule, ScheduleEntry, extract_schedule
from repro.mapping.gantt import render_gantt
from repro.mapping.cost import CostFunction, MakespanCost, SystemCost
from repro.mapping.simulator import (
    ExecutionSimulator,
    SimEvent,
    SimulationResult,
    simulate,
)

__all__ = [
    "Solution",
    "random_initial_solution",
    "SearchGraph",
    "SearchGraphBuilder",
    "COMM_NODE",
    "ENGINES",
    "ArrayEngine",
    "CompiledInstance",
    "compile_instance",
    "EvaluationEngine",
    "FullRebuildEngine",
    "IncrementalEngine",
    "make_engine",
    "Evaluation",
    "Evaluator",
    "Schedule",
    "ScheduleEntry",
    "extract_schedule",
    "render_gantt",
    "CostFunction",
    "MakespanCost",
    "SystemCost",
    "ExecutionSimulator",
    "SimEvent",
    "SimulationResult",
    "simulate",
]
