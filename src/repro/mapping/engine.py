"""Pluggable evaluation engines (the annealer's hot path).

Scoring a candidate solution — longest path of the realized search graph
(paper section 4.4) — is the single operation every optimizer in this
library performs thousands of times per run.  This module puts that
operation behind one interface with two implementations:

* :class:`FullRebuildEngine` — the reference semantics, extracted from
  the original ``Evaluator``/``SearchGraphBuilder`` pipeline: rebuild
  the whole :class:`~repro.graph.dag.Dag` from scratch for every
  candidate and run the dict-based longest-path DP.
* :class:`IncrementalEngine` — an array-backed fast path.  All search
  graph nodes (tasks, communication nodes, virtual configuration nodes)
  are interned to dense integer ids once per problem instance
  (:class:`~repro.graph.dag.NodeInterner`); the solution-independent
  precedence skeleton (dependency endpoints, transfer times, potential
  communication nodes, CLB tables) is cached; and after each move only
  the solution-dependent parts are delta-patched — task durations, the
  crossing state of each dependency, and the sequentialization edges of
  the (typically one or two) resources a move actually touched.  The
  ASAP/longest-path DP then runs over flat lists (a layout-specialized
  variant of :func:`~repro.graph.longest_path.earliest_starts_indexed`)
  instead of dict-of-dicts keyed by hashable tuples, and the
  topological order is cached and invalidated only on structural
  change.

Both engines produce **bit-identical** makespans: they evaluate the same
graph with the same float operations in the same association order, and
serialize shared-bus transactions with the same deterministic ASAP sort.
``tests/mapping/test_engine_parity.py`` replays hundreds of random move
sequences to enforce this.

Select an engine through ``Evaluator(..., engine="incremental")``, the
``DesignSpaceExplorer(engine=...)`` knob, or the CLI ``--engine`` flag;
``benchmarks/bench_engine.py`` measures the throughput gap.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import CONFIG_NODE, ReconfigurableCircuit
from repro.arch.resource import Resource
from repro.errors import ConfigurationError, CycleError, MappingError
from repro.graph.dag import NodeInterner
from repro.graph.longest_path import kahn_order_indices
from repro.mapping.search_graph import COMM_NODE, SearchGraph, SearchGraphBuilder
from repro.mapping.solution import Solution
from repro.model.application import Application

#: Cost of infeasible (cyclic) realizations.
INFEASIBLE_MS = math.inf

#: Names accepted by :func:`make_engine` / ``Evaluator(engine=...)``.
ENGINES = ("full", "incremental")

def _kind_is_hw(kind: Tuple) -> bool:
    """Does a classified resource host *hardware* tasks (the ones
    ``Solution.hardware_tasks`` counts)?"""
    tag = kind[0]
    return tag == "rc" or tag == "asic" or (tag == "?" and kind[2])


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate solution."""

    makespan_ms: float
    feasible: bool
    num_contexts: int
    hw_tasks: int
    sw_tasks: int
    initial_reconfig_ms: float
    dynamic_reconfig_ms: float
    comm_ms: float
    clbs_used: int

    @property
    def reconfig_ms(self) -> float:
        """Total reconfiguration time (initial + dynamic), Fig. 3's sum."""
        return self.initial_reconfig_ms + self.dynamic_reconfig_ms

    def meets(self, deadline_ms: float) -> bool:
        return self.feasible and self.makespan_ms <= deadline_ms


class EvaluationEngine(ABC):
    """Realizes and scores candidate solutions of one problem instance.

    An engine is constructed once per ``(application, architecture,
    bus_policy)`` and then called with candidate
    :class:`~repro.mapping.solution.Solution` objects; it owns whatever
    caches it needs across calls.  All optimizers (annealer, hill
    climber, tabu, GA) drive their move-evaluate-undo loops through this
    interface, usually via the :class:`~repro.mapping.evaluator.Evaluator`
    facade.
    """

    #: Engine name as accepted by :func:`make_engine`.
    name: str = "abstract"

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
    ) -> None:
        self.application = application
        self.architecture = architecture
        #: Reference builder: realizes solutions as explicit
        #: :class:`SearchGraph` objects (schedule extraction, debugging)
        #: and validates ``bus_policy``.
        self.builder = SearchGraphBuilder(application, architecture, bus_policy)
        self.bus_policy = bus_policy
        #: Number of evaluations performed (exposed for benchmarks).
        self.evaluations = 0

    # ------------------------------------------------------------------
    def realize(self, solution: Solution) -> SearchGraph:
        """Build the search graph without computing its longest path."""
        return self.builder.build(solution)

    @abstractmethod
    def makespan_ms(self, solution: Solution) -> float:
        """Longest path only (the optimizers' hot path); infeasible
        (cyclic) realizations return :data:`INFEASIBLE_MS`."""

    @abstractmethod
    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        """Score ``solution``; cyclic realizations yield an infeasible
        evaluation (``makespan = inf``) unless ``strict`` re-raises."""


class FullRebuildEngine(EvaluationEngine):
    """Reference engine: rebuild the search graph for every candidate.

    This is the original ``Evaluator`` behavior verbatim — every call
    constructs a fresh :class:`~repro.graph.dag.Dag`, reruns Kahn's sort
    and the dict-based DP.  It is the semantic baseline the incremental
    engine is checked against.
    """

    name = "full"

    def makespan_ms(self, solution: Solution) -> float:
        self.evaluations += 1
        graph = self.builder.build(solution)
        try:
            return graph.makespan_ms()
        except CycleError:
            return INFEASIBLE_MS

    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        self.evaluations += 1
        graph = self.builder.build(solution)
        try:
            makespan = graph.makespan_ms()
            feasible = True
        except CycleError:
            if strict:
                raise
            makespan = INFEASIBLE_MS
            feasible = False

        initial = 0.0
        dynamic = 0.0
        clbs = 0
        num_contexts = 0
        for rc in solution.architecture.reconfigurable_circuits():
            initial += rc.initial_reconfiguration_ms(solution)
            dynamic += rc.dynamic_reconfiguration_ms(solution)
            contexts = solution.contexts(rc.name)
            num_contexts += len(contexts)
            clbs += sum(
                solution.context_clbs(rc.name, k) for k in range(len(contexts))
            )
        hw = len(solution.hardware_tasks())
        return Evaluation(
            makespan_ms=makespan,
            feasible=feasible,
            num_contexts=num_contexts,
            hw_tasks=hw,
            sw_tasks=len(self.application.task_indices()) - hw,
            initial_reconfig_ms=initial,
            dynamic_reconfig_ms=dynamic,
            comm_ms=graph.total_comm_ms(),
            clbs_used=clbs,
        )


class IncrementalEngine(EvaluationEngine):
    """Array-backed engine with cached skeleton and delta-patching.

    The engine mirrors the last-seen solution state (per-task assignment
    and implementation choice, per-resource orders) and on each call
    diffs the incoming solution against that mirror — O(N) C-speed list
    comparisons — to patch only what a move actually changed.  Rejected
    moves need no special rollback support: after ``undo`` the next diff
    simply patches the state back.

    The search graph is kept in two edge layers:

    * a **static dependency layer**, built once: every application
      dependency is permanently wired ``src -> comm -> dst`` through its
      interned communication node.  When the transfer is active (edge
      crosses resources under the ``"ordered"`` policy), the transfer
      time is the comm node's duration; when inactive, it is the weight
      of the ``src -> comm`` edge (``0`` for same-resource edges) and
      the comm node's duration is zero.  Both routings produce the same
      float candidates as the reference graph's direct edge, so a move
      that flips an edge's crossing state is a pure O(1) weight patch —
      the layer's structure, indegrees and reachability never change;
    * a **sequentialization layer** holding per-resource ``Esw``/``Ehw``
      edges, recomputed only for resources whose order actually changed
      (a move touches at most two) and rebuilt into reused buffers only
      when some resource's edge *pairs* changed — weight-only changes
      (e.g. an implementation swap retuning reconfiguration delays) are
      written in place.

    The topological order, the cycle verdict and the serialized bus
    order are cached on top and invalidated only when the
    sequentialization layer's structure changes (the static layer cannot
    invalidate them).  Per-RC reconfiguration statistics for the Fig. 3
    decomposition are cached alongside.

    ``Processor``/``ReconfigurableCircuit``/``Asic`` contributions are
    generated natively over the interned arrays; unknown
    :class:`Resource` subclasses fall back to calling the resource's own
    ``sequentialization_edges``/``virtual_nodes`` on every evaluation
    (conservative but correct).
    """

    name = "incremental"

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
    ) -> None:
        super().__init__(application, architecture, bus_policy)
        self._build_skeleton(architecture.bus)

    # ------------------------------------------------------------------
    # one-time skeleton (solution-independent)
    # ------------------------------------------------------------------
    def _build_skeleton(self, bus) -> None:
        self._bus = bus
        self._ordered = self.bus_policy == "ordered"
        app = self.application
        tasks = app.task_indices()
        self._tasks: List[int] = list(tasks)
        self._ntasks = len(tasks)
        self._interner = NodeInterner(tasks)
        self._tid: Dict[int, int] = {t: i for i, t in enumerate(tasks)}

        # Per-task tables: software time, hardware implementation CLBs
        # and times (None for software-only tasks), precedence adjacency
        # over dense ids.
        self._sw_ms: List[float] = [0.0] * self._ntasks
        self._impl_clbs: List[Optional[List[int]]] = [None] * self._ntasks
        self._impl_ms: List[Optional[List[float]]] = [None] * self._ntasks
        self._pred_ids: List[List[int]] = [[] for _ in range(self._ntasks)]
        self._succ_ids: List[List[int]] = [[] for _ in range(self._ntasks)]
        tid = self._tid
        for i, t in enumerate(tasks):
            task = app.task(t)
            self._sw_ms[i] = task.sw_time_ms
            if task.hardware_capable:
                self._impl_clbs[i] = [impl.clbs for impl in task.implementations]
                self._impl_ms[i] = [impl.time_ms for impl in task.implementations]

        dep_srct: List[int] = []
        dep_dstt: List[int] = []
        dep_src: List[int] = []
        dep_dst: List[int] = []
        dep_transfer: List[float] = []
        dep_comm: List[int] = []
        deps_of_task: List[List[int]] = [[] for _ in range(self._ntasks)]
        for src, dst, kbytes in app.dependencies():
            j = len(dep_srct)
            s, d = tid[src], tid[dst]
            dep_srct.append(src)
            dep_dstt.append(dst)
            dep_src.append(s)
            dep_dst.append(d)
            dep_transfer.append(bus.transfer_time_ms(kbytes))
            dep_comm.append(self._interner.intern((COMM_NODE, src, dst)))
            deps_of_task[s].append(j)
            deps_of_task[d].append(j)
            self._pred_ids[d].append(s)
            self._succ_ids[s].append(d)
        self._dep_srct = dep_srct
        self._dep_dstt = dep_dstt
        self._dep_src = dep_src
        self._dep_dst = dep_dst
        self._dep_transfer = dep_transfer
        self._dep_comm = dep_comm
        self._deps_of_task = deps_of_task
        ndeps = len(dep_srct)
        self._ndeps = ndeps

        # Static dependency layer: dep j is permanently wired
        # ``src -> comm -> dst`` where comm is the dense id ``ntasks +
        # j`` (interning order guarantees contiguity).  The ``src ->
        # comm`` weight is the only mutable part; the ``comm -> dst``
        # edge is always 0, so task-side predecessors reduce to a plain
        # list of comm ids whose *finish* times are the candidates.
        # This structure — and therefore its indegrees and reachability
        # — never changes after construction.
        n = len(self._interner)
        assert all(dep_comm[j] == self._ntasks + j for j in range(ndeps))
        self._comm_w: List[float] = [0.0] * ndeps
        pred_comms: List[List[int]] = [[] for _ in range(n)]
        succ_static: List[List[int]] = [[] for _ in range(n)]
        indeg_static = [0] * n
        for j in range(ndeps):
            s, c, d = dep_src[j], dep_comm[j], dep_dst[j]
            pred_comms[d].append(c)
            succ_static[s].append(c)
            succ_static[c].append(d)
            indeg_static[c] += 1
            indeg_static[d] += 1
        self._pred_comms = pred_comms
        self._succ_static = succ_static
        self._indeg_static = indeg_static
        # Processor total orders as prev/next pointer arrays: a task sits
        # on at most one processor, so one array pair covers them all and
        # replacing a processor's chain is plain integer stores.
        self._proc_prev: List[int] = [-1] * n
        self._proc_next: List[int] = [-1] * n

        # Memos that survive mirror resets: context boundaries depend
        # only on the static precedence graph, and layout/order memos
        # are keyed by globally-unique revision stamps.
        self._ctx_memo: Dict[Tuple, Tuple[int, List[int], List[int]]] = {}
        self._rc_memo: Dict[int, Tuple] = {}
        self._proc_memo: Dict[int, List[int]] = {}

        # Dynamic (solution-dependent) state, reset to "never seen".
        self._dur: List[float] = [0.0] * n
        self._starts_buf: List[float] = [0.0] * n
        self._finish_buf: List[float] = [0.0] * n
        self._res_kind: Dict[str, Tuple] = {}
        self._invalidate()

    def _invalidate(self) -> None:
        """Forget all mirrored solution state (forces a full re-sync)."""
        n = len(self._interner)
        # Durations mirror solution state too: the re-sync recomputes
        # task and comm durations (every task diffs) and re-stamps
        # active config nodes, but a config node whose RC ends up empty
        # is only zeroed via _virtual_ids — which is being reset here —
        # so clear the whole array rather than leak a stale duration.
        for node_id in range(len(self._dur)):
            self._dur[node_id] = 0.0
        self._m_resource: List[Optional[str]] = [None] * self._ntasks
        self._m_impl: List[int] = [-1] * self._ntasks
        # After a reset the arrays mirror the empty assignment, so empty
        # dicts are the matching wholesale-comparison baseline.
        self._m_res_dict: Dict[int, str] = {}
        self._m_impl_dict: Dict[int, int] = {}
        self._m_res_names: List[str] = []
        self._m_rev: Dict[str, int] = {}
        self._rc_list: List[Tuple[str, ReconfigurableCircuit]] = []
        self._res_edges: Dict[str, List[Tuple[int, int, float]]] = {}
        self._virtual_ids: Dict[str, List[int]] = {}
        self._rc_stats: Dict[str, Tuple[int, float, float, int]] = {}
        self._hw_count = 0
        self._dep_mode: List[int] = [-1] * self._ndeps
        self._active_deps: List[int] = []
        self._active_dirty = True
        # Sequentialization layer: maintained edge by edge as resources
        # change.  ``pred_seq[v]`` holds ``(src, weight)`` pairs; the
        # combined indegrees are kept in step so Kahn never needs a
        # recount pass.
        self._pred_seq: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self._succ_seq: List[List[int]] = [[] for _ in range(n)]
        self._indeg_total: List[int] = list(self._indeg_static)
        for v in range(n):
            self._proc_prev[v] = -1
            self._proc_next[v] = -1
        self._proc_members: Dict[str, List[int]] = {}
        # Cached base topological orders as ``[order, position, valid]``
        # entries.  An entry stays valid until an *added* edge
        # contradicts its positions (checked in O(1) per added edge);
        # removals never invalidate.  The serialized order is derived
        # from the base order by splicing the active comm nodes into
        # chain order (Kahn is only the fallback), and is valid exactly
        # while its source base order and the chain permutation hold.
        self._orders0: List[List] = []
        self._cycle0: Optional[CycleError] = None
        self._order1: Optional[List[int]] = None
        self._order1_src: Optional[List[int]] = None
        self._pos1: List[int] = [0] * n
        self._dirty: List[bool] = [False] * n
        self._chain_perm: Optional[List[int]] = None
        self._chain_pred: List[int] = [-1] * n
        self._chain_next: List[int] = [-1] * n

    def _classify_resources(self, arch: Architecture) -> None:
        """(Re)build the resource kind table.  Entries are kept for
        resources that left the architecture: a removed resource's name
        can still appear as a task's *previous* assignment in the very
        diff that rehomes the task (move m3).

        Exact types get the array fast paths; *subclasses* of the
        built-in resources (which may override timing or edge emission)
        fall back to the polymorphic ``"?"`` path, whose third field
        records whether the resource hosts hardware tasks (RC/ASIC
        lineage) for the hardware-task counter."""
        for res in arch.resources():
            name = res.name
            if name not in self._res_kind or self._res_kind[name][1] is not res:
                kind = type(res)
                if kind is Processor:
                    self._res_kind[name] = ("p", res, res.speed_factor)
                elif kind is ReconfigurableCircuit:
                    self._res_kind[name] = ("rc", res)
                elif kind is Asic:
                    self._res_kind[name] = ("asic", res)
                else:
                    is_hw = isinstance(res, (ReconfigurableCircuit, Asic))
                    self._res_kind[name] = ("?", res, is_hw)

    # ------------------------------------------------------------------
    # delta synchronization
    # ------------------------------------------------------------------
    def _sync(self, solution: Solution) -> None:
        arch = solution.architecture
        if arch.bus is not self._bus:
            # Transfer times were precomputed against another bus; this
            # never happens in the optimizers (snapshots share the bus
            # object) but stay correct if a caller swaps it.
            self._build_skeleton(arch.bus)

        names = arch.resource_names()
        if names != self._m_res_names:
            self._classify_resources(arch)
            for name in set(self._m_res_names) - set(names):
                if name in self._proc_members:
                    self._set_proc_chain(name, [])
                    self._proc_members.pop(name, None)
                else:
                    self._set_res_edges(name, [])
                self._m_rev.pop(name, None)
                self._res_edges.pop(name, None)
                self._rc_stats.pop(name, None)
                for node_id in self._virtual_ids.pop(name, ()):
                    self._dur[node_id] = 0.0
            self._m_res_names = list(names)
            self._rc_list = [
                (r.name, r)
                for r in arch.resources()
                if isinstance(r, ReconfigurableCircuit)
            ]

        # Per-task assignment / implementation diff -> durations, deps
        # and the hardware-task count.  The wholesale dict comparisons
        # skip the scan entirely for order-only moves (m1 reorders).
        res_of = solution._resource_of
        impl_of = solution._impl_choice
        res_kind = self._res_kind
        if len(res_of) != self._ntasks:
            # Match the reference engine, which trips over the missing
            # assignment while realizing the graph; without this guard a
            # partially assigned solution would silently score with
            # zero durations for the unassigned tasks.
            for t in self._tasks:
                if t not in res_of:
                    raise MappingError(f"task {t} is not assigned")
        if res_of != self._m_res_dict or impl_of != self._m_impl_dict:
            # The symmetric item differences pick out exactly the tasks
            # a move touched, at C speed; the mirror dicts are patched
            # key by key instead of recopied.
            m_res_dict = self._m_res_dict
            m_impl_dict = self._m_impl_dict
            diff = {t for t, _ in res_of.items() ^ m_res_dict.items()}
            diff.update(t for t, _ in impl_of.items() ^ m_impl_dict.items())
            tid = self._tid
            m_res = self._m_resource
            m_impl = self._m_impl
            changed: List[int] = []
            for t in diff:
                r = res_of.get(t)
                if r is None:
                    m_res_dict.pop(t, None)
                else:
                    m_res_dict[t] = r
                raw = impl_of.get(t)
                if raw is None:
                    m_impl_dict.pop(t, None)
                    c = 0
                else:
                    m_impl_dict[t] = raw
                    c = raw
                i = tid[t]
                old_r = m_res[i]
                if r == old_r and c == m_impl[i]:
                    continue
                if r != old_r:
                    if old_r is not None and _kind_is_hw(res_kind[old_r]):
                        self._hw_count -= 1
                    if r is not None and _kind_is_hw(res_kind[r]):
                        self._hw_count += 1
                m_res[i] = r
                m_impl[i] = c
                changed.append(i)
            if changed:
                dur = self._dur
                impl_ms = self._impl_ms
                sw_ms = self._sw_ms
                for i in changed:
                    kind = res_kind[m_res[i]]
                    if kind[0] == "p":
                        dur[i] = sw_ms[i] / kind[2]
                    elif kind[0] == "?" or impl_ms[i] is None:
                        dur[i] = kind[1].execution_time_ms(solution, self._tasks[i])
                    else:
                        dur[i] = impl_ms[i][m_impl[i]]
                for i in changed:
                    for j in self._deps_of_task[i]:
                        self._refresh_dep(j)

        # Per-resource sequentialization edges, gated by the solution's
        # revision stamps: an untouched resource is skipped outright, and
        # a restored stamp (move undo) guarantees restored content.
        rev_of = solution._res_rev
        m_rev = self._m_rev
        pending: List[Tuple[str, str, object]] = []
        for name in names:
            rev = rev_of.get(name, 0)
            if m_rev.get(name) == rev:
                continue
            kind = res_kind[name]
            tag = kind[0]
            if tag == "p":
                memo = self._proc_memo
                members = memo.get(rev)
                if members is None:
                    tid = self._tid
                    members = [tid[t] for t in solution._sw_orders[name]]
                    if len(memo) > 16384:
                        memo.clear()
                    memo[rev] = members
                pending.append(("p", name, members))
            elif tag == "rc":
                triples = self._refresh_rc(
                    name, kind[1], solution._contexts[name], rev, impl_of
                )
                pending.append(("e", name, triples))
            elif tag != "asic":
                # Unknown resource type: conservatively refresh on every
                # call through the resource's own polymorphic methods
                # (no revision skip — overridden methods may depend on
                # state the stamps do not cover).
                triples = self._refresh_generic(name, kind[1], solution)
                pending.append(("e", name, triples))
                continue
            m_rev[name] = rev
        if len(pending) == 1:
            # Common case (one or two moves touching one resource's
            # order): apply in place with the delta fast paths.
            tag, name, payload = pending[0]
            if tag == "p":
                self._set_proc_chain(name, payload)
            else:
                self._set_res_edges(name, payload)
        elif pending:
            # An edge pair can migrate between two resources refreshed
            # in the same diff; unlink every stale chain/edge list first
            # so no link is clobbered by a later unlink.
            for tag, name, _payload in pending:
                if tag == "p":
                    self._unlink_proc_chain(name)
                else:
                    self._unlink_res_edges(name)
            for tag, name, payload in pending:
                if tag == "p":
                    self._link_proc_chain(name, payload)
                else:
                    self._link_res_edges(name, payload)

    def _refresh_dep(self, j: int) -> None:
        """Re-derive a dependency's realization from the mirrored
        assignment.  Purely a weight/duration patch: the dependency is
        permanently wired through its comm node, so flipping between
        active transfer (duration on the comm node) and pass-through
        (weight on the ``src -> comm`` edge) never changes structure."""
        crossing = self._m_resource[self._dep_src[j]] != self._m_resource[self._dep_dst[j]]
        transfer = self._dep_transfer[j]
        comm_id = self._dep_comm[j]
        if crossing and transfer > 0.0 and self._ordered:
            mode = 1
            self._comm_w[j] = 0.0
            self._dur[comm_id] = transfer
        else:
            mode = 0
            self._comm_w[j] = transfer if crossing else 0.0
            self._dur[comm_id] = 0.0
        if mode != self._dep_mode[j]:
            self._dep_mode[j] = mode
            self._active_dirty = True

    def _refresh_rc(
        self,
        name: str,
        rc: ReconfigurableCircuit,
        contexts: List[List[int]],
        rev: int,
        impl_of: Dict[int, int],
    ) -> List[Tuple[int, int, float]]:
        """Native regeneration of a DRLC's search-graph contribution:
        context sequentialization edges ``Ehw``, the virtual
        configuration node, and the cached reconfiguration statistics.
        Mirrors ``ReconfigurableCircuit.sequentialization_edges`` /
        ``virtual_nodes`` exactly, over interned arrays.  Realized
        layouts are memoized by the resource's revision stamp — a stamp
        is handed out once and restored only together with its content,
        so it keys the layout exactly (and annealing, which undoes every
        rejected move, revisits stamps constantly)."""
        if not contexts:
            for node_id in self._virtual_ids.pop(name, ()):
                self._dur[node_id] = 0.0
            self._rc_stats[name] = (0, 0.0, 0.0, 0)
            return []
        tid = self._tid
        m_impl = self._m_impl
        layouts = self._rc_memo
        entry = layouts.get(rev)
        config_id = self._interner.intern((CONFIG_NODE, name))
        self._grow_nodes()
        if entry is None:
            impl_clbs = self._impl_clbs
            ctx_clbs: List[int] = []
            initials: List[List[int]] = []
            terminals: List[List[int]] = []
            memo = self._ctx_memo
            if len(memo) > 16384:
                memo.clear()
            for ctx in contexts:
                # One context realizes identically whenever its member
                # tasks and their implementation choices recur — and
                # individual contexts recur far more often than whole
                # layouts, so this memo hits even though the annealing
                # walk rarely revisits a complete layout.
                key = (tuple(ctx), tuple(impl_of.get(t, 0) for t in ctx))
                cached = memo.get(key)
                if cached is None:
                    members = [tid[t] for t in ctx]
                    inside = set(members)
                    pred_ids = self._pred_ids
                    succ_ids = self._succ_ids
                    cached = (
                        sum(impl_clbs[i][m_impl[i]] for i in members),
                        [i for i in members
                         if not any(p in inside for p in pred_ids[i])],
                        [i for i in members
                         if not any(s in inside for s in succ_ids[i])],
                    )
                    memo[key] = cached
                ctx_clbs.append(cached[0])
                initials.append(cached[1])
                terminals.append(cached[2])
            triples: List[Tuple[int, int, float]] = [
                (config_id, i, 0.0) for i in initials[0]
            ]
            reconfig = rc.reconfiguration_time_ms
            for k in range(len(contexts) - 1):
                weight = reconfig(ctx_clbs[k + 1])
                for t in terminals[k]:
                    for i in initials[k + 1]:
                        triples.append((t, i, weight))
            initial_ms = reconfig(ctx_clbs[0])
            stats = (
                len(contexts),
                initial_ms,
                sum(reconfig(c) for c in ctx_clbs[1:]),
                sum(ctx_clbs),
            )
            if len(layouts) > 16384:
                layouts.clear()
            entry = (triples, initial_ms, stats)
            layouts[rev] = entry
        triples, initial_ms, stats = entry
        self._dur[config_id] = initial_ms
        self._virtual_ids[name] = [config_id]
        self._rc_stats[name] = stats
        return triples

    def _refresh_generic(
        self, name: str, res: Resource, solution: Solution
    ) -> List[Tuple[int, int, float]]:
        """Fallback for unknown resource types: delegate to the
        resource's polymorphic search-graph contribution."""
        intern = self._interner.intern
        triples = [
            (intern(a), intern(b), w)
            for a, b, w in res.sequentialization_edges(solution)
        ]
        virtual = getattr(res, "virtual_nodes", None)
        entries = virtual(solution) if virtual is not None else []
        new_ids = [intern(key) for key, _duration in entries]
        self._grow_nodes()
        for node_id in self._virtual_ids.get(name, ()):
            self._dur[node_id] = 0.0
        for (_key, duration), node_id in zip(entries, new_ids):
            self._dur[node_id] = duration
        self._virtual_ids[name] = new_ids
        return triples

    def _set_proc_chain(self, name: str, members: List[int]) -> None:
        """Replace a processor's total-order chain (``Esw``) in place —
        safe when this is the only resource refreshed in the sync."""
        if self._proc_members.get(name) == members:
            return
        self._unlink_proc_chain(name)
        self._link_proc_chain(name, members)

    def _unlink_proc_chain(self, name: str) -> None:
        old = self._proc_members.get(name)
        if not old:
            self._proc_members[name] = []
            return
        proc_prev = self._proc_prev
        proc_next = self._proc_next
        indeg = self._indeg_total
        prev = old[0]
        for v in old[1:]:
            indeg[v] -= 1
            proc_prev[v] = -1
            proc_next[prev] = -1
            prev = v
        # A removal may have broken the cycle behind a cached verdict;
        # retry Kahn on the next evaluation.
        self._cycle0 = None
        self._proc_members[name] = []

    def _link_proc_chain(self, name: str, members: List[int]) -> None:
        """Store a processor chain's prev/next pointers, keep indegrees
        in step, and invalidate cached orders that an added pair
        contradicts.  Pure integer stores — no list surgery."""
        if members:
            proc_prev = self._proc_prev
            proc_next = self._proc_next
            indeg = self._indeg_total
            orders0 = self._orders0
            self._order1 = None
            prev = members[0]
            for v in members[1:]:
                proc_next[prev] = v
                proc_prev[v] = prev
                indeg[v] += 1
                for entry in orders0:
                    if entry[2] and entry[1][prev] >= entry[1][v]:
                        entry[2] = False
                prev = v
        self._proc_members[name] = members

    def _unlink_res_edges(self, name: str) -> None:
        """Remove a resource's sequentialization edges from the live seq
        layer (phase 1 of a multi-resource refresh)."""
        old = self._res_edges.get(name)
        if not old:
            self._res_edges[name] = []
            return
        pred_seq = self._pred_seq
        succ_seq = self._succ_seq
        indeg = self._indeg_total
        for a, b, _w in old:
            succ_seq[a].remove(b)
            plist = pred_seq[b]
            for idx in range(len(plist)):
                if plist[idx][0] == a:
                    del plist[idx]
                    break
            indeg[b] -= 1
        self._cycle0 = None
        self._res_edges[name] = []

    def _link_res_edges(
        self, name: str, triples: List[Tuple[int, int, float]]
    ) -> None:
        """Insert a resource's sequentialization edges (phase 2 of a
        multi-resource refresh)."""
        if triples:
            pred_seq = self._pred_seq
            succ_seq = self._succ_seq
            indeg = self._indeg_total
            orders0 = self._orders0
            self._order1 = None
            for a, b, w in triples:
                succ_seq[a].append(b)
                pred_seq[b].append((a, w))
                indeg[b] += 1
                for entry in orders0:
                    if entry[2] and entry[1][a] >= entry[1][b]:
                        entry[2] = False
        self._res_edges[name] = triples

    def _set_res_edges(
        self, name: str, triples: List[Tuple[int, int, float]]
    ) -> None:
        """Replace a resource's sequentialization edges in the live seq
        layer, in place — safe when this is the only resource refreshed
        in the sync.  Old edges are unlinked, new ones linked, indegrees
        kept in step.  Cached topological orders survive unless an added
        edge contradicts them (position check); removals never
        invalidate.  Seq edge pairs are unique within one resource — it
        only ever chains its own tasks and its own config node — so
        unlinking by (src, dst) is unambiguous."""
        old = self._res_edges.get(name)
        if old == triples:
            return
        # Unlink/link only the differing middle: a reorder or reassign
        # perturbs a contiguous region of a resource's chain, so the
        # common prefix and suffix (compared as (src, dst, weight)
        # triples) can stay linked untouched.
        lo = 0
        if old:
            n_old, n_new = len(old), len(triples)
            hi = min(n_old, n_new)
            while lo < hi and old[lo] == triples[lo]:
                lo += 1
            tail = 0
            while (
                tail < hi - lo
                and old[n_old - 1 - tail] == triples[n_new - 1 - tail]
            ):
                tail += 1
            removals = old[lo:n_old - tail]
            additions = triples[lo:n_new - tail]
        else:
            removals = ()
            additions = triples
        structural = len(removals) != len(additions) or any(
            r[0] != a[0] or r[1] != a[1] for r, a in zip(removals, additions)
        )
        pred_seq = self._pred_seq
        succ_seq = self._succ_seq
        indeg = self._indeg_total
        if removals:
            for a, b, _w in removals:
                succ_seq[a].remove(b)
                plist = pred_seq[b]
                for idx in range(len(plist)):
                    if plist[idx][0] == a:
                        del plist[idx]
                        break
                indeg[b] -= 1
            if structural:
                # A removal may have broken the cycle behind a cached
                # verdict; retry Kahn on the next evaluation.
                self._cycle0 = None
        if structural:
            orders0 = self._orders0
            # The serialized order's task placement mirrors a specific
            # base order; any structural seq change may reorder tasks.
            self._order1 = None
            for a, b, w in additions:
                succ_seq[a].append(b)
                pred_seq[b].append((a, w))
                indeg[b] += 1
                for entry in orders0:
                    if entry[2] and entry[1][a] >= entry[1][b]:
                        entry[2] = False
        else:
            # Weight-only change: same pairs back with new weights, no
            # order or cycle cache is affected.
            for a, b, w in additions:
                succ_seq[a].append(b)
                pred_seq[b].append((a, w))
                indeg[b] += 1
        self._res_edges[name] = triples

    def _grow_nodes(self) -> None:
        n = len(self._interner)
        if len(self._dur) < n:
            while len(self._dur) < n:
                self._dur.append(0.0)
                self._starts_buf.append(0.0)
                self._finish_buf.append(0.0)
                self._pred_comms.append([])
                self._succ_static.append([])
                self._indeg_static.append(0)
                self._pred_seq.append([])
                self._succ_seq.append([])
                self._indeg_total.append(0)
                self._proc_prev.append(-1)
                self._proc_next.append(-1)
                self._pos1.append(0)
                self._dirty.append(False)
                self._chain_pred.append(-1)
                self._chain_next.append(-1)
            # Cached orders do not contain the new nodes yet.
            self._orders0.clear()
            self._order1 = None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _compute(
        self, solution: Solution
    ) -> Tuple[float, bool, float, Optional[CycleError]]:
        """Returns ``(makespan, feasible, comm_ms, cycle_error)``."""
        self._sync(solution)
        if self._active_dirty:
            dep_mode = self._dep_mode
            self._active_deps = [
                j for j in range(self._ndeps) if dep_mode[j] == 1
            ]
            self._active_dirty = False
        n = len(self._interner)
        dur = self._dur
        dep_comm = self._dep_comm

        entry0: Optional[List] = None
        for entry in self._orders0:
            if entry[2]:
                entry0 = entry
                break
        if entry0 is None and self._cycle0 is None:
            try:
                order = self._kahn_base(n)
            except CycleError as exc:
                self._cycle0 = exc
            else:
                pos = [0] * n
                for idx, v in enumerate(order):
                    pos[v] = idx
                entry0 = [order, pos, True]
                self._orders0.insert(0, entry0)
                del self._orders0[2:]
        if entry0 is None:
            comm_ms = sum(dur[dep_comm[j]] for j in self._active_deps)
            return INFEASIBLE_MS, False, comm_ms, self._cycle0
        order0 = entry0[0]

        finish = self._finish_buf
        starts = self._dp(order0)
        active = self._active_deps
        if not active:
            return max(finish), True, 0.0, None

        # Serialize bus transactions: ASAP order in the unserialized
        # graph, ties broken by (source task, destination task) — the
        # exact deterministic policy of SearchGraphBuilder._serialize_bus.
        srct = self._dep_srct
        dstt = self._dep_dstt
        ntasks = self._ntasks
        keyed = sorted(
            (starts[ntasks + j], srct[j], dstt[j], j) for j in active
        )
        perm = [key[3] for key in keyed]
        chain_pred = self._chain_pred
        chain_next = self._chain_next
        if perm != self._chain_perm:
            if self._chain_perm:
                for j in self._chain_perm:
                    comm = dep_comm[j]
                    chain_pred[comm] = -1
                    chain_next[comm] = -1
            prev = dep_comm[perm[0]]
            for j in perm[1:]:
                comm = dep_comm[j]
                chain_pred[comm] = prev
                chain_next[prev] = comm
                prev = comm
            self._chain_perm = perm
            self._order1 = None
        order1 = self._order1
        if order1 is None or self._order1_src is not order0:
            pos1 = self._pos1
            order1 = self._splice_order1(entry0, perm)
            if order1 is not None:
                pos1[:] = entry0[1]
                slots = sorted(entry0[1][dep_comm[j]] for j in perm)
                for slot, j in zip(slots, perm):
                    pos1[dep_comm[j]] = slot
            else:
                indeg1 = list(self._indeg_total)
                for j in perm[1:]:
                    indeg1[dep_comm[j]] += 1
                try:
                    order1 = self._kahn_chained(n, indeg1, chain_next)
                except CycleError as exc:
                    # Cannot happen for positive transfer durations (see
                    # SearchGraphBuilder._serialize_bus) but mirror the
                    # full engine: a cyclic serialized realization is
                    # infeasible.
                    self._order1 = None
                    comm_ms = sum(dur[dep_comm[j]] for j in perm)
                    return INFEASIBLE_MS, False, comm_ms, exc
                for idx, v in enumerate(order1):
                    pos1[v] = idx
            self._order1 = order1
            self._order1_src = order0
        # The chain only *adds* constraints on top of the base DP, so the
        # serialized start times are an increase-only delta: seed with
        # the comm nodes whose chain predecessor actually binds, then
        # propagate in serialized-topological order.  When no chain edge
        # binds, the base DP already is the serialized answer.
        self._dp_chain_delta(perm)
        comm_ms = sum(dur[dep_comm[j]] for j in perm)
        return max(finish), True, comm_ms, None

    def _dp(self, order: List[int]) -> List[float]:
        """ASAP/longest-path DP over the *unserialized* graph,
        specialized to the engine's id layout: comm nodes (ids
        ``[ntasks, ntasks + ndeps)``) have exactly one predecessor;
        tasks and config nodes take the max over comm finish times (the
        ``comm -> dst`` edges all weigh 0), the processor-chain
        predecessor, and seq-layer ``(src, weight)`` pairs.  Produces
        floats bit-identical to the reference dict DP: every candidate
        is ``(start[u] + dur[u]) + w`` in the same association order.
        Fills ``self._starts_buf``/``self._finish_buf``."""
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        dur = self._dur
        starts = self._starts_buf
        finish = self._finish_buf
        for v in order:
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0  # mirror the reference DP's 0.0 floor
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            starts[v] = best
            finish[v] = best + dur[v]
        return starts

    def _dp_chain_delta(self, perm: List[int]) -> None:
        """Upgrade the base DP in ``starts``/``finish`` to the serialized
        DP by increase-only propagation.  Chain edges can only delay
        starts, so nodes unaffected by a binding chain edge keep their
        base values — which are exactly the serialized values (identical
        candidate sets).  Processes the affected cone in serialized
        topological order via a position-keyed heap."""
        dep_comm = self._dep_comm
        starts = self._starts_buf
        finish = self._finish_buf
        chain_pred = self._chain_pred
        pos1 = self._pos1
        dirty = self._dirty
        heap: List[Tuple[int, int]] = []
        push = heapq.heappush
        prev = dep_comm[perm[0]]
        for j in perm[1:]:
            c = dep_comm[j]
            if finish[prev] > starts[c] and not dirty[c]:
                dirty[c] = True
                push(heap, (pos1[c], c))
            prev = c
        if not heap:
            return
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        chain_next = self._chain_next
        dur = self._dur
        pop = heapq.heappop
        while heap:
            _pos, v = pop(heap)
            if not dirty[v]:
                continue
            dirty[v] = False
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0
                u = chain_pred[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            if best != starts[v]:
                starts[v] = best
                finish[v] = best + dur[v]
                for nxt in succ_static[v]:
                    if not dirty[nxt]:
                        dirty[nxt] = True
                        push(heap, (pos1[nxt], nxt))
                for nxt in succ_seq[v]:
                    if not dirty[nxt]:
                        dirty[nxt] = True
                        push(heap, (pos1[nxt], nxt))
                nxt = proc_next[v]
                if nxt >= 0 and not dirty[nxt]:
                    dirty[nxt] = True
                    push(heap, (pos1[nxt], nxt))
                nxt = chain_next[v]
                if nxt >= 0 and not dirty[nxt]:
                    dirty[nxt] = True
                    push(heap, (pos1[nxt], nxt))

    def _splice_order1(
        self, entry0: List, perm: List[int]
    ) -> Optional[List[int]]:
        """Derive the serialized order from the base order by permuting
        the active comm nodes — among the positions they already occupy
        — into chain order.  All other nodes keep their relative base
        order (valid for the base edges); the chain edges are satisfied
        because ascending positions receive the chain sequence.  The
        only conditions to verify are each comm's own task neighbors:
        ``pos(src) < q < pos(dst)`` for its landing position ``q``.
        Returns None when a comm lands outside its window (fall back to
        Kahn)."""
        order0, pos0, _valid = entry0
        dep_comm = self._dep_comm
        dep_src = self._dep_src
        dep_dst = self._dep_dst
        comms = [dep_comm[j] for j in perm]
        slots = sorted(pos0[c] for c in comms)
        for slot, j in zip(slots, perm):
            if pos0[dep_src[j]] >= slot or pos0[dep_dst[j]] <= slot:
                return None
        order1 = list(order0)
        for slot, c in zip(slots, comms):
            order1[slot] = c
        return order1

    def _kahn_base(self, n: int) -> List[int]:
        """FIFO Kahn over the static layer, the seq layer and the
        processor chains; raises :class:`CycleError`."""
        return kahn_order_indices(
            n, self._indeg_total, self._succ_static,
            self._interner.keys(), self._succ_seq, self._proc_next,
        )

    def _kahn_chained(
        self, n: int, indeg: List[int], chain_next: List[int]
    ) -> List[int]:
        """Kahn over all edge layers plus the bus chain overlay."""
        order = [v for v in range(n) if indeg[v] == 0]
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for nxt in succ_static[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
            for nxt in succ_seq[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
            nxt = proc_next[node]
            if nxt >= 0:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
            nxt = chain_next[node]
            if nxt >= 0:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
        if len(order) != n:
            keys = self._interner.keys()
            raise CycleError(
                "serialized realization contains a cycle",
                cycle=[keys[v] for v in range(n) if indeg[v] > 0],
            )
        return order

    def _guarded_compute(
        self, solution: Solution
    ) -> Tuple[float, bool, float, Optional[CycleError]]:
        try:
            return self._compute(solution)
        except CycleError:
            raise
        except Exception:
            # The mirror may be half-updated (e.g. an unassigned task
            # surfaced mid-diff); drop it so the next call re-syncs from
            # scratch instead of trusting stale state.
            self._invalidate()
            raise

    # ------------------------------------------------------------------
    def makespan_ms(self, solution: Solution) -> float:
        self.evaluations += 1
        makespan, _feasible, _comm, _exc = self._guarded_compute(solution)
        return makespan

    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        self.evaluations += 1
        makespan, feasible, comm_ms, exc = self._guarded_compute(solution)
        if not feasible and strict and exc is not None:
            raise exc
        # Fig. 3 decomposition from the cached per-RC statistics (the
        # full engine recomputes these sums from the solution; the values
        # are identical, accumulated in the same resource order).  RC
        # subclasses on the generic path have no cached stats and are
        # recomputed the full engine's way.
        initial = 0.0
        dynamic = 0.0
        clbs = 0
        num_contexts = 0
        rc_stats = self._rc_stats
        for name, rc in self._rc_list:
            stats = rc_stats.get(name)
            if stats is not None:
                num_contexts += stats[0]
                initial += stats[1]
                dynamic += stats[2]
                clbs += stats[3]
            else:
                initial += rc.initial_reconfiguration_ms(solution)
                dynamic += rc.dynamic_reconfiguration_ms(solution)
                contexts = solution.contexts(name)
                num_contexts += len(contexts)
                clbs += sum(
                    solution.context_clbs(name, k)
                    for k in range(len(contexts))
                )
        hw = self._hw_count
        return Evaluation(
            makespan_ms=makespan,
            feasible=feasible,
            num_contexts=num_contexts,
            hw_tasks=hw,
            sw_tasks=self._ntasks - hw,
            initial_reconfig_ms=initial,
            dynamic_reconfig_ms=dynamic,
            comm_ms=comm_ms,
            clbs_used=clbs,
        )


def make_engine(
    name: str,
    application: Application,
    architecture: Architecture,
    bus_policy: str = "ordered",
) -> EvaluationEngine:
    """Instantiate an evaluation engine by name (``"full"`` or
    ``"incremental"``); raises :class:`ConfigurationError` otherwise."""
    if name == "full":
        return FullRebuildEngine(application, architecture, bus_policy)
    if name == "incremental":
        return IncrementalEngine(application, architecture, bus_policy)
    raise ConfigurationError(
        f"engine must be one of {ENGINES}, got {name!r}"
    )
