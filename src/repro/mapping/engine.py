"""Pluggable evaluation engines (the annealer's hot path).

Scoring a candidate solution — longest path of the realized search graph
(paper section 4.4) — is the single operation every optimizer in this
library performs thousands of times per run.  This module puts that
operation behind one interface with three implementations:

* :class:`FullRebuildEngine` — the reference semantics, extracted from
  the original ``Evaluator``/``SearchGraphBuilder`` pipeline: rebuild
  the whole :class:`~repro.graph.dag.Dag` from scratch for every
  candidate and run the dict-based longest-path DP.
* :class:`IncrementalEngine` — an array-backed fast path.  All search
  graph nodes (tasks, communication nodes, virtual configuration nodes)
  are interned to dense integer ids once per problem instance
  (:class:`~repro.graph.dag.NodeInterner`); the solution-independent
  precedence skeleton (dependency endpoints, transfer times, potential
  communication nodes, CLB tables) is cached; and after each move only
  the solution-dependent parts are delta-patched — task durations, the
  crossing state of each dependency, and the sequentialization edges of
  the (typically one or two) resources a move actually touched.  The
  ASAP/longest-path DP then runs over flat lists (a layout-specialized
  variant of :func:`~repro.graph.longest_path.earliest_starts_indexed`)
  instead of dict-of-dicts keyed by hashable tuples, and the
  topological order is cached and invalidated only on structural
  change.
* :class:`ArrayEngine` — the compiled struct-of-arrays engine.  The
  problem instance is flattened once per search by the
  :mod:`repro.mapping.compiled` pass; the incremental engine's
  delta-sync keeps the dense mirror current, and on top of it the base
  longest-path DP becomes *persistent*: instead of recomputing all
  ``V + E`` candidates per candidate solution, only the dirty cone
  reachable from what a move actually changed is re-relaxed (and the
  Kahn re-sort — the incremental engine's single largest cost on big
  instances — disappears from the steady state entirely).  The engine
  also implements :meth:`EvaluationEngine.evaluate_batch` natively:
  K candidate moves are captured as dense lanes and scored by the
  NumPy frontier kernels of :mod:`repro.graph.kernels` in two fused
  calls.

All engines produce **bit-identical** makespans: they evaluate the same
graph with the same float operations over the same candidate sets, and
serialize shared-bus transactions with the same deterministic ASAP sort.
``tests/mapping/test_engine_parity.py`` replays hundreds of random move
sequences pairwise across all three engines to enforce this.

Select an engine through ``Evaluator(..., engine="array")``, the
``DesignSpaceExplorer(engine=...)`` knob, or the CLI ``--engine`` flag;
``benchmarks/bench_engine.py`` measures the throughput gap.
"""

from __future__ import annotations

import heapq
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import CONFIG_NODE, ReconfigurableCircuit
from repro.arch.resource import Resource
from repro.errors import (
    ConfigurationError,
    CycleError,
    InfeasibleMoveError,
    MappingError,
)
from repro.graph.longest_path import kahn_order_indices
from repro.mapping.compiled import compile_instance, require_numpy
from repro.mapping.search_graph import SearchGraph, SearchGraphBuilder
from repro.mapping.solution import Solution
from repro.model.application import Application

#: Cost of infeasible (cyclic) realizations.
INFEASIBLE_MS = math.inf

#: Names accepted by :func:`make_engine` / ``Evaluator(engine=...)``.
ENGINES = ("full", "incremental", "array")

def _kind_is_hw(kind: Tuple) -> bool:
    """Does a classified resource host *hardware* tasks (the ones
    ``Solution.hardware_tasks`` counts)?"""
    tag = kind[0]
    return tag == "rc" or tag == "asic" or (tag == "?" and kind[2])


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate solution."""

    makespan_ms: float
    feasible: bool
    num_contexts: int
    hw_tasks: int
    sw_tasks: int
    initial_reconfig_ms: float
    dynamic_reconfig_ms: float
    comm_ms: float
    clbs_used: int

    @property
    def reconfig_ms(self) -> float:
        """Total reconfiguration time (initial + dynamic), Fig. 3's sum."""
        return self.initial_reconfig_ms + self.dynamic_reconfig_ms

    def meets(self, deadline_ms: float) -> bool:
        return self.feasible and self.makespan_ms <= deadline_ms


class EvaluationEngine(ABC):
    """Realizes and scores candidate solutions of one problem instance.

    An engine is constructed once per ``(application, architecture,
    bus_policy)`` and then called with candidate
    :class:`~repro.mapping.solution.Solution` objects; it owns whatever
    caches it needs across calls.  All optimizers (annealer, hill
    climber, tabu, GA) drive their move-evaluate-undo loops through this
    interface, usually via the :class:`~repro.mapping.evaluator.Evaluator`
    facade.
    """

    #: Engine name as accepted by :func:`make_engine`.
    name: str = "abstract"

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
    ) -> None:
        self.application = application
        self.architecture = architecture
        #: Reference builder: realizes solutions as explicit
        #: :class:`SearchGraph` objects (schedule extraction, debugging)
        #: and validates ``bus_policy``.
        self.builder = SearchGraphBuilder(application, architecture, bus_policy)
        self.bus_policy = bus_policy
        #: Number of evaluations performed (exposed for benchmarks).
        self.evaluations = 0

    # ------------------------------------------------------------------
    def telemetry_counters(self) -> Dict[str, int]:
        """Internal counters exposed to the telemetry layer.

        Counters are plain integer attributes incremented unconditionally
        on the hot paths (cheap, deterministic); recorders sample them
        once at run end, so disabled telemetry costs nothing here.
        Subclasses extend the dict with their engine-specific internals.
        """
        return {"evaluations": self.evaluations}

    # ------------------------------------------------------------------
    def realize(self, solution: Solution) -> SearchGraph:
        """Build the search graph without computing its longest path."""
        return self.builder.build(solution)

    @abstractmethod
    def makespan_ms(self, solution: Solution) -> float:
        """Longest path only (the optimizers' hot path); infeasible
        (cyclic) realizations return :data:`INFEASIBLE_MS`."""

    @abstractmethod
    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        """Score ``solution``; cyclic realizations yield an infeasible
        evaluation (``makespan = inf``) unless ``strict`` re-raises."""

    def evaluate_batch(
        self,
        solution: Solution,
        moves: Sequence,
        cost_function=None,
    ) -> List[Optional[Tuple[Evaluation, Optional[float]]]]:
        """Score K candidate moves against ``solution`` in one call.

        Each move is applied, scored, and undone; ``solution`` is left
        exactly as it came in.  The k-th result is ``None`` when the
        move's application raised :class:`InfeasibleMoveError`, else an
        ``(evaluation, cost)`` pair — ``cost`` is
        ``cost_function(candidate_solution, evaluation)`` computed while
        the move is applied (``None`` when no cost function is given).

        This reference implementation is a plain loop; engines with a
        vectorized path (:class:`ArrayEngine`) override it.  Results are
        bit-identical across engines and across batch compositions: each
        candidate is scored independently against the same base state.
        """
        results: List[Optional[Tuple[Evaluation, Optional[float]]]] = []
        for move in moves:
            try:
                move.apply(solution)
            except InfeasibleMoveError:
                results.append(None)
                continue
            try:
                evaluation = self.evaluate(solution)
                cost = (
                    cost_function(solution, evaluation)
                    if cost_function is not None
                    else None
                )
                results.append((evaluation, cost))
            finally:
                move.undo(solution)
        return results

    # ------------------------------------------------------------------
    # transactional single-move evaluation (the population hot path)
    # ------------------------------------------------------------------
    def propose_move(
        self,
        solution: Solution,
        move,
        cost_function=None,
    ) -> Optional[Tuple[Evaluation, Optional[float]]]:
        """Apply ``move``, score the candidate, and leave it **applied**.

        The persistent-delta counterpart of one ``evaluate_batch`` slot:
        the move is applied, the engine delta-syncs to the candidate and
        scores it, and control returns with the move still in force.
        The caller must finish the transaction with exactly one of
        :meth:`accept_move` (keep the candidate — the engine state is
        already synced, no undo/re-apply/re-diff anywhere) or
        :meth:`reject_move` (undo the move; the engine's next delta-sync
        absorbs the reverse patch in O(delta)).

        Returns ``None`` when the move's application raises
        :class:`InfeasibleMoveError` — the move was never applied and
        there is no transaction to resolve.  ``cost`` is computed while
        the move is applied, exactly like the reference batch loop.
        Results are bit-identical to ``evaluate_batch([move])`` followed
        by a re-apply: moves replay their cached decisions, and every
        engine's evaluation is a pure function of the candidate state.
        """
        try:
            move.apply(solution)
        except InfeasibleMoveError:
            return None
        try:
            evaluation = self.evaluate(solution)
            cost = (
                cost_function(solution, evaluation)
                if cost_function is not None
                else None
            )
        except Exception:
            move.undo(solution)
            raise
        return (evaluation, cost)

    def accept_move(self, solution: Solution, move) -> None:
        """Commit the transaction opened by :meth:`propose_move`: the
        candidate becomes the current state and the engine keeps its
        already-synced mirror (commit-on-accept) — no undo, no re-apply,
        no second delta-diff anywhere."""

    def reject_move(self, solution: Solution, move) -> None:
        """Abort the transaction opened by :meth:`propose_move`: undo
        the move on the solution.  The stateful engines deliberately do
        **not** restore their mirrors eagerly — the next delta-sync
        re-diffs the undone solution against the mirror in O(delta),
        exactly the flow the sequential explorer drives them through.
        (An eager snapshot/replay reverse patch was measured *slower*
        than the lazy re-diff on the paper corpus: the snapshot is paid
        on every proposal while the re-diff is only paid on rejection,
        and the re-diff itself is the same O(delta) pair-trimmed layer
        replay the sync already performs.)"""
        move.undo(solution)


class FullRebuildEngine(EvaluationEngine):
    """Reference engine: rebuild the search graph for every candidate.

    This is the original ``Evaluator`` behavior verbatim — every call
    constructs a fresh :class:`~repro.graph.dag.Dag`, reruns Kahn's sort
    and the dict-based DP.  It is the semantic baseline the incremental
    engine is checked against.
    """

    name = "full"

    def makespan_ms(self, solution: Solution) -> float:
        self.evaluations += 1
        graph = self.builder.build(solution)
        try:
            return graph.makespan_ms()
        except CycleError:
            return INFEASIBLE_MS

    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        self.evaluations += 1
        graph = self.builder.build(solution)
        try:
            makespan = graph.makespan_ms()
            feasible = True
        except CycleError:
            if strict:
                raise
            makespan = INFEASIBLE_MS
            feasible = False

        initial = 0.0
        dynamic = 0.0
        clbs = 0
        num_contexts = 0
        for rc in solution.architecture.reconfigurable_circuits():
            initial += rc.initial_reconfiguration_ms(solution)
            dynamic += rc.dynamic_reconfiguration_ms(solution)
            contexts = solution.contexts(rc.name)
            num_contexts += len(contexts)
            clbs += sum(
                solution.context_clbs(rc.name, k) for k in range(len(contexts))
            )
        hw = len(solution.hardware_tasks())
        return Evaluation(
            makespan_ms=makespan,
            feasible=feasible,
            num_contexts=num_contexts,
            hw_tasks=hw,
            sw_tasks=len(self.application.task_indices()) - hw,
            initial_reconfig_ms=initial,
            dynamic_reconfig_ms=dynamic,
            comm_ms=graph.total_comm_ms(),
            clbs_used=clbs,
        )


class IncrementalEngine(EvaluationEngine):
    """Array-backed engine with cached skeleton and delta-patching.

    The engine mirrors the last-seen solution state (per-task assignment
    and implementation choice, per-resource orders) and on each call
    diffs the incoming solution against that mirror — O(N) C-speed list
    comparisons — to patch only what a move actually changed.  Rejected
    moves need no special rollback support: after ``undo`` the next diff
    simply patches the state back.

    The search graph is kept in two edge layers:

    * a **static dependency layer**, built once: every application
      dependency is permanently wired ``src -> comm -> dst`` through its
      interned communication node.  When the transfer is active (edge
      crosses resources under the ``"ordered"`` policy), the transfer
      time is the comm node's duration; when inactive, it is the weight
      of the ``src -> comm`` edge (``0`` for same-resource edges) and
      the comm node's duration is zero.  Both routings produce the same
      float candidates as the reference graph's direct edge, so a move
      that flips an edge's crossing state is a pure O(1) weight patch —
      the layer's structure, indegrees and reachability never change;
    * a **sequentialization layer** holding per-resource ``Esw``/``Ehw``
      edges, recomputed only for resources whose order actually changed
      (a move touches at most two) and rebuilt into reused buffers only
      when some resource's edge *pairs* changed — weight-only changes
      (e.g. an implementation swap retuning reconfiguration delays) are
      written in place.

    The topological order, the cycle verdict and the serialized bus
    order are cached on top and invalidated only when the
    sequentialization layer's structure changes (the static layer cannot
    invalidate them).  Per-RC reconfiguration statistics for the Fig. 3
    decomposition are cached alongside.

    ``Processor``/``ReconfigurableCircuit``/``Asic`` contributions are
    generated natively over the interned arrays; unknown
    :class:`Resource` subclasses fall back to calling the resource's own
    ``sequentialization_edges``/``virtual_nodes`` on every evaluation
    (conservative but correct).
    """

    name = "incremental"

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
        compiled=None,
    ) -> None:
        if compiled is not None and (
            compiled.application is not application
            or compiled.bus is not architecture.bus
        ):
            raise ConfigurationError(
                "provided CompiledInstance was compiled for a different "
                "application/bus than this engine's"
            )
        self._compiled_seed = compiled
        super().__init__(application, architecture, bus_policy)
        self._build_skeleton(architecture.bus)

    # ------------------------------------------------------------------
    # one-time skeleton (solution-independent)
    # ------------------------------------------------------------------
    def _build_skeleton(self, bus) -> None:
        self._bus = bus
        self._ordered = self.bus_policy == "ordered"
        # The one compile pass (repro.mapping.compiled) flattens the
        # application + bus into the dense solution-independent tables;
        # the engine aliases them (and extends the per-node arrays in
        # place when virtual nodes are interned later).  A caller may
        # hand the constructor a pre-built ``CompiledInstance.fork()``
        # instead — that's how K cross-chain engines share one compile
        # pass.  The seed is one-shot: a bus swap recompiles.
        compiled = self._compiled_seed
        self._compiled_seed = None
        if compiled is None or compiled.bus is not bus:
            compiled = compile_instance(self.application, bus)
        self.compiled = compiled
        self._tasks = compiled.tasks
        self._ntasks = compiled.ntasks
        self._interner = compiled.interner
        self._tid = compiled.tid
        self._sw_ms = compiled.sw_ms
        self._impl_clbs = compiled.impl_clbs
        self._impl_ms = compiled.impl_ms
        self._pred_ids = compiled.pred_ids
        self._succ_ids = compiled.succ_ids
        self._dep_srct = compiled.dep_srct
        self._dep_dstt = compiled.dep_dstt
        self._dep_src = compiled.dep_src
        self._dep_dst = compiled.dep_dst
        self._dep_transfer = compiled.dep_transfer
        self._dep_comm = compiled.dep_comm
        self._deps_of_task = compiled.deps_of_task
        ndeps = compiled.ndeps
        self._ndeps = ndeps

        # Static dependency layer: dep j is permanently wired
        # ``src -> comm -> dst`` where comm is the dense id ``ntasks +
        # j`` (interning order guarantees contiguity).  The ``src ->
        # comm`` weight is the only mutable part; the ``comm -> dst``
        # edge is always 0, so task-side predecessors reduce to a plain
        # list of comm ids whose *finish* times are the candidates.
        # This structure — and therefore its indegrees and reachability
        # — never changes after construction.
        n = len(self._interner)
        self._comm_w: List[float] = [0.0] * ndeps
        self._pred_comms = compiled.pred_comms
        self._succ_static = compiled.succ_static
        self._indeg_static = compiled.indeg_static
        # Processor total orders as prev/next pointer arrays: a task sits
        # on at most one processor, so one array pair covers them all and
        # replacing a processor's chain is plain integer stores.
        self._proc_prev: List[int] = [-1] * n
        self._proc_next: List[int] = [-1] * n

        # Memos that survive mirror resets: context boundaries depend
        # only on the static precedence graph, and layout/order memos
        # are keyed by globally-unique revision stamps.  The content
        # memo backs the stamp memo: every *applied* move hands out a
        # fresh stamp, but annealing walks revisit the same layout
        # content constantly (apply/undo cycles, re-proposed moves), so
        # a stamp miss usually resolves to a content hit instead of
        # re-materializing the layout context by context — the
        # constant-factor overhead PR 1 left on the table.
        self._ctx_memo: Dict[Tuple, Tuple[int, List[int], List[int]]] = {}
        self._rc_memo: Dict[int, Tuple] = {}
        self._rc_content_memo: Dict[Tuple, Tuple] = {}
        self._proc_memo: Dict[int, List[int]] = {}
        self._config_ids: Dict[str, int] = {}

        # Internal counters sampled by the telemetry layer (plain ints,
        # incremented unconditionally: cheaper than any enabled-check
        # and deterministic for fixed seeds).  Reset with the memos they
        # describe.
        self.stat_sync_calls = 0
        self.stat_sync_tasks = 0
        self.stat_sync_resources = 0
        self.stat_proc_memo_hits = 0
        self.stat_proc_memo_misses = 0
        self.stat_rc_stamp_hits = 0
        self.stat_rc_content_hits = 0
        self.stat_rc_rebuilds = 0
        self.stat_ctx_hits = 0
        self.stat_ctx_misses = 0

        # Dynamic (solution-dependent) state, reset to "never seen".
        self._dur: List[float] = [0.0] * n
        self._starts_buf: List[float] = [0.0] * n
        self._finish_buf: List[float] = [0.0] * n
        self._res_kind: Dict[str, Tuple] = {}
        self._invalidate()

    def _invalidate(self) -> None:
        """Forget all mirrored solution state (forces a full re-sync)."""
        n = len(self._interner)
        # Durations mirror solution state too: the re-sync recomputes
        # task and comm durations (every task diffs) and re-stamps
        # active config nodes, but a config node whose RC ends up empty
        # is only zeroed via _virtual_ids — which is being reset here —
        # so clear the whole array rather than leak a stale duration.
        for node_id in range(len(self._dur)):
            self._dur[node_id] = 0.0
        self._m_resource: List[Optional[str]] = [None] * self._ntasks
        self._m_impl: List[int] = [-1] * self._ntasks
        # After a reset the arrays mirror the empty assignment, so empty
        # dicts are the matching wholesale-comparison baseline.
        self._m_res_dict: Dict[int, str] = {}
        self._m_impl_dict: Dict[int, int] = {}
        self._m_res_names: List[str] = []
        self._m_rev: Dict[str, int] = {}
        self._rc_list: List[Tuple[str, ReconfigurableCircuit]] = []
        self._res_edges: Dict[str, List[Tuple[int, int, float]]] = {}
        self._virtual_ids: Dict[str, List[int]] = {}
        self._rc_stats: Dict[str, Tuple[int, float, float, int]] = {}
        self._hw_count = 0
        self._dep_mode: List[int] = [-1] * self._ndeps
        self._active_deps: List[int] = []
        self._active_dirty = True
        # Sequentialization layer: maintained edge by edge as resources
        # change.  ``pred_seq[v]`` holds ``(src, weight)`` pairs; the
        # combined indegrees are kept in step so Kahn never needs a
        # recount pass.
        self._pred_seq: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self._succ_seq: List[List[int]] = [[] for _ in range(n)]
        self._indeg_total: List[int] = list(self._indeg_static)
        for v in range(n):
            self._proc_prev[v] = -1
            self._proc_next[v] = -1
        self._proc_members: Dict[str, List[int]] = {}
        # Cached base topological orders as ``[order, position, valid]``
        # entries.  An entry stays valid until an *added* edge
        # contradicts its positions (checked in O(1) per added edge);
        # removals never invalidate.  The serialized order is derived
        # from the base order by splicing the active comm nodes into
        # chain order (Kahn is only the fallback), and is valid exactly
        # while its source base order and the chain permutation hold.
        self._orders0: List[List] = []
        self._cycle0: Optional[CycleError] = None
        self._order1: Optional[List[int]] = None
        self._order1_src: Optional[List[int]] = None
        self._pos1: List[int] = [0] * n
        self._dirty: List[bool] = [False] * n
        self._chain_perm: Optional[List[int]] = None
        self._chain_pred: List[int] = [-1] * n
        self._chain_next: List[int] = [-1] * n

    def _classify_resources(self, arch: Architecture) -> None:
        """(Re)build the resource kind table.  Entries are kept for
        resources that left the architecture: a removed resource's name
        can still appear as a task's *previous* assignment in the very
        diff that rehomes the task (move m3).

        Exact types get the array fast paths; *subclasses* of the
        built-in resources (which may override timing or edge emission)
        fall back to the polymorphic ``"?"`` path, whose third field
        records whether the resource hosts hardware tasks (RC/ASIC
        lineage) for the hardware-task counter."""
        for res in arch.resources():
            name = res.name
            if name not in self._res_kind or self._res_kind[name][1] is not res:
                kind = type(res)
                if kind is Processor:
                    self._res_kind[name] = ("p", res, res.speed_factor)
                elif kind is ReconfigurableCircuit:
                    self._res_kind[name] = ("rc", res)
                elif kind is Asic:
                    self._res_kind[name] = ("asic", res)
                else:
                    is_hw = isinstance(res, (ReconfigurableCircuit, Asic))
                    self._res_kind[name] = ("?", res, is_hw)

    # ------------------------------------------------------------------
    def telemetry_counters(self) -> Dict[str, int]:
        out = super().telemetry_counters()
        out.update(
            sync_calls=self.stat_sync_calls,
            sync_tasks=self.stat_sync_tasks,
            sync_resources=self.stat_sync_resources,
            proc_memo_hits=self.stat_proc_memo_hits,
            proc_memo_misses=self.stat_proc_memo_misses,
            rc_stamp_hits=self.stat_rc_stamp_hits,
            rc_content_hits=self.stat_rc_content_hits,
            rc_rebuilds=self.stat_rc_rebuilds,
            ctx_hits=self.stat_ctx_hits,
            ctx_misses=self.stat_ctx_misses,
        )
        return out

    # ------------------------------------------------------------------
    # delta synchronization
    # ------------------------------------------------------------------
    def _sync(self, solution: Solution) -> None:
        self.stat_sync_calls += 1
        arch = solution.architecture
        if arch.bus is not self._bus:
            # Transfer times were precomputed against another bus; this
            # never happens in the optimizers (snapshots share the bus
            # object) but stay correct if a caller swaps it.
            self._build_skeleton(arch.bus)

        names = arch.resource_names()
        if names != self._m_res_names:
            self._classify_resources(arch)
            for name in set(self._m_res_names) - set(names):
                if name in self._proc_members:
                    self._set_proc_chain(name, [])
                    self._proc_members.pop(name, None)
                else:
                    self._set_res_edges(name, [])
                self._m_rev.pop(name, None)
                self._res_edges.pop(name, None)
                self._rc_stats.pop(name, None)
                for node_id in self._virtual_ids.pop(name, ()):
                    self._dur[node_id] = 0.0
            self._m_res_names = list(names)
            self._rc_list = [
                (r.name, r)
                for r in arch.resources()
                if isinstance(r, ReconfigurableCircuit)
            ]

        # Per-task assignment / implementation diff -> durations, deps
        # and the hardware-task count.  The wholesale dict comparisons
        # skip the scan entirely for order-only moves (m1 reorders).
        res_of = solution._resource_of
        impl_of = solution._impl_choice
        res_kind = self._res_kind
        if len(res_of) != self._ntasks:
            # Match the reference engine, which trips over the missing
            # assignment while realizing the graph; without this guard a
            # partially assigned solution would silently score with
            # zero durations for the unassigned tasks.
            for t in self._tasks:
                if t not in res_of:
                    raise MappingError(f"task {t} is not assigned")
        if res_of != self._m_res_dict or impl_of != self._m_impl_dict:
            # The symmetric item differences pick out exactly the tasks
            # a move touched, at C speed; the mirror dicts are patched
            # key by key instead of recopied.
            m_res_dict = self._m_res_dict
            m_impl_dict = self._m_impl_dict
            diff = {t for t, _ in res_of.items() ^ m_res_dict.items()}
            diff.update(t for t, _ in impl_of.items() ^ m_impl_dict.items())
            tid = self._tid
            m_res = self._m_resource
            m_impl = self._m_impl
            changed: List[int] = []
            for t in diff:
                r = res_of.get(t)
                if r is None:
                    m_res_dict.pop(t, None)
                else:
                    m_res_dict[t] = r
                raw = impl_of.get(t)
                if raw is None:
                    m_impl_dict.pop(t, None)
                    c = 0
                else:
                    m_impl_dict[t] = raw
                    c = raw
                i = tid[t]
                old_r = m_res[i]
                if r == old_r and c == m_impl[i]:
                    continue
                if r != old_r:
                    if old_r is not None and _kind_is_hw(res_kind[old_r]):
                        self._hw_count -= 1
                    if r is not None and _kind_is_hw(res_kind[r]):
                        self._hw_count += 1
                m_res[i] = r
                m_impl[i] = c
                changed.append(i)
            self.stat_sync_tasks += len(changed)
            if changed:
                dur = self._dur
                impl_ms = self._impl_ms
                sw_ms = self._sw_ms
                for i in changed:
                    kind = res_kind[m_res[i]]
                    if kind[0] == "p":
                        dur[i] = sw_ms[i] / kind[2]
                    elif kind[0] == "?" or impl_ms[i] is None:
                        dur[i] = kind[1].execution_time_ms(solution, self._tasks[i])
                    else:
                        dur[i] = impl_ms[i][m_impl[i]]
                for i in changed:
                    for j in self._deps_of_task[i]:
                        self._refresh_dep(j)

        # Per-resource sequentialization edges, gated by the solution's
        # revision stamps: an untouched resource is skipped outright, and
        # a restored stamp (move undo) guarantees restored content.
        rev_of = solution._res_rev
        m_rev = self._m_rev
        pending: List[Tuple[str, str, object]] = []
        for name in names:
            rev = rev_of.get(name, 0)
            if m_rev.get(name) == rev:
                continue
            kind = res_kind[name]
            tag = kind[0]
            if tag == "p":
                memo = self._proc_memo
                members = memo.get(rev)
                if members is None:
                    self.stat_proc_memo_misses += 1
                    tid = self._tid
                    members = [tid[t] for t in solution._sw_orders[name]]
                    if len(memo) > 16384:
                        memo.clear()
                    memo[rev] = members
                else:
                    self.stat_proc_memo_hits += 1
                pending.append(("p", name, members))
            elif tag == "rc":
                triples = self._refresh_rc(
                    name, kind[1], solution._contexts[name], rev, impl_of
                )
                pending.append(("e", name, triples))
            elif tag != "asic":
                # Unknown resource type: conservatively refresh on every
                # call through the resource's own polymorphic methods
                # (no revision skip — overridden methods may depend on
                # state the stamps do not cover).
                triples = self._refresh_generic(name, kind[1], solution)
                pending.append(("e", name, triples))
                continue
            m_rev[name] = rev
        self.stat_sync_resources += len(pending)
        if len(pending) == 1:
            # Common case (one or two moves touching one resource's
            # order): apply in place with the delta fast paths.
            tag, name, payload = pending[0]
            if tag == "p":
                self._set_proc_chain(name, payload)
            else:
                self._set_res_edges(name, payload)
        elif pending:
            # An edge pair can migrate between two resources refreshed
            # in the same diff; unlink every stale chain/edge list first
            # so no link is clobbered by a later unlink.
            for tag, name, _payload in pending:
                if tag == "p":
                    self._unlink_proc_chain(name)
                else:
                    self._unlink_res_edges(name)
            for tag, name, payload in pending:
                if tag == "p":
                    self._link_proc_chain(name, payload)
                else:
                    self._link_res_edges(name, payload)

    def _refresh_dep(self, j: int) -> None:
        """Re-derive a dependency's realization from the mirrored
        assignment.  Purely a weight/duration patch: the dependency is
        permanently wired through its comm node, so flipping between
        active transfer (duration on the comm node) and pass-through
        (weight on the ``src -> comm`` edge) never changes structure."""
        crossing = self._m_resource[self._dep_src[j]] != self._m_resource[self._dep_dst[j]]
        transfer = self._dep_transfer[j]
        comm_id = self._dep_comm[j]
        if crossing and transfer > 0.0 and self._ordered:
            mode = 1
            self._comm_w[j] = 0.0
            self._dur[comm_id] = transfer
        else:
            mode = 0
            self._comm_w[j] = transfer if crossing else 0.0
            self._dur[comm_id] = 0.0
        if mode != self._dep_mode[j]:
            self._dep_mode[j] = mode
            self._active_dirty = True

    def _refresh_rc(
        self,
        name: str,
        rc: ReconfigurableCircuit,
        contexts: List[List[int]],
        rev: int,
        impl_of: Dict[int, int],
    ) -> List[Tuple[int, int, float]]:
        """Native regeneration of a DRLC's search-graph contribution:
        context sequentialization edges ``Ehw``, the virtual
        configuration node, and the cached reconfiguration statistics.
        Mirrors ``ReconfigurableCircuit.sequentialization_edges`` /
        ``virtual_nodes`` exactly, over interned arrays.  Realized
        layouts are memoized twice: by the resource's revision stamp —
        a stamp is handed out once and restored only together with its
        content, so it keys the layout exactly (and annealing, which
        undoes every rejected move, revisits stamps constantly) — and
        by the layout *content*, so a fresh stamp over recurring
        content resolves without re-materializing anything."""
        if not contexts:
            for node_id in self._virtual_ids.pop(name, ()):
                self._dur[node_id] = 0.0
            self._rc_stats[name] = (0, 0.0, 0.0, 0)
            return []
        tid = self._tid
        m_impl = self._m_impl
        layouts = self._rc_memo
        entry = layouts.get(rev)
        if entry is not None:
            self.stat_rc_stamp_hits += 1
        config_id = self._config_ids.get(name)
        if config_id is None:
            config_id = self._interner.intern((CONFIG_NODE, name))
            self._config_ids[name] = config_id
            self._grow_nodes()
        if entry is None:
            shape = tuple(tuple(ctx) for ctx in contexts)
            content_key = (
                name,
                shape,
                tuple(impl_of.get(t, 0) for ctx in shape for t in ctx),
            )
            content_memo = self._rc_content_memo
            entry = content_memo.get(content_key)
            if entry is not None:
                self.stat_rc_content_hits += 1
                if len(layouts) > 16384:
                    layouts.clear()
                layouts[rev] = entry
        if entry is None:
            self.stat_rc_rebuilds += 1
            impl_clbs = self._impl_clbs
            ctx_clbs: List[int] = []
            initials: List[List[int]] = []
            terminals: List[List[int]] = []
            memo = self._ctx_memo
            if len(memo) > 16384:
                memo.clear()
            for ctx in contexts:
                # One context realizes identically whenever its member
                # tasks and their implementation choices recur — and
                # individual contexts recur far more often than whole
                # layouts, so this memo hits even though the annealing
                # walk rarely revisits a complete layout.
                key = (tuple(ctx), tuple(impl_of.get(t, 0) for t in ctx))
                cached = memo.get(key)
                if cached is None:
                    self.stat_ctx_misses += 1
                    members = [tid[t] for t in ctx]
                    inside = set(members)
                    pred_ids = self._pred_ids
                    succ_ids = self._succ_ids
                    cached = (
                        sum(impl_clbs[i][m_impl[i]] for i in members),
                        [i for i in members
                         if not any(p in inside for p in pred_ids[i])],
                        [i for i in members
                         if not any(s in inside for s in succ_ids[i])],
                    )
                    memo[key] = cached
                else:
                    self.stat_ctx_hits += 1
                ctx_clbs.append(cached[0])
                initials.append(cached[1])
                terminals.append(cached[2])
            triples: List[Tuple[int, int, float]] = [
                (config_id, i, 0.0) for i in initials[0]
            ]
            reconfig = rc.reconfiguration_time_ms
            for k in range(len(contexts) - 1):
                weight = reconfig(ctx_clbs[k + 1])
                for t in terminals[k]:
                    for i in initials[k + 1]:
                        triples.append((t, i, weight))
            initial_ms = reconfig(ctx_clbs[0])
            stats = (
                len(contexts),
                initial_ms,
                sum(reconfig(c) for c in ctx_clbs[1:]),
                sum(ctx_clbs),
            )
            if len(layouts) > 16384:
                layouts.clear()
            entry = (triples, initial_ms, stats)
            layouts[rev] = entry
            if len(content_memo) > 16384:
                content_memo.clear()
            content_memo[content_key] = entry
        triples, initial_ms, stats = entry
        self._dur[config_id] = initial_ms
        self._virtual_ids[name] = [config_id]
        self._rc_stats[name] = stats
        return triples

    def _refresh_generic(
        self, name: str, res: Resource, solution: Solution
    ) -> List[Tuple[int, int, float]]:
        """Fallback for unknown resource types: delegate to the
        resource's polymorphic search-graph contribution."""
        intern = self._interner.intern
        triples = [
            (intern(a), intern(b), w)
            for a, b, w in res.sequentialization_edges(solution)
        ]
        virtual = getattr(res, "virtual_nodes", None)
        entries = virtual(solution) if virtual is not None else []
        new_ids = [intern(key) for key, _duration in entries]
        self._grow_nodes()
        for node_id in self._virtual_ids.get(name, ()):
            self._dur[node_id] = 0.0
        for (_key, duration), node_id in zip(entries, new_ids):
            self._dur[node_id] = duration
        self._virtual_ids[name] = new_ids
        return triples

    def _set_proc_chain(
        self, name: str, members: List[int]
    ) -> Tuple[Sequence[Tuple[int, int]], Sequence[Tuple[int, int]]]:
        """Replace a processor's total-order chain (``Esw``) in place —
        safe when this is the only resource refreshed in the sync.

        The replacement is pair-trimmed: a reorder perturbs a contiguous
        region of the chain, so the common prefix and suffix of the
        ``(prev, next)`` pair lists stay linked untouched (and cached
        topological orders survive unless a *truly added* pair
        contradicts them).  Returns ``(removed_pairs, added_pairs)`` so
        subclasses can seed their dirty propagation from the exact
        structural delta."""
        old = self._proc_members.get(name) or []
        if old == members:
            self._proc_members[name] = members
            return (), ()
        pairs_old = list(zip(old, old[1:]))
        pairs_new = list(zip(members, members[1:]))
        n_old, n_new = len(pairs_old), len(pairs_new)
        lo = 0
        hi = min(n_old, n_new)
        while lo < hi and pairs_old[lo] == pairs_new[lo]:
            lo += 1
        tail = 0
        while (
            tail < hi - lo
            and pairs_old[n_old - 1 - tail] == pairs_new[n_new - 1 - tail]
        ):
            tail += 1
        removed = pairs_old[lo:n_old - tail]
        added = pairs_new[lo:n_new - tail]
        proc_prev = self._proc_prev
        proc_next = self._proc_next
        indeg = self._indeg_total
        if removed:
            for a, b in removed:
                proc_next[a] = -1
                proc_prev[b] = -1
                indeg[b] -= 1
            # A removal may have broken the cycle behind a cached
            # verdict; retry Kahn on the next evaluation.
            self._cycle0 = None
        if added:
            orders0 = self._orders0
            self._order1 = None
            for a, b in added:
                proc_next[a] = b
                proc_prev[b] = a
                indeg[b] += 1
                for entry in orders0:
                    if entry[2] and entry[1][a] >= entry[1][b]:
                        entry[2] = False
        self._proc_members[name] = members
        return removed, added

    def _unlink_proc_chain(self, name: str) -> None:
        old = self._proc_members.get(name)
        if not old:
            self._proc_members[name] = []
            return
        proc_prev = self._proc_prev
        proc_next = self._proc_next
        indeg = self._indeg_total
        prev = old[0]
        for v in old[1:]:
            indeg[v] -= 1
            proc_prev[v] = -1
            proc_next[prev] = -1
            prev = v
        # A removal may have broken the cycle behind a cached verdict;
        # retry Kahn on the next evaluation.
        self._cycle0 = None
        self._proc_members[name] = []

    def _link_proc_chain(self, name: str, members: List[int]) -> None:
        """Store a processor chain's prev/next pointers, keep indegrees
        in step, and invalidate cached orders that an added pair
        contradicts.  Pure integer stores — no list surgery."""
        if members:
            proc_prev = self._proc_prev
            proc_next = self._proc_next
            indeg = self._indeg_total
            orders0 = self._orders0
            self._order1 = None
            prev = members[0]
            for v in members[1:]:
                proc_next[prev] = v
                proc_prev[v] = prev
                indeg[v] += 1
                for entry in orders0:
                    if entry[2] and entry[1][prev] >= entry[1][v]:
                        entry[2] = False
                prev = v
        self._proc_members[name] = members

    def _unlink_res_edges(self, name: str) -> None:
        """Remove a resource's sequentialization edges from the live seq
        layer (phase 1 of a multi-resource refresh)."""
        old = self._res_edges.get(name)
        if not old:
            self._res_edges[name] = []
            return
        pred_seq = self._pred_seq
        succ_seq = self._succ_seq
        indeg = self._indeg_total
        for a, b, _w in old:
            succ_seq[a].remove(b)
            plist = pred_seq[b]
            for idx in range(len(plist)):
                if plist[idx][0] == a:
                    del plist[idx]
                    break
            indeg[b] -= 1
        self._cycle0 = None
        self._res_edges[name] = []

    def _link_res_edges(
        self, name: str, triples: List[Tuple[int, int, float]]
    ) -> None:
        """Insert a resource's sequentialization edges (phase 2 of a
        multi-resource refresh)."""
        if triples:
            pred_seq = self._pred_seq
            succ_seq = self._succ_seq
            indeg = self._indeg_total
            orders0 = self._orders0
            self._order1 = None
            for a, b, w in triples:
                succ_seq[a].append(b)
                pred_seq[b].append((a, w))
                indeg[b] += 1
                for entry in orders0:
                    if entry[2] and entry[1][a] >= entry[1][b]:
                        entry[2] = False
        self._res_edges[name] = triples

    def _set_res_edges(
        self, name: str, triples: List[Tuple[int, int, float]]
    ) -> Tuple[Sequence[Tuple], Sequence[Tuple]]:
        """Replace a resource's sequentialization edges in the live seq
        layer, in place — safe when this is the only resource refreshed
        in the sync.  Old edges are unlinked, new ones linked, indegrees
        kept in step.  Cached topological orders survive unless an added
        edge contradicts them (position check); removals never
        invalidate.  Seq edge pairs are unique within one resource — it
        only ever chains its own tasks and its own config node — so
        unlinking by (src, dst) is unambiguous.  Returns ``(removals,
        additions)`` — the trimmed triple delta — for subclasses that
        seed dirty propagation from it."""
        old = self._res_edges.get(name)
        if old == triples:
            return (), ()
        # Unlink/link only the differing middle: a reorder or reassign
        # perturbs a contiguous region of a resource's chain, so the
        # common prefix and suffix (compared as (src, dst, weight)
        # triples) can stay linked untouched.
        lo = 0
        if old:
            n_old, n_new = len(old), len(triples)
            hi = min(n_old, n_new)
            while lo < hi and old[lo] == triples[lo]:
                lo += 1
            tail = 0
            while (
                tail < hi - lo
                and old[n_old - 1 - tail] == triples[n_new - 1 - tail]
            ):
                tail += 1
            removals = old[lo:n_old - tail]
            additions = triples[lo:n_new - tail]
        else:
            removals = ()
            additions = triples
        structural = len(removals) != len(additions) or any(
            r[0] != a[0] or r[1] != a[1] for r, a in zip(removals, additions)
        )
        pred_seq = self._pred_seq
        succ_seq = self._succ_seq
        indeg = self._indeg_total
        if removals:
            for a, b, _w in removals:
                succ_seq[a].remove(b)
                plist = pred_seq[b]
                for idx in range(len(plist)):
                    if plist[idx][0] == a:
                        del plist[idx]
                        break
                indeg[b] -= 1
            if structural:
                # A removal may have broken the cycle behind a cached
                # verdict; retry Kahn on the next evaluation.
                self._cycle0 = None
        if structural:
            orders0 = self._orders0
            # The serialized order's task placement mirrors a specific
            # base order; any structural seq change may reorder tasks.
            self._order1 = None
            for a, b, w in additions:
                succ_seq[a].append(b)
                pred_seq[b].append((a, w))
                indeg[b] += 1
                for entry in orders0:
                    if entry[2] and entry[1][a] >= entry[1][b]:
                        entry[2] = False
        else:
            # Weight-only change: same pairs back with new weights, no
            # order or cycle cache is affected.
            for a, b, w in additions:
                succ_seq[a].append(b)
                pred_seq[b].append((a, w))
                indeg[b] += 1
        self._res_edges[name] = triples
        return removals, additions

    def _grow_nodes(self) -> None:
        n = len(self._interner)
        if len(self._dur) < n:
            while len(self._dur) < n:
                self._dur.append(0.0)
                self._starts_buf.append(0.0)
                self._finish_buf.append(0.0)
                self._pred_comms.append([])
                self._succ_static.append([])
                self._indeg_static.append(0)
                self._pred_seq.append([])
                self._succ_seq.append([])
                self._indeg_total.append(0)
                self._proc_prev.append(-1)
                self._proc_next.append(-1)
                self._pos1.append(0)
                self._dirty.append(False)
                self._chain_pred.append(-1)
                self._chain_next.append(-1)
            # Cached orders do not contain the new nodes yet.
            self._orders0.clear()
            self._order1 = None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _compute(
        self, solution: Solution
    ) -> Tuple[float, bool, float, Optional[CycleError]]:
        """Returns ``(makespan, feasible, comm_ms, cycle_error)``."""
        self._sync(solution)
        if self._active_dirty:
            dep_mode = self._dep_mode
            self._active_deps = [
                j for j in range(self._ndeps) if dep_mode[j] == 1
            ]
            self._active_dirty = False
        n = len(self._interner)
        dur = self._dur
        dep_comm = self._dep_comm

        entry0: Optional[List] = None
        for entry in self._orders0:
            if entry[2]:
                entry0 = entry
                break
        if entry0 is None and self._cycle0 is None:
            try:
                order = self._kahn_base(n)
            except CycleError as exc:
                self._cycle0 = exc
            else:
                pos = [0] * n
                for idx, v in enumerate(order):
                    pos[v] = idx
                entry0 = [order, pos, True]
                self._orders0.insert(0, entry0)
                del self._orders0[2:]
        if entry0 is None:
            comm_ms = sum(dur[dep_comm[j]] for j in self._active_deps)
            return INFEASIBLE_MS, False, comm_ms, self._cycle0
        order0 = entry0[0]

        finish = self._finish_buf
        starts = self._dp(order0)
        active = self._active_deps
        if not active:
            return max(finish), True, 0.0, None

        # Serialize bus transactions: ASAP order in the unserialized
        # graph, ties broken by (source task, destination task) — the
        # exact deterministic policy of SearchGraphBuilder._serialize_bus.
        srct = self._dep_srct
        dstt = self._dep_dstt
        ntasks = self._ntasks
        keyed = sorted(
            (starts[ntasks + j], srct[j], dstt[j], j) for j in active
        )
        perm = [key[3] for key in keyed]
        chain_pred = self._chain_pred
        chain_next = self._chain_next
        if perm != self._chain_perm:
            if self._chain_perm:
                for j in self._chain_perm:
                    comm = dep_comm[j]
                    chain_pred[comm] = -1
                    chain_next[comm] = -1
            prev = dep_comm[perm[0]]
            for j in perm[1:]:
                comm = dep_comm[j]
                chain_pred[comm] = prev
                chain_next[prev] = comm
                prev = comm
            self._chain_perm = perm
            self._order1 = None
        order1 = self._order1
        if order1 is None or self._order1_src is not order0:
            pos1 = self._pos1
            order1 = self._splice_order1(entry0, perm)
            if order1 is not None:
                pos1[:] = entry0[1]
                slots = sorted(entry0[1][dep_comm[j]] for j in perm)
                for slot, j in zip(slots, perm):
                    pos1[dep_comm[j]] = slot
            else:
                indeg1 = list(self._indeg_total)
                for j in perm[1:]:
                    indeg1[dep_comm[j]] += 1
                try:
                    order1 = self._kahn_chained(n, indeg1, chain_next)
                except CycleError as exc:
                    # Cannot happen for positive transfer durations (see
                    # SearchGraphBuilder._serialize_bus) but mirror the
                    # full engine: a cyclic serialized realization is
                    # infeasible.
                    self._order1 = None
                    comm_ms = sum(dur[dep_comm[j]] for j in perm)
                    return INFEASIBLE_MS, False, comm_ms, exc
                for idx, v in enumerate(order1):
                    pos1[v] = idx
            self._order1 = order1
            self._order1_src = order0
        # The chain only *adds* constraints on top of the base DP, so the
        # serialized start times are an increase-only delta: seed with
        # the comm nodes whose chain predecessor actually binds, then
        # propagate in serialized-topological order.  When no chain edge
        # binds, the base DP already is the serialized answer.
        self._dp_chain_delta(perm)
        comm_ms = sum(dur[dep_comm[j]] for j in perm)
        return max(finish), True, comm_ms, None

    def _dp(self, order: List[int]) -> List[float]:
        """ASAP/longest-path DP over the *unserialized* graph,
        specialized to the engine's id layout: comm nodes (ids
        ``[ntasks, ntasks + ndeps)``) have exactly one predecessor;
        tasks and config nodes take the max over comm finish times (the
        ``comm -> dst`` edges all weigh 0), the processor-chain
        predecessor, and seq-layer ``(src, weight)`` pairs.  Produces
        floats bit-identical to the reference dict DP: every candidate
        is ``(start[u] + dur[u]) + w`` in the same association order.
        Fills ``self._starts_buf``/``self._finish_buf``."""
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        dur = self._dur
        starts = self._starts_buf
        finish = self._finish_buf
        for v in order:
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0  # mirror the reference DP's 0.0 floor
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            starts[v] = best
            finish[v] = best + dur[v]
        return starts

    def _dp_chain_delta(self, perm: List[int]) -> None:
        """Upgrade the base DP in ``starts``/``finish`` to the serialized
        DP by increase-only propagation.  Chain edges can only delay
        starts, so nodes unaffected by a binding chain edge keep their
        base values — which are exactly the serialized values (identical
        candidate sets).  Processes the affected cone in serialized
        topological order via a position-keyed heap."""
        dep_comm = self._dep_comm
        starts = self._starts_buf
        finish = self._finish_buf
        chain_pred = self._chain_pred
        pos1 = self._pos1
        dirty = self._dirty
        heap: List[Tuple[int, int]] = []
        push = heapq.heappush
        prev = dep_comm[perm[0]]
        for j in perm[1:]:
            c = dep_comm[j]
            if finish[prev] > starts[c] and not dirty[c]:
                dirty[c] = True
                push(heap, (pos1[c], c))
            prev = c
        if not heap:
            return
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        chain_next = self._chain_next
        dur = self._dur
        pop = heapq.heappop
        while heap:
            _pos, v = pop(heap)
            if not dirty[v]:
                continue
            dirty[v] = False
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0
                u = chain_pred[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            if best != starts[v]:
                starts[v] = best
                finish[v] = best + dur[v]
                for nxt in succ_static[v]:
                    if not dirty[nxt]:
                        dirty[nxt] = True
                        push(heap, (pos1[nxt], nxt))
                for nxt in succ_seq[v]:
                    if not dirty[nxt]:
                        dirty[nxt] = True
                        push(heap, (pos1[nxt], nxt))
                nxt = proc_next[v]
                if nxt >= 0 and not dirty[nxt]:
                    dirty[nxt] = True
                    push(heap, (pos1[nxt], nxt))
                nxt = chain_next[v]
                if nxt >= 0 and not dirty[nxt]:
                    dirty[nxt] = True
                    push(heap, (pos1[nxt], nxt))

    def _splice_order1(
        self, entry0: List, perm: List[int]
    ) -> Optional[List[int]]:
        """Derive the serialized order from the base order by permuting
        the active comm nodes — among the positions they already occupy
        — into chain order.  All other nodes keep their relative base
        order (valid for the base edges); the chain edges are satisfied
        because ascending positions receive the chain sequence.  The
        only conditions to verify are each comm's own task neighbors:
        ``pos(src) < q < pos(dst)`` for its landing position ``q``.
        Returns None when a comm lands outside its window (fall back to
        Kahn)."""
        order0, pos0, _valid = entry0
        dep_comm = self._dep_comm
        dep_src = self._dep_src
        dep_dst = self._dep_dst
        comms = [dep_comm[j] for j in perm]
        slots = sorted(pos0[c] for c in comms)
        for slot, j in zip(slots, perm):
            if pos0[dep_src[j]] >= slot or pos0[dep_dst[j]] <= slot:
                return None
        order1 = list(order0)
        for slot, c in zip(slots, comms):
            order1[slot] = c
        return order1

    def _kahn_base(self, n: int) -> List[int]:
        """FIFO Kahn over the static layer, the seq layer and the
        processor chains; raises :class:`CycleError`."""
        return kahn_order_indices(
            n, self._indeg_total, self._succ_static,
            self._interner.keys(), self._succ_seq, self._proc_next,
        )

    def _kahn_chained(
        self, n: int, indeg: List[int], chain_next: List[int]
    ) -> List[int]:
        """Kahn over all edge layers plus the bus chain overlay."""
        order = [v for v in range(n) if indeg[v] == 0]
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            for nxt in succ_static[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
            for nxt in succ_seq[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
            nxt = proc_next[node]
            if nxt >= 0:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
            nxt = chain_next[node]
            if nxt >= 0:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    order.append(nxt)
        if len(order) != n:
            keys = self._interner.keys()
            raise CycleError(
                "serialized realization contains a cycle",
                cycle=[keys[v] for v in range(n) if indeg[v] > 0],
            )
        return order

    def _guarded_compute(
        self, solution: Solution
    ) -> Tuple[float, bool, float, Optional[CycleError]]:
        try:
            return self._compute(solution)
        except CycleError:
            raise
        except Exception:
            # The mirror may be half-updated (e.g. an unassigned task
            # surfaced mid-diff); drop it so the next call re-syncs from
            # scratch instead of trusting stale state.
            self._invalidate()
            raise

    # ------------------------------------------------------------------
    def makespan_ms(self, solution: Solution) -> float:
        self.evaluations += 1
        makespan, _feasible, _comm, _exc = self._guarded_compute(solution)
        return makespan

    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        self.evaluations += 1
        makespan, feasible, comm_ms, exc = self._guarded_compute(solution)
        if not feasible and strict and exc is not None:
            raise exc
        # Fig. 3 decomposition from the cached per-RC statistics (the
        # full engine recomputes these sums from the solution; the values
        # are identical, accumulated in the same resource order).  RC
        # subclasses on the generic path have no cached stats and are
        # recomputed the full engine's way.
        initial = 0.0
        dynamic = 0.0
        clbs = 0
        num_contexts = 0
        rc_stats = self._rc_stats
        for name, rc in self._rc_list:
            stats = rc_stats.get(name)
            if stats is not None:
                num_contexts += stats[0]
                initial += stats[1]
                dynamic += stats[2]
                clbs += stats[3]
            else:
                initial += rc.initial_reconfiguration_ms(solution)
                dynamic += rc.dynamic_reconfiguration_ms(solution)
                contexts = solution.contexts(name)
                num_contexts += len(contexts)
                clbs += sum(
                    solution.context_clbs(name, k)
                    for k in range(len(contexts))
                )
        hw = self._hw_count
        return Evaluation(
            makespan_ms=makespan,
            feasible=feasible,
            num_contexts=num_contexts,
            hw_tasks=hw,
            sw_tasks=self._ntasks - hw,
            initial_reconfig_ms=initial,
            dynamic_reconfig_ms=dynamic,
            comm_ms=comm_ms,
            clbs_used=clbs,
        )


@dataclass
class _Lane:
    """One captured candidate realization, ready for the batch kernels:
    dense per-node durations, per-dependency pass-through weights, the
    sequentialization edge list, the active (serialized) dependency ids,
    and the Fig. 3 statistics snapshot."""

    dur: object
    comm_w: object
    seq_src: List[int]
    seq_dst: List[int]
    seq_w: List[float]
    active: List[int]
    num_contexts: int
    hw: int
    initial_ms: float
    dynamic_ms: float
    clbs: int


class ArrayEngine(IncrementalEngine):
    """Compiled struct-of-arrays engine with a persistent longest-path DP.

    Shares the incremental engine's delta-sync (mirror diffing, static
    dependency layer, per-resource sequentialization patching) and adds
    three things on top:

    * **Persistent topological order.**  The incremental engine re-runs
      Kahn's sort whenever a structural change contradicts its cached
      orders — which a reorder move essentially always does, making the
      sort its single largest cost on 120+-task instances.  The array
      engine instead *repairs* the one persistent order in place
      (Pearce/Kelly-style region reordering per contradicting edge,
      verified in O(E) after multi-edge repairs) and only falls back to
      Kahn when a repair detects a potential cycle or too many edges
      contradict at once.  Every order the engine ever evaluates with is
      a verified topological order, so cyclic realizations are detected
      exactly like the reference engine — no fixpoint iteration
      anywhere.
    * **Persistent base DP with suffix recomputation.**  The
      unserialized ASAP start/finish values survive across evaluations;
      the sync's exact structural deltas (returned by the pair-trimmed
      chain/edge setters) plus a NumPy shadow diff of the
      duration/weight arrays locate the earliest order position a move
      could have affected, and the plain DP loop re-runs only from
      there.  Values before that position are provably unchanged, and
      recomputed nodes take the max over the identical candidate set
      the full DP would — so makespans stay bit-identical.  The
      serialized bus overlay runs on separate copy buffers, leaving the
      persistent base values untouched.
    * **Native batched evaluation.**  ``evaluate_batch`` captures K
      candidate moves as dense lanes and scores them in two fused NumPy
      frontier passes (:func:`repro.graph.kernels.batched_longest_path`):
      base DP over all lanes at once, then the serialized overlay with
      each lane's deterministic bus chain.
    """

    name = "array"

    #: Contradicting-edge count above which repairing the order is
    #: assumed costlier than one Kahn rebuild.
    MAX_REPAIR_EDGES = 24

    #: ``lanes * nodes`` below which ``evaluate_batch`` scores captured
    #: candidates through the scalar persistent DP instead of the NumPy
    #: frontier kernels.  The search graphs of this problem are *deep*
    #: (sequentialization chains serialize most of the graph), so the
    #: frontier-synchronous kernels pay their per-round dispatch
    #: overhead over tiny frontiers; measured on the bundled corpus
    #: (12-240 tasks, K up to 48) the scalar path wins throughout —
    #: the kernels only amortize on batches of instances well beyond
    #: the paper's scale.  Set to 0 to force the kernel path (the
    #: parity tests do).  The class constant is the default; the
    #: ``kernel_batch_min_work`` constructor knob (also settable via
    #: ``EngineSpec`` options) overrides it per instance.
    KERNEL_BATCH_MIN_WORK = 200_000

    #: Dispatch modes accepted by the ``dispatch`` engine option:
    #: ``"auto"`` picks per call site from the compiled graph shape,
    #: ``"kernel"`` forces the fused NumPy lane path, ``"scalar"``
    #: forces the persistent scalar DP.
    DISPATCH_MODES = ("auto", "kernel", "scalar")

    #: Mean static-level width (``CompiledInstance.mean_level_width``)
    #: at or above which ``dispatch="auto"`` considers the graph
    #: shallow/wide enough for the frontier-synchronous kernels to
    #: amortize their per-level dispatch overhead.  The bundled corpus
    #: is deep and narrow (static mean widths ~2-3, and annealed
    #: serializations only get deeper), so ``"auto"`` resolves to the
    #: scalar persistent path throughout the paper's scale; the kernels
    #: only win on far wider batch-of-instances shapes.
    KERNEL_MIN_MEAN_WIDTH = 64.0

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
        compiled=None,
        kernel_batch_min_work: Optional[int] = None,
        dispatch: str = "auto",
    ) -> None:
        if kernel_batch_min_work is not None and kernel_batch_min_work < 0:
            raise ConfigurationError(
                "kernel_batch_min_work must be >= 0, got "
                f"{kernel_batch_min_work!r}"
            )
        if dispatch not in self.DISPATCH_MODES:
            raise ConfigurationError(
                f"dispatch must be one of {self.DISPATCH_MODES}, "
                f"got {dispatch!r}"
            )
        self._kernel_batch_min_work = kernel_batch_min_work
        self.dispatch = dispatch
        super().__init__(application, architecture, bus_policy, compiled)

    @property
    def kernel_batch_min_work(self) -> int:
        """The live ``lanes * nodes`` threshold below which
        ``evaluate_batch`` routes through the scalar persistent DP
        (instance override, else :data:`KERNEL_BATCH_MIN_WORK`)."""
        override = self._kernel_batch_min_work
        return self.KERNEL_BATCH_MIN_WORK if override is None else override

    @kernel_batch_min_work.setter
    def kernel_batch_min_work(self, value: Optional[int]) -> None:
        self._kernel_batch_min_work = value

    def resolved_dispatch(self) -> str:
        """What ``dispatch="auto"`` resolves to for this instance:
        ``"kernel"`` when the compiled graph is wide enough
        (``mean_level_width >= KERNEL_MIN_MEAN_WIDTH``) for the fused
        frontier kernels to amortize, else ``"scalar"``.  Forced modes
        pass through unchanged.  This is the single depth-aware routing
        rule — :class:`CrossChainEvaluator` and the bench harness both
        consult it."""
        if self.dispatch != "auto":
            return self.dispatch
        wide = self.compiled.mean_level_width >= self.KERNEL_MIN_MEAN_WIDTH
        return "kernel" if wide else "scalar"

    def telemetry_counters(self) -> Dict[str, int]:
        out = super().telemetry_counters()
        out.update(
            cycle_witness_hits=self.stat_cycle_witness_hits,
            order_repairs=self.stat_order_repairs,
            order_rebuilds=self.stat_order_rebuilds,
            kernel_batches=self.stat_kernel_batches,
            kernel_lanes=self.stat_kernel_lanes,
            scalar_batches=self.stat_scalar_batches,
            scalar_lanes=self.stat_scalar_lanes,
        )
        return out

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        super()._invalidate()
        # Called from the base constructor before __init__ finishes:
        # (re)create all array-engine state here.
        self._np = require_numpy()
        np = self._np
        n = len(self._interner)
        #: Base (unserialized) DP values, persistent across evaluations.
        self._starts0: List[float] = [0.0] * n
        self._finish0: List[float] = [0.0] * n
        #: Serialized overlay buffers (base values + bus chain).
        self._starts1: List[float] = [0.0] * n
        self._finish1: List[float] = [0.0] * n
        #: Positions of the current persistent order (aliases the live
        #: entry's position array once one exists).
        self._pos0: List[int] = [0] * n
        #: Whether the persistent base DP values are trustworthy.
        self._values_valid = False
        #: Node ids whose inputs changed since the last evaluation
        #: (structural deltas here, duration/weight changes by shadow
        #: diff).
        self._dirty_seeds: set = set()
        #: Added edges that contradict the persistent order (repaired
        #: or folded into the next rebuild).
        self._pending_edges: List[Tuple[int, int]] = []
        #: One concrete cycle (edge list) from the last Kahn failure;
        #: while all its edges stay live the graph is provably still
        #: cyclic and no re-sort is needed.
        self._cycle_witness: Optional[List[Tuple[int, int]]] = None
        self._dur_shadow = np.zeros(n)
        self._cw_shadow = np.zeros(self._ndeps)
        #: True while lane captures have moved the mirror since the
        #: last scalar evaluation (disables the stable-shortcut: the
        #: mirror no longer matches the duration shadows).
        self._mirror_moved = False
        # Telemetry counters for the order/dispatch machinery (plain
        # ints, reset together with the order state they describe).
        self.stat_cycle_witness_hits = 0
        self.stat_order_repairs = 0
        self.stat_order_rebuilds = 0
        self.stat_kernel_batches = 0
        self.stat_kernel_lanes = 0
        self.stat_scalar_batches = 0
        self.stat_scalar_lanes = 0

    def _grow_nodes(self) -> None:
        n = len(self._interner)
        if len(self._dur) < n:
            super()._grow_nodes()  # clears _orders0
            for buf in (self._starts0, self._finish0,
                        self._starts1, self._finish1):
                while len(buf) < n:
                    buf.append(0.0)
            while len(self._pos0) < n:
                self._pos0.append(0)
            # The persistent order and values do not cover the new
            # nodes yet.
            self._pending_edges.clear()
            self._values_valid = False

    # ------------------------------------------------------------------
    # structural dirt capture (the setters return exact deltas)
    # ------------------------------------------------------------------
    def _note_structural(self, removed, added) -> None:
        seeds = self._dirty_seeds
        for pair in removed:
            seeds.add(pair[1])
        if not added:
            return
        entries = self._orders0
        if not entries:
            for pair in added:
                seeds.add(pair[1])
            return
        pos0 = entries[0][1]
        pending = self._pending_edges
        for pair in added:
            a, b = pair[0], pair[1]
            seeds.add(b)
            if pos0[a] >= pos0[b]:
                pending.append((a, b))
        if len(pending) > self.MAX_REPAIR_EDGES:
            # Too many contradictions: the stored order is beyond
            # repair.  Drop it (a Kahn rebuild starts a fresh one) so
            # the pending list cannot balloon while the walk churns.
            entries.clear()
            pending.clear()

    def _set_res_edges(self, name, triples):
        removals, additions = super()._set_res_edges(name, triples)
        if removals or additions:
            self._note_structural(removals, additions)
        return removals, additions

    def _set_proc_chain(self, name, members):
        removed, added = super()._set_proc_chain(name, members)
        if removed or added:
            self._note_structural(removed, added)
        return removed, added

    def _unlink_res_edges(self, name) -> None:
        old = self._res_edges.get(name)
        super()._unlink_res_edges(name)
        if old:
            self._note_structural(old, ())

    def _link_res_edges(self, name, triples) -> None:
        super()._link_res_edges(name, triples)
        if triples:
            self._note_structural((), triples)

    def _unlink_proc_chain(self, name) -> None:
        old = self._proc_members.get(name)
        super()._unlink_proc_chain(name)
        if old:
            self._note_structural(list(zip(old, old[1:])), ())

    def _link_proc_chain(self, name, members) -> None:
        super()._link_proc_chain(name, members)
        if members:
            self._note_structural((), list(zip(members, members[1:])))

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _refresh_active(self) -> None:
        if self._active_dirty:
            dep_mode = self._dep_mode
            self._active_deps = [
                j for j in range(self._ndeps) if dep_mode[j] == 1
            ]
            self._active_dirty = False

    def _durations_stable(self, solution: Solution) -> bool:
        """Cheap pre-sync test (plain C dict comparisons) for whether
        the upcoming sync can change any node duration or pass-through
        weight.  Order-only moves (m1 reorders — the workhorse of the
        annealing walk) re-stamp a processor without touching a single
        duration, so the per-evaluation shadow diff can be skipped for
        them entirely."""
        if (
            solution._resource_of != self._m_res_dict
            or solution._impl_choice != self._m_impl_dict
        ):
            return False
        rev_of = solution._res_rev
        m_rev = self._m_rev
        if rev_of == m_rev:
            return True
        res_kind = self._res_kind
        for name, _rev in rev_of.items() ^ m_rev.items():
            kind = res_kind.get(name)
            if kind is None or kind[0] != "p":
                return False
        return True

    def _collect_dirty(self, stable: bool) -> set:
        """Fold the duration/weight shadow diffs into the structural
        seed set and refresh the shadows.  ``stable`` short-circuits the
        diff when the pre-sync check proved nothing can have changed."""
        seeds = self._dirty_seeds
        if stable and self._values_valid:
            return seeds
        np = self._np
        dur_np = np.array(self._dur)
        if self._values_valid and dur_np.shape == self._dur_shadow.shape:
            diff = np.nonzero(dur_np != self._dur_shadow)[0]
            if diff.size:
                seeds.update(diff.tolist())
            if not self._ordered:
                # Pass-through weights are only ever non-zero under the
                # "edge" bus policy; the default "ordered" policy keeps
                # them at a constant 0.0.
                cw = np.array(self._comm_w)
                diffw = np.nonzero(cw != self._cw_shadow)[0]
                if diffw.size:
                    ntasks = self._ntasks
                    seeds.update(ntasks + int(j) for j in diffw)
                self._cw_shadow = cw
        else:
            self._values_valid = False
            if not self._ordered:
                self._cw_shadow = np.array(self._comm_w)
        self._dur_shadow = dur_np
        return seeds

    def _compute(
        self, solution: Solution
    ) -> Tuple[float, bool, float, Optional[CycleError]]:
        stable = (
            not self._mirror_moved and self._durations_stable(solution)
        )
        self._sync(solution)
        self._mirror_moved = False
        self._refresh_active()
        n = len(self._interner)
        dur = self._dur
        dep_comm = self._dep_comm
        seeds = self._collect_dirty(stable)

        # --- cached cycle verdict (no removals since it was reached) ---
        if self._cycle0 is not None:
            comm_ms = sum(dur[dep_comm[j]] for j in self._active_deps)
            return INFEASIBLE_MS, False, comm_ms, self._cycle0

        # --- persistent order: revalidate, repair, else rebuild --------
        entries = self._orders0
        entry = entries[0] if entries else None
        pending = self._pending_edges
        full_dp = not self._values_valid
        if entry is not None and not entry[2]:
            if pending:
                # Contradicting edges that were since removed (rejected
                # moves get undone) stop mattering; what remains is the
                # exact bridge between the stored order and the live
                # edge set.
                pending[:] = [e for e in pending if self._edge_live(e)]
            if not pending:
                # Every contradicting addition was undone: the stored
                # order is exactly valid again.
                entry[2] = True
            elif len(pending) <= self.MAX_REPAIR_EDGES:
                verdict = self._repair(entry, pending)
                if verdict is True:
                    self.stat_order_repairs += 1
                    entry[2] = True
                    pending.clear()
                elif verdict == "cycle":
                    # Exact detection (single contradicting edge, PK
                    # invariant intact): the realization is cyclic —
                    # no Kahn needed, and the next removal clears the
                    # verdict just like the reference engine's.
                    a, b = pending[0]
                    keys = self._interner.keys()
                    self._cycle0 = exc = CycleError(
                        "realization contains a cycle",
                        cycle=[keys[b], keys[a]],
                    )
                    comm_ms = sum(
                        dur[dep_comm[j]] for j in self._active_deps
                    )
                    return INFEASIBLE_MS, False, comm_ms, exc
                else:
                    entry = None
            else:
                entry = None
        if entry is None or not entry[2]:
            # Before paying for a full Kahn, check whether the last
            # detected cycle is simply still there: every witness edge
            # being live proves cyclicity exactly (churny walks bounce
            # in and out of infeasible regions; removals elsewhere in
            # the graph clear ``_cycle0`` without breaking the cycle).
            witness = self._cycle_witness
            if witness is not None:
                if all(self._witness_edge_live(u, v) for u, v in witness):
                    self.stat_cycle_witness_hits += 1
                    keys = self._interner.keys()
                    self._cycle0 = exc = CycleError(
                        "realization contains a cycle",
                        cycle=[keys[u] for u, _v in witness],
                    )
                    comm_ms = sum(
                        dur[dep_comm[j]] for j in self._active_deps
                    )
                    return INFEASIBLE_MS, False, comm_ms, exc
                self._cycle_witness = None
            self.stat_order_rebuilds += 1
            try:
                order = self._kahn_base(n)
            except CycleError as exc:
                self._cycle0 = exc
                self._cycle_witness = self._find_cycle()
                comm_ms = sum(dur[dep_comm[j]] for j in self._active_deps)
                return INFEASIBLE_MS, False, comm_ms, exc
            pos = [0] * n
            for idx, v in enumerate(order):
                pos[v] = idx
            entry = [order, pos, True]
            entries.clear()
            entries.append(entry)
            pending.clear()
            # Note: a rebuilt *order* does not invalidate the persistent
            # *values* — they depend on the graph, not on the order —
            # so the suffix DP below still applies.
        order0 = entry[0]
        self._pos0 = pos0 = entry[1]

        # --- persistent base DP: full or suffix ------------------------
        if full_dp:
            self._dp_range(order0, 0)
            self._values_valid = True
        elif seeds:
            self._dp_range(order0, min(pos0[v] for v in seeds))
        seeds.clear()

        finish0 = self._finish0
        active = self._active_deps
        if not active:
            return max(finish0), True, 0.0, None

        # Serialize bus transactions: ASAP order in the unserialized
        # graph, ties broken by (source task, destination task) — the
        # exact deterministic policy of SearchGraphBuilder._serialize_bus.
        starts0 = self._starts0
        srct = self._dep_srct
        dstt = self._dep_dstt
        ntasks = self._ntasks
        keyed = sorted(
            (starts0[ntasks + j], srct[j], dstt[j], j) for j in active
        )
        perm = [key[3] for key in keyed]
        chain_pred = self._chain_pred
        chain_next = self._chain_next
        if perm != self._chain_perm:
            if self._chain_perm:
                for j in self._chain_perm:
                    comm = dep_comm[j]
                    chain_pred[comm] = -1
                    chain_next[comm] = -1
            prev = dep_comm[perm[0]]
            for j in perm[1:]:
                comm = dep_comm[j]
                chain_pred[comm] = prev
                chain_next[prev] = comm
                prev = comm
            self._chain_perm = perm
        # The serialized values are the base values plus increase-only
        # chain constraints, materialized into separate buffers so the
        # persistent base values stay untouched.
        starts1 = self._starts1
        finish1 = self._finish1
        starts1[:] = starts0
        finish1[:] = finish0
        if not self._chain_overlay(perm):
            # Overlay propagation overran its budget: validate the
            # serialized realization the reference way.
            indeg1 = list(self._indeg_total)
            for j in perm[1:]:
                indeg1[dep_comm[j]] += 1
            try:
                order1 = self._kahn_chained(n, indeg1, chain_next)
            except CycleError as exc:
                comm_ms = sum(dur[dep_comm[j]] for j in perm)
                return INFEASIBLE_MS, False, comm_ms, exc
            self._dp_serialized(order1)
        comm_ms = sum(dur[dep_comm[j]] for j in perm)
        return max(finish1), True, comm_ms, None

    # ------------------------------------------------------------------
    # persistent order maintenance
    # ------------------------------------------------------------------
    def _edge_live(self, edge: Tuple[int, int]) -> bool:
        """Is the once-added edge still present in the live layers?"""
        a, b = edge
        if self._proc_next[a] == b:
            return True
        return b in self._succ_seq[a]

    def _witness_edge_live(self, u: int, v: int) -> bool:
        """Liveness of a witness-cycle edge (may be a static-layer edge,
        which never dies)."""
        lo = self._ntasks
        hi = lo + self._ndeps
        if lo <= v < hi and self._dep_src[v - lo] == u:
            return True
        if lo <= u < hi and self._dep_dst[u - lo] == v:
            return True
        return self._edge_live((u, v))

    def _find_cycle(self) -> Optional[List[Tuple[int, int]]]:
        """One concrete cycle of the live graph as an edge list (DFS
        back-edge extraction); None when the graph is acyclic.  Runs
        only on the Kahn-failure path."""
        n = len(self._interner)
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        color = [0] * n  # 0 = white, 1 = on stack, 2 = done

        def successors(x: int) -> List[int]:
            out = list(succ_static[x])
            out.extend(succ_seq[x])
            nxt = proc_next[x]
            if nxt >= 0:
                out.append(nxt)
            return out

        for root in range(n):
            if color[root]:
                continue
            path = [root]
            stack = [iter(successors(root))]
            color[root] = 1
            while stack:
                advanced = False
                for y in stack[-1]:
                    if color[y] == 0:
                        color[y] = 1
                        path.append(y)
                        stack.append(iter(successors(y)))
                        advanced = True
                        break
                    if color[y] == 1:
                        cycle = path[path.index(y):] + [y]
                        return list(zip(cycle, cycle[1:]))
                if not advanced:
                    color[path.pop()] = 2
                    stack.pop()
        return None

    def _repair(self, entry: List, pending: List[Tuple[int, int]]):
        """Repair the persistent order for the (live) contradicting
        added edges — Pearce/Kelly region reordering, one edge at a
        time.

        A single repaired edge is sound by the PK invariant (every other
        live edge is position-consistent when the repair runs); after
        multiple repairs the invariant cannot be assumed — the adjacency
        already contains the later pending edges — so the final order is
        re-verified against every live edge in O(E).  Returns ``True``
        on success, ``"cycle"`` when a single-edge repair proves the
        graph cyclic (exact under the invariant), or ``False`` when the
        caller should fall back to Kahn (possible cycle among several
        contradicting edges, or failed verification).
        """
        order, pos, _valid = entry
        repaired = 0
        for a, b in pending:
            if pos[a] < pos[b]:
                continue  # an earlier repair already satisfied it
            if not self._pk_insert(order, pos, a, b):
                if repaired == 0 and len(pending) == 1:
                    return "cycle"
                return False
            repaired += 1
        if repaired > 1 and not self._verify_order(pos):
            return False
        return True

    def _pk_insert(self, order: List[int], pos: List[int], a: int, b: int) -> bool:
        """Reorder the affected region for one edge ``a -> b`` with
        ``pos[a] >= pos[b]``: forward-reachable nodes of ``b`` and
        backward-reachable nodes of ``a`` (both within the region) are
        remapped onto their own position pool, backward block first.
        Returns False when the region search sees a cycle."""
        lower = pos[b]
        upper = pos[a]
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        forward = {b}
        stack = [b]
        while stack:
            x = stack.pop()
            for y in succ_static[x]:
                if pos[y] <= upper and y not in forward:
                    if y == a:
                        return False
                    forward.add(y)
                    stack.append(y)
            for y in succ_seq[x]:
                if pos[y] <= upper and y not in forward:
                    if y == a:
                        return False
                    forward.add(y)
                    stack.append(y)
            y = proc_next[x]
            if y >= 0 and pos[y] <= upper and y not in forward:
                if y == a:
                    return False
                forward.add(y)
                stack.append(y)
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        backward = {a}
        stack = [a]
        while stack:
            x = stack.pop()
            if lo <= x < hi:
                preds = (comm_src[x - lo],)
            else:
                preds = pred_comms[x]
            for y in preds:
                if pos[y] >= lower and y not in backward:
                    if y == b:
                        return False
                    backward.add(y)
                    stack.append(y)
            for y, _w in pred_seq[x]:
                if pos[y] >= lower and y not in backward:
                    if y == b:
                        return False
                    backward.add(y)
                    stack.append(y)
            y = proc_prev[x]
            if y >= 0 and pos[y] >= lower and y not in backward:
                if y == b:
                    return False
                backward.add(y)
                stack.append(y)
        # Merge: the affected nodes keep their position pool; the
        # backward block (everything that must precede ``a``, including
        # ``a``) goes first, the forward block second, each in its
        # existing relative order.
        affected = sorted(backward, key=pos.__getitem__)
        affected += sorted(forward, key=pos.__getitem__)
        pool = sorted(pos[v] for v in affected)
        for p, v in zip(pool, affected):
            pos[v] = p
            order[p] = v
        return True

    def _verify_order(self, pos: List[int]) -> bool:
        """O(E) check that ``pos`` respects every live edge."""
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        for x in range(len(pos)):
            px = pos[x]
            for y in succ_static[x]:
                if px >= pos[y]:
                    return False
            for y in succ_seq[x]:
                if px >= pos[y]:
                    return False
            y = proc_next[x]
            if y >= 0 and px >= pos[y]:
                return False
        return True

    # ------------------------------------------------------------------
    # persistent base DP
    # ------------------------------------------------------------------
    def _dp_range(self, order: List[int], start: int) -> None:
        """The reference DP loop over ``order[start:]`` into the
        persistent base buffers.  Values before ``start`` are reused:
        a node's value only depends on its predecessors — all at
        earlier positions in a valid order — so recomputing from the
        earliest position whose node's inputs changed reproduces the
        full DP bit-for-bit."""
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        dur = self._dur
        starts = self._starts0
        finish = self._finish0
        for idx in range(start, len(order)):
            v = order[idx]
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0  # mirror the reference DP's 0.0 floor
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            starts[v] = best
            finish[v] = best + dur[v]

    def _chain_overlay(self, perm: List[int]) -> bool:
        """Increase-only propagation of the bus-chain constraints over
        the serialized buffers (seeded from binding chain edges exactly
        like the incremental engine's ``_dp_chain_delta``).  Returns
        False when the pop budget trips — then the caller re-validates
        with the chained Kahn."""
        dep_comm = self._dep_comm
        starts = self._starts1
        finish = self._finish1
        chain_pred = self._chain_pred
        chain_next = self._chain_next
        pos0 = self._pos0
        dirty = self._dirty
        # The heap holds bare positions: ``pos0`` is a bijection, so an
        # int compares exactly like the old ``(pos, node)`` tuple (ties
        # are impossible) while skipping the tuple allocation and the
        # lexicographic compare on every push/pop — the overlay is the
        # hottest loop of the persistent path.
        order0 = self._orders0[0][0]
        heap: List[int] = []
        push = heapq.heappush
        prev = dep_comm[perm[0]]
        for j in perm[1:]:
            c = dep_comm[j]
            if finish[prev] > starts[c] and not dirty[c]:
                dirty[c] = True
                heap.append(pos0[c])
            prev = c
        if not heap:
            return True
        heapq.heapify(heap)
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        succ_static = self._succ_static
        succ_seq = self._succ_seq
        proc_next = self._proc_next
        dur = self._dur
        pop = heapq.heappop
        budget = 2 * len(self._interner) + 64
        pops = 0
        while heap:
            pops += 1
            if pops > budget:
                while heap:
                    dirty[order0[pop(heap)]] = False
                return False
            v = order0[pop(heap)]
            if not dirty[v]:
                continue
            dirty[v] = False
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0
                u = chain_pred[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            if best != starts[v]:
                starts[v] = best
                finish[v] = best + dur[v]
                for nxt in succ_static[v]:
                    if not dirty[nxt]:
                        dirty[nxt] = True
                        push(heap, pos0[nxt])
                for nxt in succ_seq[v]:
                    if not dirty[nxt]:
                        dirty[nxt] = True
                        push(heap, pos0[nxt])
                nxt = proc_next[v]
                if nxt >= 0 and not dirty[nxt]:
                    dirty[nxt] = True
                    push(heap, pos0[nxt])
                nxt = chain_next[v]
                if nxt >= 0 and not dirty[nxt]:
                    dirty[nxt] = True
                    push(heap, pos0[nxt])
        return True

    def _dp_serialized(self, order: List[int]) -> None:
        """Full serialized DP along ``order`` into the overlay buffers
        (the rare path after an overlay-budget overrun)."""
        lo = self._ntasks
        hi = lo + self._ndeps
        comm_src = self._dep_src
        comm_w = self._comm_w
        pred_comms = self._pred_comms
        pred_seq = self._pred_seq
        proc_prev = self._proc_prev
        chain_pred = self._chain_pred
        dur = self._dur
        starts = self._starts1
        finish = self._finish1
        for v in order:
            if lo <= v < hi:
                j = v - lo
                best = finish[comm_src[j]] + comm_w[j]
                if best < 0.0:
                    best = 0.0
                u = chain_pred[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
            else:
                best = 0.0
                for c in pred_comms[v]:
                    candidate = finish[c]
                    if candidate > best:
                        best = candidate
                u = proc_prev[v]
                if u >= 0:
                    candidate = finish[u]
                    if candidate > best:
                        best = candidate
                for u, w in pred_seq[v]:
                    candidate = finish[u] + w
                    if candidate > best:
                        best = candidate
            starts[v] = best
            finish[v] = best + dur[v]

    # ------------------------------------------------------------------
    # batched evaluation (the NumPy lanes)
    # ------------------------------------------------------------------
    def _capture_lane(self, solution: Solution) -> _Lane:
        """Sync the mirror to ``solution`` and snapshot the dense state
        of one candidate lane (no DP here — the kernels do that for the
        whole batch at once)."""
        try:
            self._sync(solution)
        except Exception:
            self._invalidate()
            raise
        self._mirror_moved = True
        self._refresh_active()
        np = self._np
        seq_src: List[int] = []
        seq_dst: List[int] = []
        seq_w: List[float] = []
        for triples in self._res_edges.values():
            for a, b, w in triples:
                seq_src.append(a)
                seq_dst.append(b)
                seq_w.append(w)
        for members in self._proc_members.values():
            if len(members) > 1:
                prev = members[0]
                for v in members[1:]:
                    seq_src.append(prev)
                    seq_dst.append(v)
                    seq_w.append(0.0)
                    prev = v
        initial = 0.0
        dynamic = 0.0
        clbs = 0
        num_contexts = 0
        rc_stats = self._rc_stats
        for name, rc in self._rc_list:
            stats = rc_stats.get(name)
            if stats is not None:
                num_contexts += stats[0]
                initial += stats[1]
                dynamic += stats[2]
                clbs += stats[3]
            else:
                initial += rc.initial_reconfiguration_ms(solution)
                dynamic += rc.dynamic_reconfiguration_ms(solution)
                contexts = solution.contexts(name)
                num_contexts += len(contexts)
                clbs += sum(
                    solution.context_clbs(name, k)
                    for k in range(len(contexts))
                )
        return _Lane(
            dur=np.array(self._dur),
            comm_w=np.array(self._comm_w),
            seq_src=seq_src,
            seq_dst=seq_dst,
            seq_w=seq_w,
            active=list(self._active_deps),
            num_contexts=num_contexts,
            hw=self._hw_count,
            initial_ms=initial,
            dynamic_ms=dynamic,
            clbs=clbs,
        )

    def evaluate_batch(
        self,
        solution: Solution,
        moves: Sequence,
        cost_function=None,
    ) -> List[Optional[Tuple[Evaluation, Optional[float]]]]:
        """Vectorized batch scoring: capture each candidate as a dense
        lane, then run the two fused frontier kernels over the whole
        batch.  Falls back to the reference per-move loop when the cost
        function reads the candidate solution itself (only the
        evaluation-pure costs, e.g. ``MakespanCost``, can be computed
        after the candidates have been undone), or when the batch is
        too small for the kernels to amortize their dispatch overhead
        (see :data:`KERNEL_BATCH_MIN_WORK`; ``dispatch="kernel"``
        bypasses the threshold, ``dispatch="scalar"`` always takes the
        reference loop)."""
        if cost_function is not None and not getattr(
            cost_function, "solution_independent", False
        ):
            self.stat_scalar_batches += 1
            self.stat_scalar_lanes += len(moves)
            return super().evaluate_batch(solution, moves, cost_function)
        if self.dispatch == "scalar":
            self.stat_scalar_batches += 1
            self.stat_scalar_lanes += len(moves)
            return super().evaluate_batch(solution, moves, cost_function)
        if self.dispatch != "kernel" and (
            len(moves) * len(self._interner) < self.kernel_batch_min_work
        ):
            self.stat_scalar_batches += 1
            self.stat_scalar_lanes += len(moves)
            return super().evaluate_batch(solution, moves, cost_function)
        self.stat_kernel_batches += 1
        self.stat_kernel_lanes += len(moves)
        lanes: List[Optional[_Lane]] = []
        for move in moves:
            try:
                move.apply(solution)
            except InfeasibleMoveError:
                lanes.append(None)
                continue
            try:
                lanes.append(self._capture_lane(solution))
            finally:
                move.undo(solution)
        evaluations = iter(
            self._evaluate_lanes([lane for lane in lanes if lane is not None])
        )
        results: List[Optional[Tuple[Evaluation, Optional[float]]]] = []
        for lane in lanes:
            if lane is None:
                results.append(None)
            else:
                evaluation = next(evaluations)
                cost = (
                    cost_function(solution, evaluation)
                    if cost_function is not None
                    else None
                )
                results.append((evaluation, cost))
        return results

    def _evaluate_lanes(self, lanes: List[_Lane]) -> List[Evaluation]:
        if not lanes:
            return []
        from repro.graph.kernels import batched_longest_path, lane_makespans

        np = self._np
        self.evaluations += len(lanes)
        K = len(lanes)
        n = max(lane.dur.shape[0] for lane in lanes)
        ntasks = self._ntasks
        ndeps = self._ndeps
        compiled = self.compiled
        static_src = compiled.static_edge_src_np
        static_dst = compiled.static_edge_dst_np
        durations = np.zeros(K * n)
        static_w = np.zeros((K, 2 * ndeps))
        offsets = np.arange(K, dtype=np.int64)[:, None] * n
        e_src = [(static_src[None, :] + offsets).ravel()]
        e_dst = [(static_dst[None, :] + offsets).ravel()]
        for k, lane in enumerate(lanes):
            durations[k * n : k * n + lane.dur.shape[0]] = lane.dur
            static_w[k, :ndeps] = lane.comm_w
            if lane.seq_src:
                base = k * n
                e_src.append(np.asarray(lane.seq_src, dtype=np.int64) + base)
                e_dst.append(np.asarray(lane.seq_dst, dtype=np.int64) + base)
        e_w = [static_w.ravel()]
        e_w.extend(
            np.asarray(lane.seq_w)
            for lane in lanes
            if lane.seq_src
        )
        edge_src = np.concatenate(e_src)
        edge_dst = np.concatenate(e_dst)
        edge_w = np.concatenate(e_w)
        starts, finish, feasible = batched_longest_path(
            K, n, edge_src, edge_dst, edge_w, durations
        )

        # Serialized overlay: each feasible lane's deterministic bus
        # chain (ASAP order, (src task, dst task) tie-break) becomes a
        # set of zero-weight chain edges for the second fused pass.
        dep_comm = self._dep_comm
        srct = self._dep_srct
        dstt = self._dep_dstt
        perms: List[Optional[List[int]]] = [None] * K
        chain_src: List[int] = []
        chain_dst: List[int] = []
        for k, lane in enumerate(lanes):
            if not feasible[k] or not lane.active:
                continue
            base = k * n
            keyed = sorted(
                (starts[base + ntasks + j], srct[j], dstt[j], j)
                for j in lane.active
            )
            perm = [key[3] for key in keyed]
            perms[k] = perm
            prev = dep_comm[perm[0]]
            for j in perm[1:]:
                comm = dep_comm[j]
                chain_src.append(base + prev)
                chain_dst.append(base + comm)
                prev = comm
        if chain_src:
            starts2, finish2, feasible2 = batched_longest_path(
                K,
                n,
                np.concatenate(
                    [edge_src, np.asarray(chain_src, dtype=np.int64)]
                ),
                np.concatenate(
                    [edge_dst, np.asarray(chain_dst, dtype=np.int64)]
                ),
                np.concatenate([edge_w, np.zeros(len(chain_src))]),
                durations,
            )
        else:
            finish2, feasible2 = finish, feasible
        spans_base = lane_makespans(finish, feasible, K, n)
        spans_serialized = (
            lane_makespans(finish2, feasible2, K, n)
            if chain_src
            else spans_base
        )

        results: List[Evaluation] = []
        for k, lane in enumerate(lanes):
            perm = perms[k]
            if not feasible[k]:
                makespan = INFEASIBLE_MS
                feasible_k = False
                comm_ms = float(
                    sum(lane.dur[dep_comm[j]] for j in lane.active)
                )
            elif perm is None:
                makespan = float(spans_base[k])
                feasible_k = True
                comm_ms = 0.0
            elif not feasible2[k]:
                makespan = INFEASIBLE_MS
                feasible_k = False
                comm_ms = float(sum(lane.dur[dep_comm[j]] for j in perm))
            else:
                makespan = float(spans_serialized[k])
                feasible_k = True
                comm_ms = float(sum(lane.dur[dep_comm[j]] for j in perm))
            results.append(
                Evaluation(
                    makespan_ms=makespan,
                    feasible=feasible_k,
                    num_contexts=lane.num_contexts,
                    hw_tasks=lane.hw,
                    sw_tasks=ntasks - lane.hw,
                    initial_reconfig_ms=lane.initial_ms,
                    dynamic_reconfig_ms=lane.dynamic_ms,
                    comm_ms=comm_ms,
                    clbs_used=lane.clbs,
                )
            )
        return results


class CrossChainEvaluator:
    """K per-chain engines over one compile pass, scored in one batch.

    The population annealer (:class:`repro.sa.population.PopulationAnnealer`)
    runs K independent chains, each with its own
    :class:`~repro.mapping.solution.Solution`.  Re-pointing one
    stateful engine across K solutions every round would defeat the
    incremental mirror (each sync would diff away the previous chain's
    whole assignment), so each chain gets a permanently-bound engine of
    its own and pays only its own chain's delta.  For the stateful
    engines the compile pass is shared: chain 0 compiles, chains 1..K-1
    receive :meth:`CompiledInstance.fork` views, so construction stays
    O(compile + K · mirror) instead of O(K · compile).

    ``propose_moves`` + ``resolve`` is the annealer hot path: each
    chain's permanently-bound stateful engine scores its proposed move
    through the persistent delta path (apply → delta-sync → read the
    makespan) and leaves it applied; the annealer's accept keeps the
    already-synced engine state (commit-on-accept — no undo, no
    re-apply, no second delta-diff), a reject undoes the move and lets
    the engine's next delta-sync absorb the O(delta) reverse patch.
    A depth-aware dispatcher picks that
    path or the PR 6 fused-lane kernel path from the compiled graph
    shape (``dispatch="auto"``, overridable per
    :data:`ArrayEngine.DISPATCH_MODES`): the frontier-synchronous
    kernels only amortize on shallow/wide graphs, and the paper's
    instances anneal ~300 levels deep.  ``evaluate_moves`` remains the
    pure (solutions-left-untouched) cross-chain kernel API.
    """

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        chains: int,
        engine: str = "array",
        bus_policy: str = "ordered",
    ) -> None:
        if chains < 1:
            raise ConfigurationError(
                f"chains must be >= 1, got {chains!r}"
            )
        self.application = application
        self.architecture = architecture
        self.kind = engine["kind"] if isinstance(engine, dict) else engine
        self.bus_policy = bus_policy
        # Every chain's engine — forks included — goes through
        # make_engine, so per-chain construction cannot bypass engine-
        # option validation; chains 1..K-1 reuse chain 0's compile pass
        # through CompiledInstance.fork.
        first = make_engine(engine, application, architecture, bus_policy)
        engines: List[EvaluationEngine] = [first]
        compiled = getattr(first, "compiled", None)
        for _ in range(1, chains):
            engines.append(
                make_engine(
                    engine,
                    application,
                    architecture,
                    bus_policy,
                    compiled=None if compiled is None else compiled.fork(),
                )
            )
        self.engines = engines
        #: Resolved cross-chain dispatch: ``"kernel"`` scores rounds
        #: through the fused-lane path, ``"scalar"`` through the
        #: per-chain persistent transactions.  ``"auto"`` consults the
        #: compile pass's mean level width — deep/narrow instances
        #: (the whole bundled corpus) ride the scalar persistent DP.
        self.dispatch = self._resolve_dispatch(first)
        self._pending_persistent = False

    @staticmethod
    def _resolve_dispatch(first: EvaluationEngine) -> str:
        if not isinstance(first, ArrayEngine):
            return "scalar"
        return first.resolved_dispatch()

    # ------------------------------------------------------------------
    @property
    def chains(self) -> int:
        return len(self.engines)

    @property
    def evaluations(self) -> int:
        """Total candidate evaluations across all chains."""
        return sum(engine.evaluations for engine in self.engines)

    def telemetry_counters(self) -> Dict[str, int]:
        """Engine internals summed across all chains, plus the resolved
        cross-chain dispatch route (0 = scalar, 1 = kernel)."""
        out: Dict[str, int] = {}
        for engine in self.engines:
            for name, value in engine.telemetry_counters().items():
                out[name] = out.get(name, 0) + value
        out["dispatch_kernel"] = 1 if self.dispatch == "kernel" else 0
        return out

    def evaluate(self, chain: int, solution: Solution) -> Evaluation:
        """Scalar evaluation of one chain's current state."""
        return self.engines[chain].evaluate(solution)

    def _check_arity(self, solutions: Sequence, moves: Sequence) -> None:
        if len(solutions) != len(self.engines) or len(moves) != len(
            self.engines
        ):
            raise ConfigurationError(
                f"expected {len(self.engines)} solutions and moves, got "
                f"{len(solutions)} and {len(moves)}"
            )

    # ------------------------------------------------------------------
    def propose_moves(
        self,
        solutions: Sequence[Solution],
        moves: Sequence,
        cost_function=None,
    ) -> List[Optional[Tuple[Evaluation, Optional[float]]]]:
        """Score chain k's proposed move against chain k's state, for
        all chains at once, as open transactions.

        On the persistent path (``dispatch="scalar"``, or a cost
        function that reads the candidate solution) every scored move
        is left **applied** with its engine synced to the candidate;
        the caller must then call :meth:`resolve` for each non-``None``
        outcome.  On the kernel path the call is pure (it delegates to
        :meth:`evaluate_moves`) and :meth:`resolve` re-applies accepted
        moves.  ``moves[k]`` may be ``None`` (no proposal this round);
        the k-th result is then ``None``, as it is when the move's
        application raises :class:`InfeasibleMoveError` — neither opens
        a transaction.  Outcomes are bit-identical between the two
        paths for evaluation-pure cost functions (engine parity)."""
        self._check_arity(solutions, moves)
        kernel = self.dispatch == "kernel" and (
            cost_function is None
            or getattr(cost_function, "solution_independent", False)
        )
        if kernel:
            self._pending_persistent = False
            return self.evaluate_moves(solutions, moves, cost_function)
        self._pending_persistent = True
        results: List[Optional[Tuple[Evaluation, Optional[float]]]] = []
        for engine, solution, move in zip(self.engines, solutions, moves):
            if move is None:
                results.append(None)
                continue
            results.append(engine.propose_move(solution, move, cost_function))
        return results

    def resolve(
        self, chain: int, solution: Solution, move, accept: bool
    ) -> None:
        """Finish one chain's transaction from the last
        :meth:`propose_moves` round: commit-on-accept keeps the applied
        move and the engine's already-synced state; reject undoes the
        move (the engine's next delta-sync absorbs the reverse patch).
        On the kernel path (pure scoring) an accepted move is applied
        here instead."""
        if self._pending_persistent:
            engine = self.engines[chain]
            if accept:
                engine.accept_move(solution, move)
            else:
                engine.reject_move(solution, move)
        elif accept:
            move.apply(solution)

    # ------------------------------------------------------------------
    def evaluate_moves(
        self,
        solutions: Sequence[Solution],
        moves: Sequence,
        cost_function=None,
    ) -> List[Optional[Tuple[Evaluation, Optional[float]]]]:
        """Score chain k's proposed move against chain k's state, for
        all chains at once.  ``moves[k]`` may be ``None`` (no proposal
        this round); the k-th result is then ``None``, as it is when the
        move's application raises :class:`InfeasibleMoveError`.  Every
        solution is left exactly as it came in — accepted moves replay
        their cached decisions on re-apply."""
        self._check_arity(solutions, moves)
        batched = self.kind == "array" and (
            cost_function is None
            or getattr(cost_function, "solution_independent", False)
        )
        if not batched:
            results: List[Optional[Tuple[Evaluation, Optional[float]]]] = []
            for engine, solution, move in zip(self.engines, solutions, moves):
                if move is None:
                    results.append(None)
                    continue
                results.append(
                    engine.evaluate_batch(solution, [move], cost_function)[0]
                )
            return results
        lanes: List[Optional[_Lane]] = []
        for engine, solution, move in zip(self.engines, solutions, moves):
            if move is None:
                lanes.append(None)
                continue
            try:
                move.apply(solution)
            except InfeasibleMoveError:
                lanes.append(None)
                continue
            try:
                lanes.append(engine._capture_lane(solution))
            finally:
                move.undo(solution)
        # All forks share the dependency tables the lane scorer reads,
        # so chain 0's engine can score every chain's lane in one fused
        # kernel pass (lanes are padded to the widest interner).
        evaluations = iter(
            self.engines[0]._evaluate_lanes(
                [lane for lane in lanes if lane is not None]
            )
        )
        results = []
        for solution, lane in zip(solutions, lanes):
            if lane is None:
                results.append(None)
                continue
            evaluation = next(evaluations)
            cost = (
                cost_function(solution, evaluation)
                if cost_function is not None
                else None
            )
            results.append((evaluation, cost))
        return results


#: Engine options accepted in the ``{"kind": ..., **options}`` mapping
#: form (all array-engine-only).
ENGINE_OPTIONS = ("dispatch", "kernel_batch_min_work")


def make_engine(
    name,
    application: Application,
    architecture: Architecture,
    bus_policy: str = "ordered",
    compiled=None,
) -> EvaluationEngine:
    """Instantiate an evaluation engine by name (``"full"``,
    ``"incremental"`` or ``"array"``); raises
    :class:`ConfigurationError` otherwise.  ``name`` may also be a
    mapping ``{"kind": <name>, **options}`` carrying the array engine's
    ``kernel_batch_min_work`` threshold and/or ``dispatch`` mode.
    ``compiled`` hands an existing :class:`CompiledInstance` (or fork)
    to the stateful engines so K engines can share one compile pass;
    the stateless reference engine ignores it."""
    options: Dict[str, object] = {}
    if isinstance(name, dict):
        options = dict(name)
        name = options.pop("kind", None)
    unknown = set(options) - set(ENGINE_OPTIONS)
    if unknown:
        raise ConfigurationError(
            f"unknown engine option(s) {sorted(unknown)}; "
            f"accepted: {sorted(ENGINE_OPTIONS)}"
        )
    if options and name != "array":
        raise ConfigurationError(
            f"engine option(s) {sorted(options)} apply to the 'array' "
            f"engine only, got engine {name!r}"
        )
    if name == "full":
        return FullRebuildEngine(application, architecture, bus_policy)
    if name == "incremental":
        return IncrementalEngine(
            application, architecture, bus_policy, compiled=compiled
        )
    if name == "array":
        return ArrayEngine(
            application, architecture, bus_policy, compiled=compiled,
            **options,
        )
    raise ConfigurationError(
        f"engine must be one of {ENGINES}, got {name!r}"
    )
