"""Discrete-event execution simulator — an independent timing oracle.

The evaluator scores a solution analytically (longest path of the
search graph).  This module *executes* the same realization with an
event-driven simulator in which every exclusive resource (processor,
bus, the DRLC's context sequence) is a server:

* the processor runs its tasks in the solution's total order, one at a
  time;
* the DRLC runs contexts strictly in sequence; a context begins with a
  partial reconfiguration of ``tR × nCLB(context)`` (the first context's
  being the "initial configuration") and then executes its member tasks
  with full precedence parallelism;
* the bus serializes transfers in the realized transaction order;
* a task starts when its resource grants it *and* all its inputs have
  arrived.

For every feasible realization the simulated makespan must equal the
evaluator's longest path — a strong cross-check exercised by unit tests
and a hypothesis property test (any disagreement means one of the two
models is wrong).  The simulator additionally yields per-event logs
useful for debugging mappings.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.arch.reconfigurable import CONFIG_NODE
from repro.errors import CycleError, MappingError
from repro.mapping.search_graph import COMM_NODE, SearchGraph
from repro.mapping.solution import Solution


@dataclass(frozen=True, order=True)
class SimEvent:
    """One activity execution recorded by the simulator."""

    start_ms: float
    end_ms: float
    resource: str
    label: str


@dataclass
class SimulationResult:
    makespan_ms: float
    events: List[SimEvent] = field(default_factory=list)

    def events_on(self, resource: str) -> List[SimEvent]:
        return sorted(e for e in self.events if e.resource == resource)

    def check_exclusive(self, resource: str) -> bool:
        """No two activities overlap on an exclusive resource."""
        events = self.events_on(resource)
        for a, b in zip(events, events[1:]):
            if b.start_ms < a.end_ms - 1e-9:
                return False
        return True


class ExecutionSimulator:
    """Event-driven execution of a realized solution.

    The simulation is driven by the search graph (so both models see
    the identical realization: same sequentialization edges, same
    serialized bus order, same durations).  Rather than re-deriving
    resource exclusiveness operationally, the simulator performs a
    causality-faithful forward sweep: an activity starts when all its
    search-graph predecessors have finished, and resource exclusiveness
    is *verified* afterwards (the sequentialization edges are what
    guarantee it — if they did not, the realization would be buggy and
    the check fails loudly).
    """

    def __init__(self, solution: Solution, graph: SearchGraph) -> None:
        self.solution = solution
        self.graph = graph

    # ------------------------------------------------------------------
    def run(self, verify_exclusive: bool = True) -> SimulationResult:
        """Simulate to completion; raises on cyclic realizations."""
        graph = self.graph
        dag = graph.dag
        indeg = {n: dag.in_degree(n) for n in dag.nodes()}
        ready_at: Dict[Hashable, float] = {
            n: 0.0 for n, d in indeg.items() if d == 0
        }
        # (time, tiebreak, node) priority queue of start events.
        counter = itertools.count()
        queue: List[Tuple[float, int, Hashable]] = [
            (0.0, next(counter), n) for n in sorted(ready_at, key=str)
        ]
        heapq.heapify(queue)
        finished: Dict[Hashable, float] = {}
        events: List[SimEvent] = []
        processed = 0

        while queue:
            start, _, node = heapq.heappop(queue)
            duration = graph.duration(node)
            end = start + duration
            finished[node] = end
            processed += 1
            events.append(self._event(node, start, end))
            for succ in dag.successors(node):
                arrival = end + dag.edge_weight(node, succ)
                ready_at[succ] = max(ready_at.get(succ, 0.0), arrival)
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(
                        queue, (ready_at[succ], next(counter), succ)
                    )
        if processed != len(indeg):
            raise CycleError(
                "simulation deadlock: realization contains a cycle"
            )

        makespan = max((e.end_ms for e in events), default=0.0)
        result = SimulationResult(makespan_ms=makespan, events=events)
        if verify_exclusive:
            self._verify_exclusive(result)
        return result

    # ------------------------------------------------------------------
    def _event(self, node: Hashable, start: float, end: float) -> SimEvent:
        app = self.solution.application
        if isinstance(node, tuple) and node and node[0] == COMM_NODE:
            _, src, dst = node
            return SimEvent(
                start, end, self.solution.architecture.bus.name,
                f"{app.task(src).name}->{app.task(dst).name}",
            )
        if isinstance(node, tuple) and node and node[0] == CONFIG_NODE:
            return SimEvent(start, end, node[1], "initial_config")
        where = self.solution.context_of(node)
        resource = (
            f"{where[0]}/ctx{where[1]}"
            if where is not None
            else self.solution.resource_name_of(node)
        )
        return SimEvent(start, end, resource, app.task(node).name)

    def _verify_exclusive(self, result: SimulationResult) -> None:
        """Exclusive servers must never overlap: processors (their Esw
        chain serializes them), the bus (transaction chain), and the
        DRLC's successive contexts (Ehw edges)."""
        arch = self.solution.architecture
        for proc in arch.processors():
            if not result.check_exclusive(proc.name):
                raise MappingError(
                    f"simulation found overlapping tasks on processor "
                    f"{proc.name!r}: sequentialization edges are broken"
                )
        if not result.check_exclusive(arch.bus.name):
            raise MappingError(
                "simulation found overlapping bus transactions"
            )
        for rc in arch.reconfigurable_circuits():
            spans: List[Tuple[float, float]] = []
            for k in range(len(self.solution.contexts(rc.name))):
                ctx_events = result.events_on(f"{rc.name}/ctx{k}")
                if ctx_events:
                    spans.append(
                        (
                            min(e.start_ms for e in ctx_events),
                            max(e.end_ms for e in ctx_events),
                        )
                    )
            for (s0, e0), (s1, _) in zip(spans, spans[1:]):
                if s1 < e0 - 1e-9:
                    raise MappingError(
                        f"simulation found overlapping contexts on "
                        f"{rc.name!r}: GTLP order is broken"
                    )


def simulate(solution: Solution, graph: SearchGraph) -> SimulationResult:
    """Convenience wrapper: simulate a realized solution."""
    return ExecutionSimulator(solution, graph).run()
