"""Deterministic decode-or-repair of persisted solution documents.

Warm-started exploration seeds a search from the best solution of a
*donor* run on a near-identical instance.  The donor document may no
longer decode strictly against the new instance — tasks appear or
vanish, implementation lists shrink, DRLCs lose capacity, resources get
renamed away.  :func:`seed_solution` rebuilds as much of the donor
placement as the new instance admits and deterministically repairs the
rest, with **no randomness**: the same (document, instance) pair always
yields the same seed solution.

Repair proceeds in two stages:

1. *Replay.*  Implementation choices out of range are clamped to the
   largest valid index; placements the new instance rejects (vanished
   resources, capacity overflow, lost hardware capability) fall back to
   the first processor, inserted right after their last predecessor in
   that order; tasks the donor never saw are placed the same way.
2. *Feasibility gate.*  The replayed solution is scored once.  Cross-
   resource serialization (the DRLC's strict context sequence) can
   make a placement-wise valid replay cyclic, so an infeasible replay
   escalates to the always-feasible fallback: every task on the first
   processor in topological order, clamped implementation choices kept.

The returned repair count is placement drift versus the donor document
(tasks whose resource changed or that the donor never placed) plus the
number of clamped implementation choices — 0 iff the document decoded
verbatim.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.arch.architecture import Architecture
from repro.errors import ArchitectureError, MappingError, ModelError
from repro.mapping.solution import Solution
from repro.model.application import Application

__all__ = ["seed_solution"]


def _donor_resources(document: Dict[str, Any]) -> Dict[int, str]:
    """Task index -> resource name as recorded by the donor document."""
    donor: Dict[int, str] = {}
    for name, order in document.get("software_orders", {}).items():
        for task_index in order:
            donor[task_index] = name
    for name, contexts in document.get("contexts", {}).items():
        for members in contexts:
            for task_index in members:
                donor[task_index] = name
    for name, members in document.get("asic_tasks", {}).items():
        for task_index in members:
            donor[task_index] = name
    return donor


def _clamped_choices(
    document: Dict[str, Any], application: Application
) -> Tuple[Dict[int, int], int]:
    """Valid implementation choices for the new instance, plus how many
    donor choices had to be adjusted."""
    choices: Dict[int, int] = {}
    clamps = 0
    for key, choice in document.get("implementation_choices", {}).items():
        task_index = int(key)
        if task_index not in application:
            continue
        task = application.task(task_index)
        if not task.hardware_capable:
            clamps += 1
            continue
        if (
            not isinstance(choice, int)
            or isinstance(choice, bool)
            or not 0 <= choice < task.num_implementations
        ):
            choice = task.num_implementations - 1
            clamps += 1
        choices[task_index] = choice
    return choices, clamps


def _fallback_processor(architecture: Architecture) -> str:
    processors = architecture.processors()
    if not processors:
        raise MappingError(
            "cannot repair seed solution: architecture has no processor "
            "to fall back to"
        )
    return processors[0].name


def _replay(
    document: Dict[str, Any],
    application: Application,
    architecture: Architecture,
    choices: Dict[int, int],
) -> Solution:
    """Re-apply the donor's placements, diverting rejected ones to the
    first processor."""
    solution = Solution(application, architecture)
    for task_index, choice in choices.items():
        solution.set_implementation_choice(task_index, choice)

    known = set(application.task_indices())
    leftovers: List[int] = []

    def _try(placement, task_index: int) -> None:
        if task_index not in known:
            return  # task vanished from the instance: nothing to place
        try:
            placement()
        except (MappingError, ModelError, ArchitectureError):
            leftovers.append(task_index)

    for proc_name, order in document.get("software_orders", {}).items():
        for task_index in order:
            _try(
                lambda t=task_index, p=proc_name:
                solution.assign_to_processor(t, p),
                task_index,
            )
    for rc_name, contexts in document.get("contexts", {}).items():
        for members in contexts:
            spawned_at: List[int] = []  # filled once the context exists
            for task_index in members:
                if not spawned_at:
                    def _spawn(t=task_index, r=rc_name, out=spawned_at):
                        out.append(solution.spawn_context(t, r))
                    _try(_spawn, task_index)
                else:
                    _try(
                        lambda t=task_index, r=rc_name, k=spawned_at[0]:
                        solution.assign_to_context(t, r, k),
                        task_index,
                    )
    for asic_name, members in document.get("asic_tasks", {}).items():
        for task_index in members:
            _try(
                lambda t=task_index, a=asic_name:
                solution.assign_to_asic(t, a),
                task_index,
            )

    placed = set(solution.assigned_tasks())
    for task_index in application.topological_order():
        if task_index not in placed and task_index not in leftovers:
            leftovers.append(task_index)
    if leftovers:
        fallback = _fallback_processor(architecture)
        rank = {t: i for i, t in enumerate(application.topological_order())}
        for task_index in sorted(leftovers, key=rank.__getitem__):
            # Insert right after the last predecessor already in the
            # order: keeps the software order precedence-consistent
            # (the feasibility gate in seed_solution catches the rarer
            # cross-resource serialization cycles).
            current = solution.software_order(fallback)
            position = 0
            for i, placed_task in enumerate(current):
                if application.precedes(placed_task, task_index):
                    position = i + 1
            solution.assign_to_processor(task_index, fallback, position)
    return solution


def _all_software(
    application: Application,
    architecture: Architecture,
    choices: Dict[int, int],
) -> Solution:
    """The always-feasible fallback: one processor, topological order."""
    solution = Solution(application, architecture)
    for task_index, choice in choices.items():
        solution.set_implementation_choice(task_index, choice)
    fallback = _fallback_processor(architecture)
    for task_index in application.topological_order():
        solution.assign_to_processor(task_index, fallback)
    return solution


def _is_feasible(solution: Solution) -> bool:
    from repro.mapping.evaluator import Evaluator

    evaluation = Evaluator(
        solution.application, solution.architecture
    ).evaluate(solution)
    return math.isfinite(evaluation.makespan_ms)


def seed_solution(
    document: Dict[str, Any],
    application: Application,
    architecture: Architecture,
) -> Tuple[Solution, int]:
    """Decode ``document`` against the given instance, repairing what no
    longer fits.  Returns ``(solution, repairs)`` where ``repairs`` is 0
    iff the document decoded without any adjustment; the solution always
    validates and is always feasible to schedule.

    Unlike :func:`repro.io.solution_from_dict` this never raises on
    drifted documents and does not require the application name to
    match (warm-start matches instances structurally, not by name).
    """
    if document.get("format") != "solution":
        raise MappingError(
            f"seed document is not a solution (format="
            f"{document.get('format')!r})"
        )
    choices, clamps = _clamped_choices(document, application)
    solution = _replay(document, application, architecture, choices)
    if not _is_feasible(solution):
        solution = _all_software(application, architecture, choices)
    solution.validate()

    donor = _donor_resources(document)
    drift = sum(
        1
        for task_index in application.task_indices()
        if donor.get(task_index) != solution.resource_name_of(task_index)
    )
    return solution, clamps + drift
