"""Candidate solution: assignment, orders, contexts, implementation picks.

The solution owns all mutable mapping state; resources stay immutable
descriptors.  Moves (:mod:`repro.sa.moves`) mutate a solution in place
and know how to undo themselves, which keeps the annealing loop free of
deep copies.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.arch.resource import Resource
from repro.errors import CapacityError, MappingError
from repro.model.application import Application

#: Global monotonic revision source for per-resource change stamps.  A
#: revision value is handed out exactly once, so a given ``(resource,
#: revision)`` pair always denotes the same mapping content — undoing a
#: move restores the old stamp together with the old content, and the
#: incremental evaluation engine exploits that to skip untouched
#: resources and memoize realized layouts by stamp.
_REVISION = itertools.count(1)


class Solution:
    """A complete mapping of an application onto an architecture.

    Invariants (enforced by :meth:`validate`):

    * every task is assigned to exactly one resource;
    * software orders are permutations of the tasks assigned to each
      processor;
    * contexts are non-empty and respect the CLB capacity;
    * implementation choices are valid indices for hardware tasks.

    Precedence consistency of the induced search graph is *not* an
    invariant — the evaluator detects cyclic realizations and reports
    them as infeasible, exactly as the paper rejects cycle-creating
    moves (section 4.3).
    """

    def __init__(self, application: Application, architecture: Architecture) -> None:
        self.application = application
        self.architecture = architecture
        self._resource_of: Dict[int, str] = {}
        self._sw_orders: Dict[str, List[int]] = {
            p.name: [] for p in architecture.processors()
        }
        self._contexts: Dict[str, List[List[int]]] = {
            rc.name: [] for rc in architecture.reconfigurable_circuits()
        }
        self._asic_tasks: Dict[str, List[int]] = {
            a.name: [] for a in architecture.asics()
        }
        # Sticky per-task implementation choice (kept when a task moves
        # back to software, so re-offloading restores the same variant).
        self._impl_choice: Dict[int, int] = {}
        # Per-resource change stamps (see _REVISION).  Every mutation of
        # a resource's mapping state re-stamps it; move snapshots save
        # and restore the stamps together with the content.
        self._res_rev: Dict[str, int] = {}

    def _touch(self, resource_name: str) -> None:
        self._res_rev[resource_name] = next(_REVISION)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def resource_name_of(self, task_index: int) -> str:
        try:
            return self._resource_of[task_index]
        except KeyError:
            raise MappingError(f"task {task_index} is not assigned") from None

    def resource_of(self, task_index: int) -> Resource:
        return self.architecture.resource(self.resource_name_of(task_index))

    def is_assigned(self, task_index: int) -> bool:
        return task_index in self._resource_of

    def assigned_tasks(self) -> List[int]:
        return list(self._resource_of)

    def software_order(self, processor_name: str) -> List[int]:
        try:
            return self._sw_orders[processor_name]
        except KeyError:
            raise MappingError(f"no processor named {processor_name!r}") from None

    def contexts(self, rc_name: str) -> List[List[int]]:
        try:
            return self._contexts[rc_name]
        except KeyError:
            raise MappingError(f"no reconfigurable circuit named {rc_name!r}") from None

    def asic_tasks(self, asic_name: str) -> List[int]:
        try:
            return self._asic_tasks[asic_name]
        except KeyError:
            raise MappingError(f"no ASIC named {asic_name!r}") from None

    def context_of(self, task_index: int) -> Optional[Tuple[str, int]]:
        """``(rc_name, context_index)`` if the task is on a DRLC."""
        name = self._resource_of.get(task_index)
        if name is None or name not in self._contexts:
            return None
        for k, members in enumerate(self._contexts[name]):
            if task_index in members:
                return (name, k)
        raise MappingError(
            f"task {task_index} assigned to DRLC {name!r} but in no context"
        )

    def num_contexts(self, rc_name: Optional[str] = None) -> int:
        if rc_name is not None:
            return len(self.contexts(rc_name))
        return sum(len(ctxs) for ctxs in self._contexts.values())

    def software_tasks(self) -> List[int]:
        return [t for order in self._sw_orders.values() for t in order]

    def hardware_tasks(self) -> List[int]:
        tasks = [
            t
            for contexts in self._contexts.values()
            for members in contexts
            for t in members
        ]
        tasks.extend(t for members in self._asic_tasks.values() for t in members)
        return tasks

    # ------------------------------------------------------------------
    # implementation choices
    # ------------------------------------------------------------------
    def implementation_choice(self, task_index: int) -> int:
        return self._impl_choice.get(task_index, 0)

    def set_implementation_choice(self, task_index: int, choice: int) -> None:
        task = self.application.task(task_index)
        task.implementation(choice)  # validates the index
        self._impl_choice[task_index] = choice
        # The variant's area/time feeds the hosting resource's realized
        # durations and reconfiguration weights.
        name = self._resource_of.get(task_index)
        if name is not None:
            self._touch(name)

    def task_clbs(self, task_index: int) -> int:
        """CLBs of the task's currently selected implementation."""
        task = self.application.task(task_index)
        return task.implementation(self.implementation_choice(task_index)).clbs

    def context_clbs(self, rc_name: str, context_index: int) -> int:
        members = self._context(rc_name, context_index)
        return sum(self.task_clbs(t) for t in members)

    def _context(self, rc_name: str, context_index: int) -> List[int]:
        contexts = self.contexts(rc_name)
        if not 0 <= context_index < len(contexts):
            raise MappingError(
                f"DRLC {rc_name!r} has no context {context_index} "
                f"(0..{len(contexts) - 1})"
            )
        return contexts[context_index]

    # ------------------------------------------------------------------
    # context boundary nodes (paper section 3.3)
    # ------------------------------------------------------------------
    def context_initial_nodes(self, rc_name: str, context_index: int) -> List[int]:
        """Nodes whose immediate predecessors are all outside the context."""
        members = self._context(rc_name, context_index)
        inside = set(members)
        return [
            t
            for t in members
            if not any(p in inside for p in self.application.predecessors(t))
        ]

    def context_terminal_nodes(self, rc_name: str, context_index: int) -> List[int]:
        """Nodes whose immediate successors are all outside the context."""
        members = self._context(rc_name, context_index)
        inside = set(members)
        return [
            t
            for t in members
            if not any(s in inside for s in self.application.successors(t))
        ]

    # ------------------------------------------------------------------
    # mutation primitives (used by moves and initial-solution builders)
    # ------------------------------------------------------------------
    def unassign(self, task_index: int) -> None:
        """Detach the task from its resource (empty contexts are pruned)."""
        name = self._resource_of.pop(task_index, None)
        if name is None:
            return
        self._touch(name)
        if name in self._sw_orders:
            self._sw_orders[name].remove(task_index)
        elif name in self._contexts:
            for members in self._contexts[name]:
                if task_index in members:
                    members.remove(task_index)
                    break
            self._contexts[name] = [c for c in self._contexts[name] if c]
        elif name in self._asic_tasks:
            self._asic_tasks[name].remove(task_index)

    def assign_to_processor(
        self,
        task_index: int,
        processor_name: str,
        position: Optional[int] = None,
    ) -> None:
        """Place the task on a processor at ``position`` in the total
        order (append when ``position`` is None)."""
        self.application.task(task_index)  # validates the index
        if processor_name not in self._sw_orders:
            raise MappingError(f"no processor named {processor_name!r}")
        self.unassign(task_index)
        order = self._sw_orders[processor_name]
        if position is None:
            order.append(task_index)
        else:
            if not 0 <= position <= len(order):
                raise MappingError(
                    f"position {position} out of range 0..{len(order)}"
                )
            order.insert(position, task_index)
        self._resource_of[task_index] = processor_name
        self._touch(processor_name)

    def assign_to_context(
        self,
        task_index: int,
        rc_name: str,
        context_index: int,
        enforce_capacity: bool = True,
    ) -> None:
        """Place the task inside an existing context of a DRLC."""
        task = self.application.task(task_index)
        if not task.hardware_capable:
            raise MappingError(f"task {task.name!r} cannot run in hardware")
        rc = self.architecture.resource(rc_name)
        if not isinstance(rc, ReconfigurableCircuit):
            raise MappingError(f"{rc_name!r} is not a reconfigurable circuit")
        members = self._context(rc_name, context_index)
        if enforce_capacity:
            needed = self.task_clbs(task_index)
            used = sum(self.task_clbs(t) for t in members if t != task_index)
            if not rc.fits(used, needed):
                raise CapacityError(
                    f"context {context_index} of {rc_name!r} cannot host task "
                    f"{task.name!r}: {used} + {needed} > {rc.n_clbs} CLBs"
                )
        self.unassign(task_index)
        # Re-resolve: unassign may have pruned an emptied context.
        contexts = self._contexts[rc_name]
        if context_index > len(contexts):
            context_index = len(contexts)
        if context_index == len(contexts):
            contexts.append([])
        contexts[context_index].append(task_index)
        self._resource_of[task_index] = rc_name
        self._touch(rc_name)

    def spawn_context(
        self,
        task_index: int,
        rc_name: str,
        position: Optional[int] = None,
    ) -> int:
        """Create a new context holding exactly ``task_index``.

        ``position`` is the index of the new context in the DRLC's
        ordered list (append when None).  Returns the actual position.
        This is the move-realization rule of section 4.3: a context is
        spawned when the destination context cannot fit the task.
        """
        task = self.application.task(task_index)
        if not task.hardware_capable:
            raise MappingError(f"task {task.name!r} cannot run in hardware")
        rc = self.architecture.resource(rc_name)
        if not isinstance(rc, ReconfigurableCircuit):
            raise MappingError(f"{rc_name!r} is not a reconfigurable circuit")
        needed = self.task_clbs(task_index)
        if not rc.fits(0, needed):
            raise CapacityError(
                f"task {task.name!r} needs {needed} CLBs but {rc_name!r} "
                f"only has {rc.n_clbs}"
            )
        self.unassign(task_index)
        contexts = self._contexts[rc_name]
        if position is None or position > len(contexts):
            position = len(contexts)
        contexts.insert(position, [task_index])
        self._resource_of[task_index] = rc_name
        self._touch(rc_name)
        return position

    def assign_to_asic(self, task_index: int, asic_name: str) -> None:
        task = self.application.task(task_index)
        if not task.hardware_capable:
            raise MappingError(f"task {task.name!r} cannot run in hardware")
        if asic_name not in self._asic_tasks:
            raise MappingError(f"no ASIC named {asic_name!r}")
        self.unassign(task_index)
        self._asic_tasks[asic_name].append(task_index)
        self._resource_of[task_index] = asic_name
        self._touch(asic_name)

    # ------------------------------------------------------------------
    # resource-set mutation (architecture exploration, moves m3/m4)
    # ------------------------------------------------------------------
    def attach_resource(self, resource: Resource) -> None:
        """Register a newly created resource (move m4)."""
        self.architecture.add_resource(resource)
        if isinstance(resource, Processor):
            self._sw_orders[resource.name] = []
        elif isinstance(resource, ReconfigurableCircuit):
            self._contexts[resource.name] = []
        elif isinstance(resource, Asic):
            self._asic_tasks[resource.name] = []
        else:  # pragma: no cover - defensive
            raise MappingError(f"unknown resource type {type(resource).__name__}")
        self._touch(resource.name)

    def detach_resource(self, name: str) -> Resource:
        """Remove an *empty* resource from the system (move m3)."""
        if name in self._sw_orders:
            if self._sw_orders[name]:
                raise MappingError(f"processor {name!r} still has tasks")
            del self._sw_orders[name]
        elif name in self._contexts:
            if self._contexts[name]:
                raise MappingError(f"DRLC {name!r} still has contexts")
            del self._contexts[name]
        elif name in self._asic_tasks:
            if self._asic_tasks[name]:
                raise MappingError(f"ASIC {name!r} still has tasks")
            del self._asic_tasks[name]
        else:
            raise MappingError(f"no resource named {name!r}")
        self._res_rev.pop(name, None)
        return self.architecture.remove_resource(name)

    # ------------------------------------------------------------------
    # validation / copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        app_tasks = set(self.application.task_indices())
        assigned = set(self._resource_of)
        if assigned != app_tasks:
            missing = sorted(app_tasks - assigned)
            extra = sorted(assigned - app_tasks)
            raise MappingError(
                f"assignment mismatch: missing={missing}, unknown={extra}"
            )
        seen: Set[int] = set()
        for name, order in self._sw_orders.items():
            for t in order:
                if self._resource_of.get(t) != name:
                    raise MappingError(f"task {t} in order of {name!r} but not assigned to it")
                if t in seen:
                    raise MappingError(f"task {t} appears on several resources")
                seen.add(t)
        for name, contexts in self._contexts.items():
            rc = self.architecture.resource(name)
            for k, members in enumerate(contexts):
                if not members:
                    raise MappingError(f"context {k} of {name!r} is empty")
                used = sum(self.task_clbs(t) for t in members)
                if used > rc.n_clbs:
                    raise MappingError(
                        f"context {k} of {name!r} uses {used} CLBs > "
                        f"capacity {rc.n_clbs}"
                    )
                for t in members:
                    if self._resource_of.get(t) != name:
                        raise MappingError(
                            f"task {t} in context of {name!r} but not assigned to it"
                        )
                    if t in seen:
                        raise MappingError(f"task {t} appears on several resources")
                    seen.add(t)
        for name, members in self._asic_tasks.items():
            for t in members:
                if self._resource_of.get(t) != name:
                    raise MappingError(f"task {t} on ASIC {name!r} but not assigned to it")
                if t in seen:
                    raise MappingError(f"task {t} appears on several resources")
                seen.add(t)
        for t, choice in self._impl_choice.items():
            task = self.application.task(t)
            if task.hardware_capable:
                task.implementation(choice)

    def copy(self) -> "Solution":
        """Deep copy of the mapping state.

        The application is shared (immutable here); the architecture is
        snapshot-copied so that subsequent resource creation/removal
        moves (m3/m4) on the live solution cannot invalidate the copy.
        """
        clone = Solution.__new__(Solution)
        clone.application = self.application
        clone.architecture = self.architecture.snapshot()
        clone._resource_of = dict(self._resource_of)
        clone._sw_orders = {k: list(v) for k, v in self._sw_orders.items()}
        clone._contexts = {
            k: [list(c) for c in v] for k, v in self._contexts.items()
        }
        clone._asic_tasks = {k: list(v) for k, v in self._asic_tasks.items()}
        clone._impl_choice = dict(self._impl_choice)
        clone._res_rev = dict(self._res_rev)
        return clone

    def summary(self) -> str:
        """One-line description used by traces and examples."""
        parts = []
        for name, order in self._sw_orders.items():
            parts.append(f"{name}:{len(order)}sw")
        for name, contexts in self._contexts.items():
            sizes = "/".join(str(len(c)) for c in contexts) or "-"
            parts.append(f"{name}:{len(contexts)}ctx[{sizes}]")
        for name, members in self._asic_tasks.items():
            parts.append(f"{name}:{len(members)}hw")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Solution({self.summary()})"


def random_initial_solution(
    application: Application,
    architecture: Architecture,
    rng: random.Random,
    hw_fraction: Optional[float] = None,
) -> Solution:
    """The paper's initial solution (section 5).

    "The initial solution is generated with a random hardware/software
    partition.  A random number of tasks are moved, one by one, to the
    reconfigurable circuit.  A new context is created when the capacity
    of the last context is exceeded."

    Tasks are placed following one random topological order of the
    application, which guarantees the initial realization is acyclic
    (context order and software order both respect precedence).

    ``hw_fraction`` forces the expected fraction of hardware-capable
    tasks moved to hardware; None draws the count uniformly as in the
    paper.
    """
    application.validate()
    architecture.validate()
    solution = Solution(application, architecture)
    order = _random_topological_order(application, rng)

    processors = architecture.processors()
    rcs = architecture.reconfigurable_circuits()

    # Random implementation choice per hardware-capable task (the paper
    # lets annealing pick among the 5-6 synthesized variants).
    for task in application.tasks():
        if task.hardware_capable:
            solution.set_implementation_choice(
                task.index, rng.randrange(task.num_implementations)
            )

    hw_candidates = [
        t for t in order if application.task(t).hardware_capable
    ] if rcs else []
    if hw_fraction is None:
        count = rng.randint(0, len(hw_candidates))
    else:
        count = round(hw_fraction * len(hw_candidates))
    chosen = set(rng.sample(hw_candidates, count)) if count else set()

    for t in order:
        if t in chosen:
            rc = rcs[rng.randrange(len(rcs))]
            contexts = solution.contexts(rc.name)
            placed = False
            if contexts:
                used = solution.context_clbs(rc.name, len(contexts) - 1)
                if rc.fits(used, solution.task_clbs(t)):
                    solution.assign_to_context(t, rc.name, len(contexts) - 1)
                    placed = True
            if not placed:
                if rc.fits(0, solution.task_clbs(t)):
                    solution.spawn_context(t, rc.name)
                else:
                    # Device cannot host even the smallest variant of
                    # this task with the chosen implementation; try the
                    # smallest one, else fall back to software.
                    task = application.task(t)
                    smallest = task.smallest_implementation()
                    if rc.fits(0, smallest.clbs):
                        solution.set_implementation_choice(
                            t, task.implementations.index(smallest)
                        )
                        solution.spawn_context(t, rc.name)
                    else:
                        proc = processors[rng.randrange(len(processors))]
                        solution.assign_to_processor(t, proc.name)
        else:
            proc = processors[rng.randrange(len(processors))]
            solution.assign_to_processor(t, proc.name)

    solution.validate()
    return solution


def _random_topological_order(
    application: Application, rng: random.Random
) -> List[int]:
    """Kahn's algorithm with uniformly random tie-breaking."""
    indeg = {t: len(application.predecessors(t)) for t in application.task_indices()}
    ready = [t for t, d in indeg.items() if d == 0]
    order: List[int] = []
    while ready:
        pick = ready.pop(rng.randrange(len(ready)))
        order.append(pick)
        for succ in application.successors(pick):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if len(order) != len(indeg):
        raise MappingError("application graph is cyclic")
    return order
