"""One-time compilation of a problem instance into dense arrays.

Every evaluation engine that wants to score thousands of candidate
solutions per second needs the same solution-independent tables: task
indices interned to dense ids, per-task software/hardware durations,
the dependency list with precomputed bus transfer times, the permanent
``src -> comm -> dst`` wiring of the static dependency layer, and the
precedence adjacency over dense ids.  This module is the single place
where a :class:`~repro.model.application.Application` (plus the bus it
communicates over) is flattened into that struct-of-arrays form —
:class:`~repro.mapping.engine.IncrementalEngine` consumes the plain
Python lists for its scalar delta-patching loops, and
:class:`~repro.mapping.engine.ArrayEngine` additionally uses the NumPy
views for its vectorized kernels (:mod:`repro.graph.kernels`).

The compile pass runs **once per search** (and again only if a caller
swaps the bus object); everything in it is solution-independent.  The
dense-id layout is load-bearing and shared by all engines:

* ids ``[0, ntasks)`` are the application tasks in
  ``application.task_indices()`` order;
* ids ``[ntasks, ntasks + ndeps)`` are the communication nodes, one per
  dependency in ``application.dependencies()`` order;
* ids beyond that are virtual nodes (per-DRLC configuration nodes)
  interned on demand by the engines.

NumPy is a declared dependency of the package (the ``array`` engine and
the batched kernels need it), but it is imported lazily through
:func:`repro.graph.kernels.require_numpy`: the scalar engines never
touch the array views, so they neither pay the import nor break should
an environment be missing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arch.processor import Processor
from repro.graph.dag import NodeInterner
from repro.graph.kernels import require_numpy
from repro.graph.reachability import ReachabilityIndex
from repro.mapping.search_graph import COMM_NODE
from repro.model.application import Application


@dataclass
class CompiledInstance:
    """The dense, solution-independent tables of one problem instance.

    Plain-list fields mirror exactly what the incremental engine's
    skeleton used to build inline; the ``*_np`` properties expose the
    same data as NumPy arrays (built lazily, cached) for the vectorized
    kernels.
    """

    application: Application
    bus: Any
    #: Application task indices in interning order (dense id = position).
    tasks: List[int]
    #: task index -> dense id.
    tid: Dict[int, int]
    #: Software execution time per dense task id.
    sw_ms: List[float]
    #: Hardware implementation CLB/time tables (None for SW-only tasks).
    impl_clbs: List[Optional[List[int]]]
    impl_ms: List[Optional[List[float]]]
    #: Precedence adjacency over dense task ids.
    pred_ids: List[List[int]]
    succ_ids: List[List[int]]
    #: Dependency arrays: original task indices, dense ids, bus transfer
    #: times, interned comm-node ids, and the deps touching each task.
    dep_srct: List[int]
    dep_dstt: List[int]
    dep_src: List[int]
    dep_dst: List[int]
    dep_transfer: List[float]
    dep_comm: List[int]
    deps_of_task: List[List[int]]
    #: The interner holding tasks + comm nodes (engines intern virtual
    #: configuration nodes on top of it).
    interner: NodeInterner
    #: Static dependency layer: per-node comm predecessors, successors
    #: and indegrees of the permanent ``src -> comm -> dst`` wiring.
    pred_comms: List[List[int]]
    succ_static: List[List[int]]
    indeg_static: List[int]

    #: Graph-shape statistics of the static ``src -> comm -> dst`` DAG:
    #: number of topological levels (Kahn frontier waves) and the mean
    #: nodes-per-level.  Solution-independent lower bound on the depth
    #: of any annealed serialization — deep/narrow instances cannot
    #: amortize per-level NumPy dispatch, which is what the
    #: depth-aware engine dispatcher keys on.
    depth: int = 1
    mean_level_width: float = 1.0

    _np_cache: Dict[str, Any] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def fork(self) -> "CompiledInstance":
        """A sibling view sharing every immutable table.

        Engines *append* to exactly four members when they intern
        virtual configuration nodes (:meth:`IncrementalEngine._grow_nodes`):
        the interner and the ``pred_comms``/``succ_static``/
        ``indeg_static`` per-node arrays.  A fork deep-copies those four
        and aliases everything else — including the lazy ``*_np`` cache,
        whose arrays only ever cover the immutable task/dependency
        region — so K engines can drive K independent solutions over
        one compile pass without re-running it or corrupting each
        other's virtual-node regions."""
        return CompiledInstance(
            application=self.application,
            bus=self.bus,
            tasks=self.tasks,
            tid=self.tid,
            sw_ms=self.sw_ms,
            impl_clbs=self.impl_clbs,
            impl_ms=self.impl_ms,
            pred_ids=self.pred_ids,
            succ_ids=self.succ_ids,
            dep_srct=self.dep_srct,
            dep_dstt=self.dep_dstt,
            dep_src=self.dep_src,
            dep_dst=self.dep_dst,
            dep_transfer=self.dep_transfer,
            dep_comm=self.dep_comm,
            deps_of_task=self.deps_of_task,
            interner=self.interner.copy(),
            pred_comms=[list(row) for row in self.pred_comms],
            succ_static=[list(row) for row in self.succ_static],
            indeg_static=list(self.indeg_static),
            depth=self.depth,
            mean_level_width=self.mean_level_width,
            _np_cache=self._np_cache,
        )

    # ------------------------------------------------------------------
    @property
    def ntasks(self) -> int:
        return len(self.tasks)

    @property
    def ndeps(self) -> int:
        return len(self.dep_srct)

    # ------------------------------------------------------------------
    # NumPy views (lazy, cached)
    # ------------------------------------------------------------------
    def _cached(self, key: str, build) -> Any:
        value = self._np_cache.get(key)
        if value is None:
            value = build()
            self._np_cache[key] = value
        return value

    @property
    def dep_src_np(self):
        np = require_numpy()
        return self._cached(
            "dep_src", lambda: np.asarray(self.dep_src, dtype=np.int32)
        )

    @property
    def dep_dst_np(self):
        np = require_numpy()
        return self._cached(
            "dep_dst", lambda: np.asarray(self.dep_dst, dtype=np.int32)
        )

    @property
    def dep_comm_np(self):
        np = require_numpy()
        return self._cached(
            "dep_comm", lambda: np.asarray(self.dep_comm, dtype=np.int32)
        )

    @property
    def dep_transfer_np(self):
        np = require_numpy()
        return self._cached(
            "dep_transfer",
            lambda: np.asarray(self.dep_transfer, dtype=np.float64),
        )

    @property
    def static_edge_src_np(self):
        """Sources of the static layer's edges: ``[src -> comm] +
        [comm -> dst]`` in dependency order (``2 * ndeps`` edges).  The
        first ``ndeps`` edges carry the per-solution pass-through weight
        (``comm_w``); the second half always weighs 0."""
        np = require_numpy()
        return self._cached(
            "static_src",
            lambda: np.concatenate(
                [self.dep_src_np, self.dep_comm_np]
            ).astype(np.int64),
        )

    @property
    def static_edge_dst_np(self):
        np = require_numpy()
        return self._cached(
            "static_dst",
            lambda: np.concatenate(
                [self.dep_comm_np, self.dep_dst_np]
            ).astype(np.int64),
        )

    @property
    def sw_ms_np(self):
        np = require_numpy()
        return self._cached(
            "sw_ms", lambda: np.asarray(self.sw_ms, dtype=np.float64)
        )

    @property
    def impl_ms_matrix(self):
        """``(ntasks, max_impls)`` hardware execution times, padded with
        ``+inf`` (software-only tasks are all-inf rows)."""
        np = require_numpy()

        def build():
            width = max(
                (len(row) for row in self.impl_ms if row is not None),
                default=0,
            )
            matrix = np.full((self.ntasks, max(width, 1)), np.inf)
            for i, row in enumerate(self.impl_ms):
                if row is not None:
                    matrix[i, : len(row)] = row
            return matrix

        return self._cached("impl_ms_matrix", build)

    @property
    def impl_clbs_matrix(self):
        """``(ntasks, max_impls)`` implementation areas, padded with 0."""
        np = require_numpy()

        def build():
            width = self.impl_ms_matrix.shape[1]
            matrix = np.zeros((self.ntasks, width), dtype=np.int32)
            for i, row in enumerate(self.impl_clbs):
                if row is not None:
                    matrix[i, : len(row)] = row
            return matrix

        return self._cached("impl_clbs_matrix", build)

    # ------------------------------------------------------------------
    # precedence reachability (lazy, cached; shared by forks)
    # ------------------------------------------------------------------
    @property
    def reachability(self) -> ReachabilityIndex:
        """Ancestor/descendant bitsets over the dense task ids.

        Built once per compile pass from the immutable ``succ_ids``
        adjacency and cached in ``_np_cache``, so :meth:`fork` siblings
        share one index (the task-level precedence graph never changes
        during a search).
        """
        return self._cached(
            "reachability",
            lambda: ReachabilityIndex.from_successors(self.succ_ids),
        )

    def precedes(self, src_task: int, dst_task: int) -> bool:
        """Transitive precedence between two *application task indices*
        (the compiled counterpart of ``application.precedes``)."""
        return self.reachability.has_path(
            self.tid[src_task], self.tid[dst_task]
        )

    def processor_ms_matrix(self, architecture):
        """``(num_processors, ntasks)`` software durations on each of
        the architecture's processors (``sw_ms / speed_factor`` — the
        exact float division the scalar sync performs).  Not cached: the
        processor set can change under architecture-exploration moves.
        """
        np = require_numpy()
        processors = [
            r for r in architecture.resources() if type(r) is Processor
        ]
        matrix = np.empty((len(processors), self.ntasks))
        for row, proc in enumerate(processors):
            np.divide(self.sw_ms_np, proc.speed_factor, out=matrix[row])
        return matrix


def compile_instance(application: Application, bus) -> CompiledInstance:
    """Flatten ``application`` (communicating over ``bus``) into the
    dense struct-of-arrays form.  Deterministic: tables depend only on
    the application's task/dependency iteration order."""
    tasks = list(application.task_indices())
    ntasks = len(tasks)
    tid = {t: i for i, t in enumerate(tasks)}
    interner = NodeInterner(tasks)

    sw_ms: List[float] = [0.0] * ntasks
    impl_clbs: List[Optional[List[int]]] = [None] * ntasks
    impl_ms: List[Optional[List[float]]] = [None] * ntasks
    pred_ids: List[List[int]] = [[] for _ in range(ntasks)]
    succ_ids: List[List[int]] = [[] for _ in range(ntasks)]
    for i, t in enumerate(tasks):
        task = application.task(t)
        sw_ms[i] = task.sw_time_ms
        if task.hardware_capable:
            impl_clbs[i] = [impl.clbs for impl in task.implementations]
            impl_ms[i] = [impl.time_ms for impl in task.implementations]

    dep_srct: List[int] = []
    dep_dstt: List[int] = []
    dep_src: List[int] = []
    dep_dst: List[int] = []
    dep_transfer: List[float] = []
    dep_comm: List[int] = []
    deps_of_task: List[List[int]] = [[] for _ in range(ntasks)]
    for src, dst, kbytes in application.dependencies():
        j = len(dep_srct)
        s, d = tid[src], tid[dst]
        dep_srct.append(src)
        dep_dstt.append(dst)
        dep_src.append(s)
        dep_dst.append(d)
        dep_transfer.append(bus.transfer_time_ms(kbytes))
        dep_comm.append(interner.intern((COMM_NODE, src, dst)))
        deps_of_task[s].append(j)
        deps_of_task[d].append(j)
        pred_ids[d].append(s)
        succ_ids[s].append(d)
    ndeps = len(dep_srct)
    assert all(dep_comm[j] == ntasks + j for j in range(ndeps))

    n = len(interner)
    pred_comms: List[List[int]] = [[] for _ in range(n)]
    succ_static: List[List[int]] = [[] for _ in range(n)]
    indeg_static = [0] * n
    for j in range(ndeps):
        s, c, d = dep_src[j], dep_comm[j], dep_dst[j]
        pred_comms[d].append(c)
        succ_static[s].append(c)
        succ_static[c].append(d)
        indeg_static[c] += 1
        indeg_static[d] += 1

    # Level structure of the static DAG: one Kahn BFS over the permanent
    # wiring.  The application layer guarantees acyclicity, so every node
    # is consumed and ``depth`` counts the frontier waves exactly.
    indeg = list(indeg_static)
    frontier = [v for v in range(n) if indeg[v] == 0]
    depth = 0
    visited = 0
    while frontier:
        depth += 1
        visited += len(frontier)
        nxt: List[int] = []
        for v in frontier:
            for w in succ_static[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    nxt.append(w)
        frontier = nxt
    assert visited == n, "static dependency layer must be acyclic"
    depth = max(depth, 1)

    return CompiledInstance(
        application=application,
        bus=bus,
        tasks=tasks,
        tid=tid,
        sw_ms=sw_ms,
        impl_clbs=impl_clbs,
        impl_ms=impl_ms,
        pred_ids=pred_ids,
        succ_ids=succ_ids,
        dep_srct=dep_srct,
        dep_dstt=dep_dstt,
        dep_src=dep_src,
        dep_dst=dep_dst,
        dep_transfer=dep_transfer,
        dep_comm=dep_comm,
        deps_of_task=deps_of_task,
        interner=interner,
        pred_comms=pred_comms,
        succ_static=succ_static,
        indeg_static=indeg_static,
        depth=depth,
        mean_level_width=n / depth,
    )
