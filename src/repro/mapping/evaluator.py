"""Solution evaluation (paper section 4.4).

After each move the performance of the new solution is the longest path
of the realized search graph.  The evaluator also decomposes the result
the way the paper's Fig. 3 reports it: execution time = reconfiguration
time (initial + dynamic) + computation and communication time.

Since the engine refactor this class is a thin facade over the pluggable
evaluation engines of :mod:`repro.mapping.engine`: ``engine="full"``
(default) rebuilds the search graph per candidate exactly as the
original implementation did, ``engine="incremental"`` routes through the
array-backed delta-patching fast path.  Both produce bit-identical
makespans (enforced by ``tests/mapping/test_engine_parity.py``).
"""

from __future__ import annotations

from typing import Union

from repro.arch.architecture import Architecture
from repro.mapping.engine import (
    ENGINES,
    Evaluation,
    EvaluationEngine,
    INFEASIBLE_MS,
    make_engine,
)
from repro.mapping.search_graph import SearchGraph
from repro.mapping.solution import Solution
from repro.model.application import Application

__all__ = ["Evaluation", "Evaluator", "INFEASIBLE_MS", "ENGINES"]


class Evaluator:
    """Realizes and scores candidate solutions.

    ``bus_policy="ordered"`` (default) serializes shared-bus transfers
    as the paper's transaction order requires; ``"edge"`` charges
    transfer times on the precedence edges without bus exclusiveness
    (the ablation in ``benchmarks/bench_ablation_bus.py``).

    ``engine`` selects the evaluation strategy: ``"full"`` (reference
    semantics, rebuild per candidate), ``"incremental"`` (array-based
    fast path), or an already-constructed
    :class:`~repro.mapping.engine.EvaluationEngine` instance.
    """

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
        engine: Union[str, EvaluationEngine] = "full",
    ) -> None:
        self.application = application
        self.architecture = architecture
        if isinstance(engine, EvaluationEngine):
            self.engine = engine
        else:
            self.engine = make_engine(engine, application, architecture, bus_policy)
        #: Kept for backward compatibility: the reference search-graph
        #: builder (every engine carries one for ``realize``).
        self.builder = self.engine.builder

    @property
    def engine_name(self) -> str:
        return self.engine.name

    @property
    def bus_policy(self) -> str:
        return self.engine.bus_policy

    @property
    def evaluations(self) -> int:
        """Number of evaluations performed (exposed for benchmarks)."""
        return self.engine.evaluations

    @evaluations.setter
    def evaluations(self, value: int) -> None:
        self.engine.evaluations = value

    def telemetry_counters(self):
        """The engine's internal counters (see
        :meth:`repro.mapping.engine.EvaluationEngine.telemetry_counters`)."""
        return self.engine.telemetry_counters()

    # ------------------------------------------------------------------
    def realize(self, solution: Solution) -> SearchGraph:
        """Build the search graph without computing its longest path."""
        return self.engine.realize(solution)

    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        """Score ``solution``; cyclic realizations yield an infeasible
        evaluation (``makespan = inf``) unless ``strict`` re-raises."""
        return self.engine.evaluate(solution, strict=strict)

    def evaluate_batch(self, solution: Solution, moves, cost_function=None):
        """Score K candidate moves against ``solution`` in one call
        (vectorized with the array engine); see
        :meth:`repro.mapping.engine.EvaluationEngine.evaluate_batch`."""
        return self.engine.evaluate_batch(solution, moves, cost_function)

    def makespan_ms(self, solution: Solution) -> float:
        """Shortcut: longest path only (hot path of the annealer)."""
        return self.engine.makespan_ms(solution)
