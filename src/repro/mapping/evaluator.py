"""Solution evaluation (paper section 4.4).

After each move the performance of the new solution is the longest path
of the realized search graph.  The evaluator also decomposes the result
the way the paper's Fig. 3 reports it: execution time = reconfiguration
time (initial + dynamic) + computation and communication time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.arch.architecture import Architecture
from repro.errors import CycleError
from repro.mapping.search_graph import SearchGraph, SearchGraphBuilder
from repro.mapping.solution import Solution
from repro.model.application import Application

#: Cost of infeasible (cyclic) realizations.
INFEASIBLE_MS = math.inf


@dataclass(frozen=True)
class Evaluation:
    """Outcome of evaluating one candidate solution."""

    makespan_ms: float
    feasible: bool
    num_contexts: int
    hw_tasks: int
    sw_tasks: int
    initial_reconfig_ms: float
    dynamic_reconfig_ms: float
    comm_ms: float
    clbs_used: int

    @property
    def reconfig_ms(self) -> float:
        """Total reconfiguration time (initial + dynamic), Fig. 3's sum."""
        return self.initial_reconfig_ms + self.dynamic_reconfig_ms

    def meets(self, deadline_ms: float) -> bool:
        return self.feasible and self.makespan_ms <= deadline_ms


class Evaluator:
    """Realizes and scores candidate solutions.

    ``bus_policy="ordered"`` (default) serializes shared-bus transfers
    as the paper's transaction order requires; ``"edge"`` charges
    transfer times on the precedence edges without bus exclusiveness
    (the ablation in ``benchmarks/bench_ablation_bus.py``).
    """

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        bus_policy: str = "ordered",
    ) -> None:
        self.application = application
        self.architecture = architecture
        self.builder = SearchGraphBuilder(application, architecture, bus_policy)
        #: Number of evaluations performed (exposed for benchmarks).
        self.evaluations = 0

    # ------------------------------------------------------------------
    def realize(self, solution: Solution) -> SearchGraph:
        """Build the search graph without computing its longest path."""
        return self.builder.build(solution)

    def evaluate(self, solution: Solution, strict: bool = False) -> Evaluation:
        """Score ``solution``; cyclic realizations yield an infeasible
        evaluation (``makespan = inf``) unless ``strict`` re-raises."""
        self.evaluations += 1
        graph = self.builder.build(solution)
        try:
            makespan = graph.makespan_ms()
            feasible = True
        except CycleError:
            if strict:
                raise
            makespan = INFEASIBLE_MS
            feasible = False

        initial = 0.0
        dynamic = 0.0
        clbs = 0
        num_contexts = 0
        for rc in solution.architecture.reconfigurable_circuits():
            initial += rc.initial_reconfiguration_ms(solution)
            dynamic += rc.dynamic_reconfiguration_ms(solution)
            contexts = solution.contexts(rc.name)
            num_contexts += len(contexts)
            clbs += sum(
                solution.context_clbs(rc.name, k) for k in range(len(contexts))
            )

        hw = len(solution.hardware_tasks())
        return Evaluation(
            makespan_ms=makespan,
            feasible=feasible,
            num_contexts=num_contexts,
            hw_tasks=hw,
            sw_tasks=len(self.application.task_indices()) - hw,
            initial_reconfig_ms=initial,
            dynamic_reconfig_ms=dynamic,
            comm_ms=graph.total_comm_ms(),
            clbs_used=clbs,
        )

    def makespan_ms(self, solution: Solution) -> float:
        """Shortcut: longest path only (hot path of the annealer)."""
        self.evaluations += 1
        graph = self.builder.build(solution)
        try:
            return graph.makespan_ms()
        except CycleError:
            return INFEASIBLE_MS
