"""The declarative public API: versioned specs, one resolution
pipeline, one façade.

Every workload is expressible as data — an
:class:`~repro.api.specs.ExplorationRequest` JSON document — and every
client (the CLI, the experiment modules, the bench suites, the
examples, or a network service speaking JSON) executes it the same way:

    from repro.api import ExplorationRequest, BudgetSpec, explore

    request = ExplorationRequest(
        kind="single",
        budget=BudgetSpec(iterations=8000, warmup_iterations=1200),
        seed=7,
    )
    response = explore(request, jobs=1)
    print(response.best["cost"], response.best["evaluation"])
    print(response.to_json())            # the serializable envelope

Specs round-trip through JSON byte-stably, reject unknown keys, and are
stamped with ``schema_version`` — see :mod:`repro.api.specs`.
"""

from repro.api.specs import (
    APPLICATION_KINDS,
    ARCHITECTURE_KINDS,
    REQUEST_KINDS,
    SCHEMA_VERSION,
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
    load_request,
)
from repro.api.resolve import (
    BUILTIN_APPLICATIONS,
    BUILTIN_ARCHITECTURES,
    ResolvedProblem,
    ResolvedRequest,
    resolve_application,
    resolve_architecture,
    resolve_request,
    resolve_strategy,
)
from repro.api.facade import (
    ExplorationResponse,
    environment_stamp,
    evaluation_to_dict,
    explore,
    load_response,
)

__all__ = [
    "SCHEMA_VERSION",
    "APPLICATION_KINDS",
    "ARCHITECTURE_KINDS",
    "REQUEST_KINDS",
    "ApplicationSpec",
    "ArchitectureSpec",
    "StrategySpec",
    "BudgetSpec",
    "EngineSpec",
    "ExplorationRequest",
    "ExplorationResponse",
    "load_request",
    "BUILTIN_APPLICATIONS",
    "BUILTIN_ARCHITECTURES",
    "ResolvedProblem",
    "ResolvedRequest",
    "resolve_application",
    "resolve_architecture",
    "resolve_request",
    "resolve_strategy",
    "environment_stamp",
    "evaluation_to_dict",
    "explore",
    "load_response",
]
