"""Typed, versioned, JSON-round-trippable request specs.

Every workload this repository can run — a single annealing run, a
multi-seed batch, a strategy-portfolio race, a device-size sweep grid —
is expressible as one :class:`ExplorationRequest` document.  The specs
are plain frozen dataclasses with ``to_dict``/``from_dict`` (and
``to_json``/``from_json`` on the request), a ``schema_version`` stamp,
defaulting for omitted keys, and **unknown-key rejection**: a misspelled
knob in a spec file must fail loudly with the list of accepted keys,
never run a silently different experiment.

Serialization is canonical: ``to_json`` always emits the *full* spec
(every field, in declaration order), so spec files are byte-stable
across round trips — the golden fixtures under ``tests/api/fixtures``
pin this.

The specs only *describe* a workload; :mod:`repro.api.resolve` is the
one pipeline that materializes them into concrete model / architecture
/ search objects, and :func:`repro.api.facade.explore` executes them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: Version of the ``ExplorationRequest`` document format.  Bump it when
#: a field changes meaning; ``from_dict`` rejects documents stamped with
#: a newer version than this library understands.
SCHEMA_VERSION = 1

#: ``ApplicationSpec.kind`` values.
APPLICATION_KINDS = ("builtin", "generated", "bundled", "inline")

#: ``ArchitectureSpec.kind`` values.
ARCHITECTURE_KINDS = ("builtin", "inline")

#: ``ExplorationRequest.kind`` values.
REQUEST_KINDS = ("single", "batch", "portfolio", "sweep")

#: ``StrategySpec.cost`` kinds (see :mod:`repro.mapping.cost`).
COST_KINDS = ("makespan", "system")

#: Declarative catalog entry kinds (the :mod:`repro.io` resource
#: vocabulary, minus the per-instance ``name`` the move generator adds).
CATALOG_KINDS = ("processor", "reconfigurable", "asic")


# ----------------------------------------------------------------------
# shared (de)serialization machinery
# ----------------------------------------------------------------------
def _reject_unknown(data: Mapping[str, Any], known, what: str) -> None:
    unknown = set(data) - set(known)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) in {what}: {sorted(unknown)}; "
            f"accepted keys: {sorted(known)}"
        )


def _require_mapping(value: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ConfigurationError(
            f"{what} must be a JSON object, got {type(value).__name__}"
        )
    return value


def _json_clean(value: Any, what: str) -> Any:
    """Round ``value`` through JSON so specs only ever hold plain data
    (rejects callables, sets, custom objects with a pointed message)."""
    try:
        return json.loads(json.dumps(value))
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"{what} must be JSON-serializable data: {exc}"
        ) from None


class _SpecBase:
    """``to_dict``/``from_dict`` via dataclass introspection."""

    #: Field names omitted from ``to_dict`` while ``None``.  Fields added
    #: after a format shipped go here: the canonical document (and hence
    #: every golden fixture and pinned content hash) stays byte-identical
    #: until a request actually uses the new field.
    _OMIT_WHEN_NONE: frozenset = frozenset()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None and f.name in self._OMIT_WHEN_NONE:
                continue
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = [
                    v.to_dict() if isinstance(v, _SpecBase) else v
                    for v in value
                ]
            elif isinstance(value, Mapping):
                value = dict(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "_SpecBase":
        data = _require_mapping(data, f"{cls.__name__} spec")
        names = [f.name for f in dataclasses.fields(cls)]
        _reject_unknown(data, names, f"{cls.__name__} spec")
        return cls(**{name: data[name] for name in names if name in data})


# ----------------------------------------------------------------------
# application
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ApplicationSpec(_SpecBase):
    """What to map.

    ``kind`` selects the source:

    * ``"builtin"`` — a named builtin (``name="motion"``, the paper's
      28-task benchmark);
    * ``"generated"`` — :class:`~repro.model.generator.GeneratorConfig`
      knobs in ``generator`` plus the generator ``seed``;
    * ``"bundled"`` — a self-contained problem instance (application ×
      architecture × deadline) as produced by
      :func:`repro.io.dump_instance`, inline in ``document`` or at
      ``path``; the bundle's architecture and deadline become the
      request defaults;
    * ``"inline"`` — an application document
      (:func:`repro.io.dump_application`) inline in ``document`` or at
      ``path``.
    """

    kind: str = "builtin"
    name: str = "motion"
    generator: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0
    path: Optional[str] = None
    document: Optional[Dict[str, Any]] = None

    def validate(self) -> None:
        if self.kind not in APPLICATION_KINDS:
            raise ConfigurationError(
                f"unknown application kind {self.kind!r}; "
                f"known: {list(APPLICATION_KINDS)}"
            )
        if self.kind == "builtin":
            from repro.api.resolve import BUILTIN_APPLICATIONS

            if self.name not in BUILTIN_APPLICATIONS:
                raise ConfigurationError(
                    f"unknown builtin application {self.name!r}; "
                    f"known: {sorted(BUILTIN_APPLICATIONS)}"
                )
        elif self.kind == "generated":
            from repro.model.generator import GeneratorConfig

            generator = _require_mapping(
                self.generator, "ApplicationSpec.generator"
            )
            names = [f.name for f in dataclasses.fields(GeneratorConfig)]
            _reject_unknown(generator, names, "ApplicationSpec.generator")
            GeneratorConfig(**generator).validate()
        elif (self.path is None) == (self.document is None):
            raise ConfigurationError(
                f"application kind {self.kind!r} needs exactly one of "
                f"'path' or 'document'"
            )


# ----------------------------------------------------------------------
# architecture
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArchitectureSpec(_SpecBase):
    """What to map onto.

    ``"builtin"`` builds the paper's EPICURE platform
    (:func:`repro.arch.architecture.epicure_architecture`) at ``n_clbs``
    capacity with optional builder ``options`` (e.g.
    ``bus_rate_kbytes_per_ms``); ``"inline"`` loads an architecture
    document (:func:`repro.io.dump_architecture`) from ``document`` or
    ``path``.
    """

    kind: str = "builtin"
    name: str = "epicure"
    n_clbs: int = 2000
    options: Dict[str, Any] = field(default_factory=dict)
    path: Optional[str] = None
    document: Optional[Dict[str, Any]] = None

    def validate(self) -> None:
        if self.kind not in ARCHITECTURE_KINDS:
            raise ConfigurationError(
                f"unknown architecture kind {self.kind!r}; "
                f"known: {list(ARCHITECTURE_KINDS)}"
            )
        if self.kind == "builtin":
            from repro.api.resolve import BUILTIN_ARCHITECTURES

            if self.name not in BUILTIN_ARCHITECTURES:
                raise ConfigurationError(
                    f"unknown builtin architecture {self.name!r}; "
                    f"known: {sorted(BUILTIN_ARCHITECTURES)}"
                )
            if self.n_clbs < 1:
                raise ConfigurationError("architecture n_clbs must be >= 1")
            _require_mapping(self.options, "ArchitectureSpec.options")
        elif (self.path is None) == (self.document is None):
            raise ConfigurationError(
                "architecture kind 'inline' needs exactly one of "
                "'path' or 'document'"
            )


# ----------------------------------------------------------------------
# strategy / budget / engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StrategySpec(_SpecBase):
    """Which searcher to run.

    ``kind`` keys into the runner's strategy registry
    (:data:`repro.search.runner.STRATEGY_KINDS`); ``options`` are that
    strategy's plain-data knobs.  The two knobs whose runtime form is
    not JSON — the architecture-exploration resource ``catalog`` and the
    ``cost`` function — have declarative fields here and are built into
    live objects by :mod:`repro.api.resolve`.
    """

    kind: str = "sa"
    options: Dict[str, Any] = field(default_factory=dict)
    #: ``{"kind": "makespan"}`` (default) or ``{"kind": "system",
    #: "deadline_ms": ..., "penalty_per_ms": ...}``.
    cost: Optional[Dict[str, Any]] = None
    #: Declarative resource catalog for architecture exploration: each
    #: entry is ``{"kind": "processor" | "reconfigurable" | "asic",
    #: ...resource params...}`` (the :mod:`repro.io` vocabulary).
    catalog: Tuple[Dict[str, Any], ...] = ()
    #: Warm-start seed: a solution document
    #: (:func:`repro.io.dump_solution` vocabulary) decoded — and, if the
    #: instance drifted from the document's origin, repaired — into the
    #: strategy's starting solution by :mod:`repro.api.resolve`.  The
    #: exploration service injects a cached near-instance incumbent
    #: here; omitted (None) the strategy draws its seed-random initial
    #: exactly as before this field existed.
    initial_solution: Optional[Dict[str, Any]] = None

    _OMIT_WHEN_NONE = frozenset({"initial_solution"})

    def __post_init__(self) -> None:
        object.__setattr__(self, "catalog", tuple(self.catalog))

    def validate(self) -> None:
        from repro.search.runner import KNOWN_OPTIONS, STRATEGY_KINDS

        if self.kind not in STRATEGY_KINDS:
            raise ConfigurationError(
                f"unknown strategy kind {self.kind!r}; "
                f"known: {sorted(STRATEGY_KINDS)}"
            )
        options = _require_mapping(self.options, "StrategySpec.options")
        for reserved, pointer in (
            ("catalog", "StrategySpec.catalog"),
            ("cost_function", "StrategySpec.cost"),
            ("engine", "EngineSpec"),
        ):
            if reserved in options:
                raise ConfigurationError(
                    f"strategy option {reserved!r} is not accepted in a "
                    f"spec; use the declarative {pointer} field instead"
                )
        known = KNOWN_OPTIONS[self.kind] - {"catalog", "cost_function", "engine"}
        _reject_unknown(options, known, f"strategy {self.kind!r} options")
        _json_clean(dict(options), f"strategy {self.kind!r} options")
        if self.cost is not None:
            cost = _require_mapping(self.cost, "StrategySpec.cost")
            cost_kind = cost.get("kind")
            if cost_kind not in COST_KINDS:
                raise ConfigurationError(
                    f"unknown cost kind {cost_kind!r}; known: {list(COST_KINDS)}"
                )
            known_cost = (
                {"kind"} if cost_kind == "makespan"
                else {"kind", "deadline_ms", "penalty_per_ms"}
            )
            _reject_unknown(cost, known_cost, f"{cost_kind!r} cost spec")
        for entry in self.catalog:
            entry = _require_mapping(entry, "StrategySpec.catalog entry")
            if entry.get("kind") not in CATALOG_KINDS:
                raise ConfigurationError(
                    f"unknown catalog resource kind {entry.get('kind')!r}; "
                    f"known: {list(CATALOG_KINDS)}"
                )
        if self.cost is not None and self.kind not in ("sa", "tempering"):
            raise ConfigurationError(
                "cost specs apply to the 'sa' and 'tempering' strategies "
                "only (the other searchers optimize raw makespan)"
            )
        if self.catalog and self.kind != "sa":
            raise ConfigurationError(
                "catalog specs apply to the 'sa' strategy only "
                "(architecture exploration runs through the annealer)"
            )
        if self.initial_solution is not None:
            seed_doc = _require_mapping(
                self.initial_solution, "StrategySpec.initial_solution"
            )
            if seed_doc.get("format") != "solution":
                raise ConfigurationError(
                    "initial_solution must be a solution document "
                    "(format == 'solution'; see repro.io.dump_solution)"
                )
            if self.catalog:
                raise ConfigurationError(
                    "initial_solution cannot be combined with a catalog "
                    "(architecture exploration re-derives its mapping)"
                )


@dataclass(frozen=True)
class BudgetSpec(_SpecBase):
    """Uniform stopping criteria, folded into the strategy at resolve
    time: ``iterations`` maps to the strategy's natural unit (move draws
    for sa / hill / tabu, generations for ga, samples for random);
    ``warmup_iterations`` is the annealer's infinite-temperature phase
    (default: the shared budget-scaled formula); ``time_limit_s`` and
    ``stall_limit`` become a :class:`~repro.search.strategy.SearchBudget`.
    """

    iterations: Optional[int] = None
    warmup_iterations: Optional[int] = None
    time_limit_s: Optional[float] = None
    stall_limit: Optional[int] = None
    #: Anytime reporting: ``{"interval_iterations": n}`` and/or
    #: ``{"interval_s": seconds}``.  The search periodically snapshots
    #: its incumbent (iteration, best cost, current cost, elapsed wall
    #: clock) into ``SearchResult.extras["anytime"]``; the facade
    #: surfaces the snapshots as the response's ``partials`` section.
    anytime: Optional[Dict[str, Any]] = None

    _OMIT_WHEN_NONE = frozenset({"anytime"})

    def validate(self) -> None:
        if self.iterations is not None and self.iterations < 1:
            raise ConfigurationError("budget iterations must be >= 1")
        if self.warmup_iterations is not None and self.warmup_iterations < 0:
            raise ConfigurationError("budget warmup_iterations must be >= 0")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ConfigurationError("budget time_limit_s must be > 0")
        if self.stall_limit is not None and self.stall_limit < 1:
            raise ConfigurationError("budget stall_limit must be >= 1")
        if self.anytime is not None:
            anytime = _require_mapping(self.anytime, "BudgetSpec.anytime")
            _reject_unknown(
                anytime,
                {"interval_iterations", "interval_s"},
                "BudgetSpec.anytime",
            )
            if not anytime:
                raise ConfigurationError(
                    "budget anytime needs interval_iterations and/or "
                    "interval_s"
                )
            interval = anytime.get("interval_iterations")
            if interval is not None and (
                not isinstance(interval, int)
                or isinstance(interval, bool)
                or interval < 1
            ):
                raise ConfigurationError(
                    "anytime interval_iterations must be an int >= 1"
                )
            interval_s = anytime.get("interval_s")
            if interval_s is not None and (
                not isinstance(interval_s, (int, float))
                or isinstance(interval_s, bool)
                or interval_s <= 0
            ):
                raise ConfigurationError("anytime interval_s must be > 0")


@dataclass(frozen=True)
class EngineSpec(_SpecBase):
    """Evaluation engine: ``"incremental"`` (delta-patching fast path,
    default), ``"array"`` (compiled NumPy struct-of-arrays engine with
    persistent longest-path DP and batched move evaluation) or
    ``"full"`` (reference rebuild) — bit-identical results either way
    (engine parity is enforced by the test suite).

    ``options`` holds engine tuning knobs (speed only, never behavior).
    Two are accepted, both for the ``array`` engine:
    ``kernel_batch_min_work`` — the minimum ``batch_size * num_nodes``
    at which batched move evaluation takes the fused NumPy kernel path
    instead of the scalar loop — and ``dispatch`` —
    ``"auto"`` (default; pick per call site from the compiled graph's
    level statistics), ``"kernel"`` (force the fused lane kernels) or
    ``"scalar"`` (force the persistent scalar DP).
    """

    kind: str = "incremental"
    options: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        from repro.mapping.evaluator import ENGINES

        if self.kind not in ENGINES:
            raise ConfigurationError(
                f"unknown engine kind {self.kind!r}; known: {sorted(ENGINES)}"
            )
        options = _require_mapping(self.options, "EngineSpec.options")
        _reject_unknown(
            options,
            {"kernel_batch_min_work", "dispatch"},
            "EngineSpec.options",
        )
        if options and self.kind != "array":
            raise ConfigurationError(
                f"engine option(s) {sorted(options)} apply to the "
                f"'array' engine only, not {self.kind!r}"
            )
        if "kernel_batch_min_work" in options:
            threshold = options["kernel_batch_min_work"]
            if not isinstance(threshold, int) or isinstance(threshold, bool) \
                    or threshold < 0:
                raise ConfigurationError(
                    "engine option 'kernel_batch_min_work' must be an "
                    f"integer >= 0, got {threshold!r}"
                )
        if "dispatch" in options:
            from repro.mapping.engine import ArrayEngine

            mode = options["dispatch"]
            if mode not in ArrayEngine.DISPATCH_MODES:
                raise ConfigurationError(
                    "engine option 'dispatch' must be one of "
                    f"{list(ArrayEngine.DISPATCH_MODES)}, got {mode!r}"
                )


# ----------------------------------------------------------------------
# the request
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExplorationRequest(_SpecBase):
    """One serializable exploration workload.

    ``kind`` selects the shape:

    * ``"single"`` — one run of ``strategy`` at ``seed``;
    * ``"batch"`` — multi-seed replicates: explicit ``seeds``, or
      ``runs`` consecutive seeds from ``seed``;
    * ``"portfolio"`` — race ``portfolio_kinds`` on one instance under
      evaluation-normalized budgets (seeds derived from ``seed``);
    * ``"sweep"`` — the Fig. 3 grid: ``sizes`` × ``runs`` annealing runs
      on EPICURE devices, seeded ``seed + 1000*r + n_clbs`` (the
      historical sweep formula, so spec-driven sweeps reproduce archived
      ones bit-for-bit).

    ``architecture`` may be omitted: a bundled application supplies its
    own platform, everything else defaults to the builtin EPICURE.
    ``deadline_ms`` defaults to the bundle's deadline (or the motion
    benchmark's 40 ms for sweeps).
    """

    schema_version: int = SCHEMA_VERSION
    kind: str = "single"
    application: ApplicationSpec = field(default_factory=ApplicationSpec)
    architecture: Optional[ArchitectureSpec] = None
    strategy: StrategySpec = field(default_factory=StrategySpec)
    budget: BudgetSpec = field(default_factory=BudgetSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    seed: int = 7
    runs: int = 1
    seeds: Optional[Tuple[int, ...]] = None
    sizes: Tuple[int, ...] = ()
    portfolio_kinds: Tuple[str, ...] = ()
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seeds is not None:
            object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "sizes", tuple(self.sizes))
        object.__setattr__(
            self, "portfolio_kinds", tuple(self.portfolio_kinds)
        )

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ConfigurationError(
                f"unknown request kind {self.kind!r}; "
                f"known: {list(REQUEST_KINDS)}"
            )
        self.application.validate()
        if self.architecture is not None:
            self.architecture.validate()
        self.strategy.validate()
        self.budget.validate()
        self.engine.validate()
        if self.runs < 1:
            raise ConfigurationError("request runs must be >= 1")
        if self.seeds is not None:
            if self.kind != "batch":
                raise ConfigurationError(
                    f"'seeds' only applies to batch requests, not "
                    f"{self.kind!r} (use 'seed' for the single base seed)"
                )
            if not self.seeds:
                raise ConfigurationError(
                    "request seeds, when given, needs at least one seed"
                )
        if self.runs != 1 and self.kind not in ("batch", "sweep"):
            raise ConfigurationError(
                f"'runs' only applies to batch and sweep requests, "
                f"not {self.kind!r}"
            )
        if (
            self.budget.warmup_iterations is not None
            and self.strategy.kind not in ("sa", "tempering")
        ):
            raise ConfigurationError(
                f"budget warmup_iterations is an annealer knob; strategy "
                f"{self.strategy.kind!r} would silently ignore it"
            )
        if self.kind == "sweep":
            if not self.sizes:
                raise ConfigurationError(
                    "a sweep request needs a non-empty 'sizes' grid"
                )
            if any(size < 1 for size in self.sizes):
                raise ConfigurationError("sweep sizes must all be >= 1")
            if self.strategy.kind != "sa":
                raise ConfigurationError(
                    "sweep requests run the annealer; leave strategy.kind "
                    "as 'sa'"
                )
            if self.architecture is not None:
                raise ConfigurationError(
                    "sweep requests build the builtin EPICURE platform at "
                    "each grid size; drop the 'architecture' spec"
                )
        elif self.sizes:
            raise ConfigurationError(
                f"'sizes' only applies to sweep requests, not {self.kind!r}"
            )
        if self.kind == "portfolio":
            from repro.search.runner import STRATEGY_KINDS

            unknown = set(self.portfolio_kinds) - set(STRATEGY_KINDS)
            if unknown:
                raise ConfigurationError(
                    f"unknown portfolio strategy kind(s) {sorted(unknown)}; "
                    f"known: {sorted(STRATEGY_KINDS)}"
                )
        elif self.portfolio_kinds:
            raise ConfigurationError(
                f"'portfolio_kinds' only applies to portfolio requests, "
                f"not {self.kind!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ConfigurationError("deadline_ms must be > 0")
        if (
            self.strategy.initial_solution is not None
            and self.kind not in ("single", "batch")
        ):
            raise ConfigurationError(
                f"initial_solution applies to single and batch requests "
                f"only, not {self.kind!r} (the instance varies per job)"
            )
        if self.budget.anytime is not None and self.kind == "portfolio":
            raise ConfigurationError(
                "anytime snapshots are not supported for portfolio "
                "requests (the racers run through their own driver)"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExplorationRequest":
        data = _require_mapping(data, "ExplorationRequest")
        names = [f.name for f in dataclasses.fields(cls)]
        _reject_unknown(data, names, "ExplorationRequest")
        version = data.get("schema_version")
        if version is None:
            raise ConfigurationError(
                "ExplorationRequest is missing 'schema_version' "
                f"(current version: {SCHEMA_VERSION})"
            )
        if not isinstance(version, int) or version < 1:
            raise ConfigurationError(
                f"schema_version must be a positive integer, got {version!r}"
            )
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"request schema_version {version} is newer than this "
                f"library understands ({SCHEMA_VERSION}); upgrade repro"
            )
        kwargs: Dict[str, Any] = {
            name: data[name] for name in names if name in data
        }
        kwargs["application"] = ApplicationSpec.from_dict(
            data.get("application", {})
        )
        if data.get("architecture") is not None:
            kwargs["architecture"] = ArchitectureSpec.from_dict(
                data["architecture"]
            )
        kwargs["strategy"] = StrategySpec.from_dict(data.get("strategy", {}))
        kwargs["budget"] = BudgetSpec.from_dict(data.get("budget", {}))
        kwargs["engine"] = EngineSpec.from_dict(data.get("engine", {}))
        request = cls(**kwargs)
        request.validate()
        return request

    def to_json(self, indent: int = 2) -> str:
        """Canonical full-form JSON (byte-stable across round trips)."""
        return json.dumps(self.to_dict(), indent=indent)

    def canonical_json(self) -> str:
        """The hashing form: key-sorted, separator-minimal full-form
        JSON.  Key sorting makes the bytes independent of spec-key
        ordering (and of ``PYTHONHASHSEED``); the full form makes them
        sensitive to every semantic field, defaulted or not."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def content_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` — the request's
        content address.

        Byte-stable across processes, runs and machines: two requests
        hash equal exactly when they describe the same workload
        document.  The exploration service composes this with the
        resolved instance hash to key its result cache; the golden
        fixtures in ``tests/api/test_content_hash.py`` pin the digests.
        """
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "ExplorationRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"request is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)


def load_request(path: str) -> ExplorationRequest:
    """Read and validate an :class:`ExplorationRequest` spec file."""
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(f"cannot read spec file: {exc}") from None
    return ExplorationRequest.from_json(text)
