"""The one resolution pipeline: specs → concrete objects.

Every client (CLI, experiments, bench, examples, a future service)
materializes :mod:`repro.api.specs` documents through this module, so
there is exactly one place where "builtin motion", "generated tgff/60"
or "the bundled instance at this path" turns into live
:class:`~repro.model.application.Application` /
:class:`~repro.arch.architecture.Architecture` / strategy objects.
Deserialization reuses the :mod:`repro.io` loaders verbatim — the spec
layer adds no second copy of the format glue.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
)
from repro.arch.architecture import Architecture, epicure_architecture
from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError
from repro.mapping.cost import CostFunction, MakespanCost, SystemCost
from repro.model.application import Application
from repro.model.generator import GeneratorConfig, random_application
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application
from repro.search.runner import StrategySpec as RunnerStrategySpec
from repro.search.strategy import SearchBudget

#: Named builtin applications an ``ApplicationSpec(kind="builtin")``
#: may reference.
BUILTIN_APPLICATIONS = {
    "motion": motion_detection_application,
}

#: Deadlines shipped with the builtin applications.
BUILTIN_DEADLINES_MS = {
    "motion": MOTION_DEADLINE_MS,
}

#: Named builtin architectures (builders taking ``n_clbs`` + options).
BUILTIN_ARCHITECTURES = {
    "epicure": epicure_architecture,
}


# ----------------------------------------------------------------------
# application / architecture
# ----------------------------------------------------------------------
@dataclass
class ResolvedProblem:
    """An application plus whatever platform context came with it (a
    bundled instance carries its own architecture and deadline)."""

    application: Application
    architecture: Optional[Architecture] = None
    deadline_ms: Optional[float] = None


def load_json_document(path: str, what: str) -> Dict[str, Any]:
    """Read one JSON object with spec-grade error messages."""
    import json

    try:
        with open(path) as handle:
            document = json.load(handle)
    except OSError as exc:
        raise ConfigurationError(f"cannot read {what} file: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{what} file {path!r} is not valid JSON: {exc}"
        ) from None
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"{what} file {path!r} must hold a JSON object, "
            f"got {type(document).__name__}"
        )
    return document


def _read_document(spec, what: str) -> Dict[str, Any]:
    if spec.document is not None:
        if not isinstance(spec.document, dict):
            raise ConfigurationError(
                f"{what} document must be a JSON object, "
                f"got {type(spec.document).__name__}"
            )
        return spec.document
    return load_json_document(spec.path, what)


def resolve_application(spec: ApplicationSpec) -> ResolvedProblem:
    """Materialize an application spec (fresh objects every call)."""
    from repro.io import application_from_dict, instance_from_dict

    spec.validate()
    if spec.kind == "builtin":
        return ResolvedProblem(
            application=BUILTIN_APPLICATIONS[spec.name](),
            deadline_ms=BUILTIN_DEADLINES_MS.get(spec.name),
        )
    if spec.kind == "generated":
        config = GeneratorConfig(**dict(spec.generator))
        return ResolvedProblem(
            application=random_application(config, seed=spec.seed)
        )
    if spec.kind == "bundled":
        instance = instance_from_dict(_read_document(spec, "bundled instance"))
        return ResolvedProblem(
            application=instance.application,
            architecture=instance.architecture,
            deadline_ms=instance.deadline_ms,
        )
    # inline application document
    return ResolvedProblem(
        application=application_from_dict(_read_document(spec, "application"))
    )


def resolve_architecture(
    spec: Optional[ArchitectureSpec],
    bundled: Optional[Architecture] = None,
) -> Architecture:
    """Materialize the platform: an explicit spec wins, then the bundled
    instance's architecture, then the builtin EPICURE default."""
    from repro.io import architecture_from_dict

    if spec is None:
        if bundled is not None:
            return bundled
        spec = ArchitectureSpec()
    spec.validate()
    if spec.kind == "builtin":
        builder = BUILTIN_ARCHITECTURES[spec.name]
        try:
            return builder(n_clbs=spec.n_clbs, **dict(spec.options))
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid option for builtin architecture {spec.name!r}: {exc}"
            ) from None
    return architecture_from_dict(_read_document(spec, "architecture"))


# ----------------------------------------------------------------------
# cost functions and resource catalogs
# ----------------------------------------------------------------------
def build_cost_function(cost: Optional[Dict[str, Any]]) -> Optional[CostFunction]:
    """Declarative cost spec → live :class:`CostFunction` (or ``None``
    for the strategy default)."""
    if cost is None:
        return None
    if cost["kind"] == "makespan":
        return MakespanCost()
    return SystemCost(
        deadline_ms=cost["deadline_ms"],
        penalty_per_ms=cost.get("penalty_per_ms", 10.0),
    )


def _make_processor(name: str, **params: Any) -> Processor:
    return Processor(name, **params)


def _make_reconfigurable(name: str, **params: Any) -> ReconfigurableCircuit:
    return ReconfigurableCircuit(name, **params)


def _make_asic(name: str, **params: Any) -> Asic:
    return Asic(name, **params)


_CATALOG_BUILDERS = {
    "processor": _make_processor,
    "reconfigurable": _make_reconfigurable,
    "asic": _make_asic,
}


def build_catalog(entries) -> Optional[List[Any]]:
    """Declarative catalog entries → resource factories.

    The factories are :func:`functools.partial` objects over top-level
    builders, so — unlike the lambda catalogs of the historical examples
    — a spec-built catalog pickles across the runner's ``spawn``
    boundary and works with ``jobs=N``.
    """
    if not entries:
        return None
    factories = []
    for entry in entries:
        params = {k: v for k, v in entry.items() if k != "kind"}
        try:
            builder = _CATALOG_BUILDERS[entry["kind"]]
            builder("__probe__", **params)  # fail at resolve, not mid-run
        except TypeError as exc:
            raise ConfigurationError(
                f"invalid catalog {entry['kind']!r} params: {exc}"
            ) from None
        factories.append(functools.partial(builder, **params))
    return factories


# ----------------------------------------------------------------------
# strategy folding
# ----------------------------------------------------------------------
#: Per-strategy name of the natural iteration unit ``BudgetSpec.
#: iterations`` maps onto.
_ITERATION_OPTION = {
    "sa": "iterations",
    "hill_climber": "iterations",
    "tabu": "iterations",
    "ga": "generations",
    "random": "samples",
    "tempering": "iterations",
}


def resolve_strategy(
    strategy: StrategySpec,
    budget: BudgetSpec,
    engine: EngineSpec,
) -> RunnerStrategySpec:
    """Fold strategy + budget + engine into one runner spec.

    The folding is key-minimal: only knobs that are actually set appear
    in the options dict, so spec-driven runs produce the same strategy
    fingerprints (hence reuse the same JSONL checkpoints) as the
    historical hand-assembled jobs.
    """
    strategy.validate()
    budget.validate()
    engine.validate()
    options: Dict[str, Any] = dict(strategy.options)
    if budget.iterations is not None:
        options[_ITERATION_OPTION[strategy.kind]] = budget.iterations
    if strategy.kind in ("sa", "tempering"):
        from repro.sa.annealer import default_warmup

        if budget.warmup_iterations is not None:
            options["warmup_iterations"] = budget.warmup_iterations
        elif (
            "warmup_iterations" not in options
            and budget.iterations is not None
        ):
            options["warmup_iterations"] = default_warmup(budget.iterations)
        if budget.stall_limit is not None:
            options["stall_limit"] = budget.stall_limit
    # Key-minimal engine folding: a bare kind string unless tuning
    # options are present (keeps historical checkpoint fingerprints).
    if engine.options:
        options["engine"] = {"kind": engine.kind, **dict(engine.options)}
    else:
        options["engine"] = engine.kind
    cost_function = build_cost_function(strategy.cost)
    if cost_function is not None:
        options["cost_function"] = cost_function
    catalog = build_catalog(strategy.catalog)
    if catalog is not None:
        options["catalog"] = catalog
    spec = RunnerStrategySpec(strategy.kind, options)
    spec.validate()
    return spec


def resolve_budget(budget: BudgetSpec) -> Optional[SearchBudget]:
    """The wall-clock / stall part of the budget as a
    :class:`SearchBudget` (``None`` when neither limit is set; the
    iteration budget is folded into the strategy options instead so
    historical fingerprints stay stable)."""
    if budget.time_limit_s is None and budget.stall_limit is None:
        return None
    return SearchBudget(
        time_limit_s=budget.time_limit_s,
        stall_limit=budget.stall_limit,
    )


# ----------------------------------------------------------------------
# the request
# ----------------------------------------------------------------------
@dataclass
class ResolvedRequest:
    """Everything the façade needs to execute one request."""

    kind: str
    application: Application
    architecture: Architecture
    strategy: RunnerStrategySpec
    seeds: List[int] = field(default_factory=list)
    sizes: Tuple[int, ...] = ()
    portfolio_kinds: Tuple[str, ...] = ()
    deadline_ms: Optional[float] = None
    engine: str = "incremental"
    iterations: Optional[int] = None
    warmup_iterations: Optional[int] = None
    budget: Optional[SearchBudget] = None
    #: Warm-start seed decoded (and repaired if needed) against the
    #: resolved application/architecture — the same live objects the
    #: façade builds its :class:`InstanceSpec` from, so the pickled job
    #: stays one consistent object graph.
    initial: Any = None
    #: Plain-dict anytime snapshot config, threaded to ``SearchJob``.
    anytime: Optional[Dict[str, Any]] = None
    #: Number of donor assignments :func:`repro.mapping.seed.
    #: seed_solution` had to repair while decoding ``initial``.
    initial_repairs: int = 0


def sweep_seed(seed0: int, n_clbs: int, run: int) -> int:
    """The historical Fig. 3 seeding formula — shared so spec-driven
    sweeps reproduce archived hand-wired ones bit-for-bit."""
    return seed0 + 1000 * run + n_clbs


def resolve_request(request: ExplorationRequest) -> ResolvedRequest:
    """Materialize a request into concrete objects plus the seed plan."""
    request.validate()
    problem = resolve_application(request.application)
    architecture = resolve_architecture(
        request.architecture, bundled=problem.architecture
    )
    strategy = resolve_strategy(
        request.strategy, request.budget, request.engine
    )
    if request.kind == "single":
        seeds = [request.seed]
    elif request.kind == "batch":
        seeds = (
            list(request.seeds)
            if request.seeds is not None
            else [request.seed + r for r in range(request.runs)]
        )
    elif request.kind == "sweep":
        seeds = [
            sweep_seed(request.seed, n_clbs, r)
            for n_clbs in request.sizes
            for r in range(request.runs)
        ]
    else:  # portfolio derives its own seeds from the base seed
        seeds = [request.seed]
    deadline = request.deadline_ms
    if deadline is None:
        deadline = problem.deadline_ms
    if deadline is None and request.kind == "sweep":
        deadline = 40.0  # the paper's constraint, the historical default
    initial = None
    initial_repairs = 0
    if request.strategy.initial_solution is not None:
        from repro.mapping.seed import seed_solution

        initial, initial_repairs = seed_solution(
            request.strategy.initial_solution,
            problem.application,
            architecture,
        )
    return ResolvedRequest(
        kind=request.kind,
        application=problem.application,
        architecture=architecture,
        strategy=strategy,
        seeds=seeds,
        sizes=request.sizes,
        portfolio_kinds=request.portfolio_kinds,
        deadline_ms=deadline,
        engine=request.engine.kind,
        iterations=request.budget.iterations,
        warmup_iterations=request.budget.warmup_iterations,
        budget=resolve_budget(request.budget),
        initial=initial,
        anytime=(
            dict(request.budget.anytime)
            if request.budget.anytime is not None
            else None
        ),
        initial_repairs=initial_repairs,
    )
