"""``explore(request) -> ExplorationResponse`` — the public front door.

One call executes any :class:`~repro.api.specs.ExplorationRequest`
(single run, multi-seed batch, portfolio race, sweep grid) through the
unified search runner and returns a serializable result envelope: best
solution mapping, evaluation breakdown, best-so-far history, per-seed
stats, and an environment stamp.  ``jobs=N`` fans independent runs
across worker processes; results are bit-identical to ``jobs=1`` for
the same request (every run is seeded and isolated by the runner).

The in-memory response additionally carries the live objects clients
built on before this API existed — the raw
:class:`~repro.search.runner.JobOutcome` list, the sweep's
:class:`~repro.analysis.sweep.DeviceSweepRow` rows, the portfolio's
:class:`~repro.search.portfolio.PortfolioEntry` entries — so the
experiment modules could become thin spec builders without changing
their own return types.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api.resolve import ResolvedRequest, resolve_request
from repro.api.specs import SCHEMA_VERSION, ExplorationRequest
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluation
from repro.search.runner import (
    InstanceSpec,
    JobOutcome,
    SearchJob,
    best_evaluation_of,
    run_search_jobs,
)

RESPONSE_FORMAT = "exploration-response"


def environment_stamp() -> Dict[str, Any]:
    """Where a response was computed (stamped into every envelope)."""
    from repro import __version__

    return {
        "repro_version": __version__,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def evaluation_to_dict(evaluation: Evaluation) -> Dict[str, Any]:
    """The full cost breakdown of one evaluated solution."""
    return {
        "makespan_ms": evaluation.makespan_ms,
        "feasible": evaluation.feasible,
        "num_contexts": evaluation.num_contexts,
        "hw_tasks": evaluation.hw_tasks,
        "sw_tasks": evaluation.sw_tasks,
        "initial_reconfig_ms": evaluation.initial_reconfig_ms,
        "dynamic_reconfig_ms": evaluation.dynamic_reconfig_ms,
        "comm_ms": evaluation.comm_ms,
        "clbs_used": evaluation.clbs_used,
    }


# ----------------------------------------------------------------------
# the response envelope
# ----------------------------------------------------------------------
@dataclass
class ExplorationResponse:
    """Serializable result envelope for any request kind.

    ``results`` holds one record per run (seed, best cost, iteration and
    evaluation counts, runtime, evaluation breakdown, best-so-far
    ``history`` when the strategy kept one); ``best`` points at the
    winning run and carries its solution document; ``summary`` is the
    kind-specific aggregate (batch statistics, sweep rows, portfolio
    scoreboard).  ``outcomes`` / ``rows`` / ``entries`` are the live
    in-process objects (never serialized).
    """

    kind: str
    request: Dict[str, Any]
    results: List[Dict[str, Any]] = field(default_factory=list)
    best: Optional[Dict[str, Any]] = None
    summary: Dict[str, Any] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=environment_stamp)
    jobs: int = 1
    schema_version: int = SCHEMA_VERSION
    #: Telemetry summary block (counters/gauges/timers snapshot), present
    #: only when the caller supplied a recorder; omitted from the JSON
    #: envelope otherwise so pre-telemetry documents stay byte-identical.
    telemetry: Optional[Dict[str, Any]] = None
    #: Anytime incumbent snapshots, one entry per run that recorded any
    #: (``{"index": run index, "snapshots": [...]}``); present only when
    #: the request's budget carried an ``anytime`` block, omitted from
    #: the JSON envelope otherwise so pre-anytime documents stay
    #: byte-identical.
    partials: Optional[List[Dict[str, Any]]] = None
    #: Live objects, in-process only (excluded from the JSON envelope).
    outcomes: List[JobOutcome] = field(
        default_factory=list, repr=False, compare=False
    )
    rows: List[Any] = field(default_factory=list, repr=False, compare=False)
    entries: List[Any] = field(default_factory=list, repr=False, compare=False)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            "format": RESPONSE_FORMAT,
            "schema_version": self.schema_version,
            "kind": self.kind,
            "environment": dict(self.environment),
            "jobs": self.jobs,
            "request": self.request,
            "results": self.results,
            "best": self.best,
            "summary": self.summary,
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        if self.partials is not None:
            data["partials"] = self.partials
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExplorationResponse":
        if data.get("format") != RESPONSE_FORMAT:
            raise ConfigurationError(
                f"expected a {RESPONSE_FORMAT!r} document, "
                f"got {data.get('format')!r}"
            )
        version = data.get("schema_version")
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported response schema_version {version!r} "
                f"(this library understands <= {SCHEMA_VERSION})"
            )
        return cls(
            kind=data["kind"],
            request=data.get("request", {}),
            results=list(data.get("results", [])),
            best=data.get("best"),
            summary=dict(data.get("summary", {})),
            environment=dict(data.get("environment", {})),
            jobs=data.get("jobs", 1),
            schema_version=version,
            telemetry=data.get("telemetry"),
            partials=data.get("partials"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExplorationResponse":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"response is not valid JSON: {exc}"
            ) from None
        return cls.from_dict(data)

    # -- disk round-trip -----------------------------------------------
    def save(self, path: str) -> str:
        """Write the envelope to ``path``; returns the exact text
        written (what :func:`load_response` reads back byte-identically
        — the contract the service's result store relies on)."""
        text = self.to_json()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return text

    # -- convenience views ---------------------------------------------
    @property
    def best_outcome(self) -> Optional[JobOutcome]:
        """The winning run's live outcome (in-process responses only)."""
        if self.best is None or not self.outcomes:
            return None
        return self.outcomes[self.best["index"]]

    @property
    def best_result(self):
        outcome = self.best_outcome
        return None if outcome is None else outcome.result


def load_response(path: str) -> ExplorationResponse:
    """Read an envelope written by :meth:`ExplorationResponse.save` (or
    by the service's result store).  ``load_response(p).to_json()`` is
    byte-identical to the file's content: the outer key order is fixed
    by ``to_dict`` and every nested document passes through with its
    written order preserved."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read response file: {exc}"
        ) from None
    return ExplorationResponse.from_json(text)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _result_record(outcome: JobOutcome, evaluation: Evaluation) -> Dict[str, Any]:
    result = outcome.result
    return {
        "tag": outcome.tag,
        "seed": outcome.seed,
        "strategy": result.strategy,
        "best_cost": result.best_cost,
        "final_cost": result.final_cost,
        "iterations_run": result.iterations_run,
        "runtime_s": result.runtime_s,
        "evaluations": result.evaluations,
        "from_checkpoint": outcome.from_checkpoint,
        "evaluation": evaluation_to_dict(evaluation),
        "history": list(result.history),
    }


def _best_record(
    outcomes: List[JobOutcome], evaluations: List[Evaluation]
) -> Dict[str, Any]:
    from repro.io import solution_to_dict

    index = min(
        range(len(outcomes)), key=lambda i: outcomes[i].result.best_cost
    )
    outcome = outcomes[index]
    return {
        "index": index,
        "tag": outcome.tag,
        "seed": outcome.seed,
        "cost": outcome.result.best_cost,
        "evaluation": evaluation_to_dict(evaluations[index]),
        "solution": solution_to_dict(outcome.result.best_solution),
    }


def _partials_of(outcomes: List[JobOutcome]) -> Optional[List[Dict[str, Any]]]:
    """The response-level anytime section: one entry per run that
    recorded snapshots (``None`` when no run did, keeping envelopes
    without an anytime budget byte-identical to pre-anytime ones)."""
    partials = [
        {
            "index": outcome.index,
            "snapshots": list(block["snapshots"]),
        }
        for outcome in outcomes
        for block in (outcome.result.extras.get("anytime"),)
        if block is not None and block["snapshots"]
    ]
    return partials or None


def _telemetry_block(telemetry) -> Dict[str, Any]:
    """The summary block attached to a response (snapshot + stream size)."""
    block = telemetry.snapshot()
    block["label"] = telemetry.label
    block["events"] = len(telemetry.events)
    return block


def _run_jobs_response(
    request: ExplorationRequest,
    job_list: List[SearchJob],
    jobs: int,
    checkpoint_path: Optional[str],
    telemetry=None,
):
    outcomes = run_search_jobs(
        job_list, jobs=jobs, checkpoint_path=checkpoint_path,
        telemetry=telemetry,
    )
    evaluations = [best_evaluation_of(o.result) for o in outcomes]
    return ExplorationResponse(
        kind=request.kind,
        request=request.to_dict(),
        results=[
            _result_record(o, ev) for o, ev in zip(outcomes, evaluations)
        ],
        best=_best_record(outcomes, evaluations),
        jobs=jobs,
        outcomes=list(outcomes),
    ), evaluations


def explore(
    request: ExplorationRequest,
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    telemetry=None,
) -> ExplorationResponse:
    """Execute ``request`` and return the result envelope.

    ``jobs=N`` runs independent searches across N worker processes
    (bit-identical to ``jobs=1``); ``checkpoint_path`` (JSONL) makes
    batch-shaped requests resumable through the runner's checkpoint
    machinery.  ``telemetry`` (a
    :class:`~repro.obs.telemetry.Telemetry`) records every run's event
    stream — merged deterministically across workers — and attaches a
    counters/timers summary block to the response.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    resolved = resolve_request(request)
    if resolved.kind == "portfolio":
        return _explore_portfolio(
            request, resolved, jobs, checkpoint_path, telemetry
        )
    if resolved.kind == "sweep":
        return _explore_sweep(
            request, resolved, jobs, checkpoint_path, telemetry
        )

    instance = InstanceSpec(
        resolved.application, architecture=resolved.architecture
    )
    job_list = [
        SearchJob(
            resolved.strategy,
            instance,
            seed=seed,
            tag=position,
            budget=resolved.budget,
            initial=resolved.initial,
            anytime=resolved.anytime,
        )
        for position, seed in enumerate(resolved.seeds)
    ]
    response, _ = _run_jobs_response(
        request, job_list, jobs, checkpoint_path, telemetry
    )
    if telemetry is not None:
        response.telemetry = _telemetry_block(telemetry)
    response.partials = _partials_of(response.outcomes)
    if resolved.kind == "batch":
        from repro.analysis.stats import summarize

        costs = [o.result.best_cost for o in response.outcomes]
        summary = summarize(costs)
        response.summary = {
            "runs": len(costs),
            "best_cost_mean": summary.mean,
            "best_cost_std": summary.std,
            "best_cost_min": summary.minimum,
            "best_cost_max": summary.maximum,
        }
    if resolved.deadline_ms is not None:
        # Compare the makespan, not best_cost: under a SystemCost the
        # cost is money + penalty and would invert this verdict.
        response.summary["deadline_ms"] = resolved.deadline_ms
        response.summary["deadline_met"] = (
            response.best["evaluation"]["feasible"]
            and response.best["evaluation"]["makespan_ms"]
            <= resolved.deadline_ms
        )
    return response


def _explore_portfolio(
    request: ExplorationRequest,
    resolved: ResolvedRequest,
    jobs: int,
    checkpoint_path: Optional[str],
    telemetry=None,
) -> ExplorationResponse:
    from repro.io import solution_to_dict
    from repro.search.portfolio import PORTFOLIO_KINDS, run_portfolio

    entries = run_portfolio(
        resolved.application,
        architecture=resolved.architecture,
        iterations=(
            resolved.iterations if resolved.iterations is not None else 8000
        ),
        seed=request.seed,
        engine=resolved.engine,
        jobs=jobs,
        kinds=resolved.portfolio_kinds or PORTFOLIO_KINDS,
        checkpoint_path=checkpoint_path,
        warmup_iterations=resolved.warmup_iterations,
        telemetry=telemetry,
    )
    results = []
    for entry in entries:
        record = {
            "tag": entry.kind,
            "seed": entry.seed,
            "strategy": entry.result.strategy,
            "best_cost": entry.result.best_cost,
            "final_cost": entry.result.final_cost,
            "iterations_run": entry.result.iterations_run,
            "runtime_s": entry.result.runtime_s,
            "evaluations": entry.result.evaluations,
            "from_checkpoint": False,
            "evaluation": evaluation_to_dict(entry.evaluation),
            "history": list(entry.result.history),
        }
        results.append(record)
    winner = entries[0]
    best = {
        "index": 0,
        "tag": winner.kind,
        "seed": winner.seed,
        "cost": winner.best_cost,
        "evaluation": evaluation_to_dict(winner.evaluation),
        "solution": solution_to_dict(winner.result.best_solution),
    }
    summary: Dict[str, Any] = {
        "winner": winner.kind,
        "ranking": [entry.kind for entry in entries],
    }
    if resolved.deadline_ms is not None:
        summary["deadline_ms"] = resolved.deadline_ms
        summary["deadline_met"] = winner.evaluation.meets(resolved.deadline_ms)
    return ExplorationResponse(
        kind=request.kind,
        request=request.to_dict(),
        results=results,
        best=best,
        summary=summary,
        jobs=jobs,
        telemetry=(
            _telemetry_block(telemetry) if telemetry is not None else None
        ),
        entries=list(entries),
    )


def _explore_sweep(
    request: ExplorationRequest,
    resolved: ResolvedRequest,
    jobs: int,
    checkpoint_path: Optional[str],
    telemetry=None,
) -> ExplorationResponse:
    # Late imports: analysis.sweep routes back through this façade.
    from repro.analysis.sweep import _aggregate_rows, smallest_feasible_device
    from repro.api.resolve import sweep_seed

    job_list = [
        SearchJob(
            resolved.strategy,
            InstanceSpec(resolved.application, n_clbs=n_clbs),
            seed=sweep_seed(request.seed, n_clbs, r),
            tag=[n_clbs, r],
            budget=resolved.budget,
            anytime=resolved.anytime,
        )
        for n_clbs in resolved.sizes
        for r in range(request.runs)
    ]
    response, evaluations = _run_jobs_response(
        request, job_list, jobs, checkpoint_path, telemetry
    )
    if telemetry is not None:
        response.telemetry = _telemetry_block(telemetry)
    response.partials = _partials_of(response.outcomes)
    by_cell = {
        (outcome.tag[0], outcome.tag[1]): evaluation
        for outcome, evaluation in zip(response.outcomes, evaluations)
    }
    deadline = resolved.deadline_ms if resolved.deadline_ms is not None else 40.0
    rows = _aggregate_rows(resolved.sizes, request.runs, by_cell, deadline)
    response.rows = rows
    response.summary = {
        "sizes": list(resolved.sizes),
        "runs": request.runs,
        "deadline_ms": deadline,
        "smallest_feasible_n_clbs": smallest_feasible_device(rows, deadline),
        "rows": [
            {
                "n_clbs": row.n_clbs,
                "runs": row.runs,
                "execution_ms": row.execution_ms,
                "execution_std_ms": row.execution_std_ms,
                "initial_reconfig_ms": row.initial_reconfig_ms,
                "dynamic_reconfig_ms": row.dynamic_reconfig_ms,
                "num_contexts": row.num_contexts,
                "hw_tasks": row.hw_tasks,
                "feasible_fraction": row.feasible_fraction,
            }
            for row in rows
        ],
    }
    return response
