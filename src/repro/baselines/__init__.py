"""Baseline optimizers the paper compares against or mentions.

* :mod:`~repro.baselines.ga` — the genetic-algorithm flow of Ben Chehida
  & Auguin [6] (the paper's experimental comparator): GA spatial
  partitioning, deterministic clustering for temporal partitioning,
  critical-path list scheduling.
* :mod:`~repro.baselines.tabu` — tabu search (the paper's related-work
  discussion singles out its tabu-list tuning burden).
* :mod:`~repro.baselines.hill_climber`, :mod:`~repro.baselines.random_search`
  — sanity baselines for the ablation benches.
"""

from repro.baselines.clustering import cluster_into_contexts
from repro.baselines.list_scheduler import list_schedule_software, decode_partition
from repro.baselines.ga import GeneticConfig, GeneticPartitioner, GeneticResult
from repro.baselines.tabu import TabuConfig, TabuSearch, TabuResult
from repro.baselines.hill_climber import HillClimber, HillClimbResult
from repro.baselines.random_search import RandomSearch, RandomSearchResult

__all__ = [
    "cluster_into_contexts",
    "list_schedule_software",
    "decode_partition",
    "GeneticConfig",
    "GeneticPartitioner",
    "GeneticResult",
    "TabuConfig",
    "TabuSearch",
    "TabuResult",
    "HillClimber",
    "HillClimbResult",
    "RandomSearch",
    "RandomSearchResult",
]
