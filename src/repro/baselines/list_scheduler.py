"""Critical-path list scheduling and partition decoding.

The third stage of the GA baseline flow [6]: once the spatial partition
and the contexts are fixed, order the software tasks on the processor by
a classic bottom-level (critical path) priority list scheduler.  Also
provides :func:`decode_partition`, the bridge from a raw HW/SW partition
(what a GA chromosome encodes) to a full :class:`Solution` evaluable by
the library's evaluator — so the baseline and the annealer are scored by
the *same* cost model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.arch.architecture import Architecture
from repro.baselines.clustering import cluster_into_contexts
from repro.errors import MappingError
from repro.graph.longest_path import bottom_levels
from repro.mapping.solution import Solution
from repro.model.application import Application


def list_schedule_software(
    application: Application,
    sw_tasks: Iterable[int],
    node_time: Optional[Dict[int, float]] = None,
) -> List[int]:
    """Priority-list order of ``sw_tasks``: ready tasks first, ties by
    descending bottom level (longest remaining path), then by index.

    The returned order is a topological restriction, hence always
    realizable as a processor total order.
    """
    sw_set = set(sw_tasks)
    times = node_time or {t.index: t.sw_time_ms for t in application.tasks()}
    levels = bottom_levels(
        application.dag, lambda n: times.get(n, 0.0)
    )
    indeg = {
        t: len(application.predecessors(t))
        for t in application.task_indices()
    }
    ready = [t for t, d in indeg.items() if d == 0]
    order: List[int] = []
    while ready:
        ready.sort(key=lambda t: (-levels[t], t))
        task = ready.pop(0)
        if task in sw_set:
            order.append(task)
        for succ in application.successors(task):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                ready.append(succ)
    if len(order) != len(sw_set):
        raise MappingError("software set contains unknown or cyclic tasks")
    return order


def decode_partition(
    application: Application,
    architecture: Architecture,
    hw_tasks: Sequence[int],
    impl_choice: Optional[Dict[int, int]] = None,
) -> Solution:
    """Build a full solution from a spatial partition.

    Hardware tasks are clustered into contexts (first RC of the
    architecture) and software tasks list-scheduled on the first
    processor — the deterministic realization stage of the GA baseline.
    """
    impl_choice = impl_choice or {}
    processors = architecture.processors()
    rcs = architecture.reconfigurable_circuits()
    if not processors:
        raise MappingError("architecture has no processor")
    if hw_tasks and not rcs:
        raise MappingError("hardware tasks requested but no DRLC available")
    solution = Solution(application, architecture)
    for task_index, choice in impl_choice.items():
        solution.set_implementation_choice(task_index, choice)

    hw_list = list(dict.fromkeys(hw_tasks))
    for t in hw_list:
        if not application.task(t).hardware_capable:
            raise MappingError(f"task {t} has no hardware implementation")
    if hw_list:
        rc = rcs[0]
        clbs_of = {t: solution.task_clbs(t) for t in hw_list}
        contexts = cluster_into_contexts(application, rc, hw_list, clbs_of)
        for k, members in enumerate(contexts):
            for i, t in enumerate(members):
                if i == 0:
                    solution.spawn_context(t, rc.name, k)
                else:
                    solution.assign_to_context(t, rc.name, k)

    sw_tasks = [
        t for t in application.task_indices() if t not in set(hw_list)
    ]
    order = list_schedule_software(application, sw_tasks)
    proc = processors[0]
    for t in order:
        solution.assign_to_processor(t, proc.name)
    solution.validate()
    return solution
