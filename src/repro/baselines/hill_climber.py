"""Greedy hill climbing: the zero-temperature ablation of the annealer.

Shares the annealer's move space but accepts only strict improvements.
Included so the schedule ablation (``bench_ablation_schedules.py``) can
show what the temperature actually buys.  Implements the unified
:class:`~repro.search.strategy.SearchStrategy` protocol; the loop
bookkeeping lives in the shared tracker.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.moves import MoveGenerator
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTracker,
    StepCallback,
)

#: Deprecated alias — hill climbing returns the unified
#: :class:`~repro.search.strategy.SearchResult` since the search-layer
#: refactor.
HillClimbResult = SearchResult


class HillClimber(SearchStrategy):
    """First-improvement stochastic hill climbing.

    ``evaluator`` may be an :class:`Evaluator` facade or any
    :class:`~repro.mapping.engine.EvaluationEngine` — the climber only
    needs ``makespan_ms``, so it shares whichever engine (full rebuild
    or incremental fast path) the caller selected.
    """

    name = "hill_climber"

    def __init__(
        self,
        evaluator: Evaluator,
        move_generator: MoveGenerator,
        iterations: int = 5000,
        seed: Optional[int] = None,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.evaluator = evaluator
        self.move_generator = move_generator
        self.iterations = iterations
        self.seed = seed

    def run(self, initial_solution: Solution) -> SearchResult:
        return self.search(initial_solution)

    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        rng = random.Random(self.seed)
        if initial is None:
            initial = random_initial_solution(
                self.evaluator.application, self.evaluator.architecture, rng
            )
        solution = initial
        iterations = (
            budget.resolve_iterations(self.iterations)
            if budget is not None else self.iterations
        )
        tele = self.telemetry
        evaluations_before = self.evaluator.evaluations
        with tele.phase("init"):
            current_cost = self.evaluator.makespan_ms(solution)
        tracker = SearchTracker(
            self.name, budget=budget, seed=self.seed, on_step=on_step,
            telemetry=tele,
        )
        tracker.begin(current_cost, solution)
        for iteration in range(1, iterations + 1):
            accepted = False
            move_name = ""
            try:
                with tele.phase("propose"):
                    move = self.move_generator.propose(solution, rng)
                    move_name = move.name
                    move.apply(solution)
            except InfeasibleMoveError:
                tracker.observe(iteration, current_cost, solution,
                                accepted=False, stall_eligible=False)
                if tracker.exhausted():
                    break
                continue
            with tele.phase("evaluate"):
                cost = self.evaluator.makespan_ms(solution)
            with tele.phase("accept"):
                if cost < current_cost:
                    current_cost = cost
                    accepted = True
                else:
                    move.undo(solution)
            tracker.observe(iteration, current_cost, solution,
                            accepted=accepted, move_name=move_name)
            if tracker.exhausted():
                break
        tracker.record_engine(self.evaluator)
        return tracker.finish(
            evaluations=self.evaluator.evaluations - evaluations_before,
        )
