"""Greedy hill climbing: the zero-temperature ablation of the annealer.

Shares the annealer's move space but accepts only strict improvements.
Included so the schedule ablation (``bench_ablation_schedules.py``) can
show what the temperature actually buys.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution
from repro.sa.moves import MoveGenerator


@dataclass
class HillClimbResult:
    best_solution: Solution
    best_cost: float
    iterations_run: int
    runtime_s: float
    history: List[float] = field(default_factory=list)


class HillClimber:
    """First-improvement stochastic hill climbing.

    ``evaluator`` may be an :class:`Evaluator` facade or any
    :class:`~repro.mapping.engine.EvaluationEngine` — the climber only
    needs ``makespan_ms``, so it shares whichever engine (full rebuild
    or incremental fast path) the caller selected.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        move_generator: MoveGenerator,
        iterations: int = 5000,
        seed: Optional[int] = None,
    ) -> None:
        if iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        self.evaluator = evaluator
        self.move_generator = move_generator
        self.iterations = iterations
        self.seed = seed

    def run(self, initial_solution: Solution) -> HillClimbResult:
        rng = random.Random(self.seed)
        solution = initial_solution
        current_cost = self.evaluator.makespan_ms(solution)
        history = [current_cost]
        started = time.perf_counter()
        for _ in range(self.iterations):
            try:
                move = self.move_generator.propose(solution, rng)
                move.apply(solution)
            except InfeasibleMoveError:
                history.append(current_cost)
                continue
            cost = self.evaluator.makespan_ms(solution)
            if cost < current_cost:
                current_cost = cost
            else:
                move.undo(solution)
            history.append(current_cost)
        return HillClimbResult(
            best_solution=solution,
            best_cost=current_cost,
            iterations_run=self.iterations,
            runtime_s=time.perf_counter() - started,
            history=history,
        )
