"""Genetic-algorithm HW/SW partitioning (the Ben Chehida & Auguin flow).

The paper's experimental comparator [6]: spatial partitioning is
explored by a genetic algorithm (population 300 in the original); for
each individual, temporal partitioning is performed by a deterministic
clustering and scheduling by a deterministic list scheduler.  The paper
reports 28 ms solution quality in 4 minutes against its own 18.1 ms in
under 10 seconds; our benchmark regenerates that comparison shape
(``benchmarks/bench_comparison.py``).

Chromosome encoding: one gene per hardware-capable task, ``-1`` for
software, otherwise the index of the selected hardware implementation.
Fitness is the library's standard evaluation (longest path of the
realized search graph), so GA and annealer compete on identical ground.

Implements the unified :class:`~repro.search.strategy.SearchStrategy`
protocol: ``iterations`` count generations
(``result.generations_run`` is the historical alias), ``history`` is
the best cost after each generation, and ``extras["best_evaluation"]``
carries the full evaluation of the winner.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architecture import Architecture
from repro.baselines.list_scheduler import decode_partition
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluation, Evaluator
from repro.mapping.solution import Solution
from repro.model.application import Application
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTracker,
    StepCallback,
)

Chromosome = Tuple[int, ...]

#: Deprecated alias — the GA returns the unified
#: :class:`~repro.search.strategy.SearchResult` since the search-layer
#: refactor.
GeneticResult = SearchResult


@dataclass
class GeneticConfig:
    """GA hyper-parameters (the tuning burden the paper criticizes)."""

    population_size: int = 300
    generations: int = 40
    crossover_rate: float = 0.9
    mutation_rate: float = 0.03
    tournament_size: int = 3
    elitism: int = 2
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be >= 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must lie in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must lie in [0, 1]")
        if self.tournament_size < 1:
            raise ConfigurationError("tournament_size must be >= 1")
        if not 0 <= self.elitism < self.population_size:
            raise ConfigurationError("elitism must lie in [0, population_size)")


class GeneticPartitioner(SearchStrategy):
    """GA over spatial partitions with deterministic realization."""

    name = "ga"

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        config: Optional[GeneticConfig] = None,
        bus_policy: str = "ordered",
        engine: str = "full",
    ) -> None:
        self.application = application
        self.architecture = architecture
        self.config = config if config is not None else GeneticConfig()
        self.config.validate()
        self.evaluator = Evaluator(
            application, architecture, bus_policy, engine=engine
        )
        self._hw_capable = sorted(
            t.index for t in application.tasks() if t.hardware_capable
        )
        self._num_impls = {
            t: application.task(t).num_implementations for t in self._hw_capable
        }

    # ------------------------------------------------------------------
    # chromosome plumbing
    # ------------------------------------------------------------------
    def random_chromosome(self, rng: random.Random) -> Chromosome:
        genes = []
        for t in self._hw_capable:
            if rng.random() < 0.5:
                genes.append(-1)
            else:
                genes.append(rng.randrange(self._num_impls[t]))
        return tuple(genes)

    def decode(self, chromosome: Chromosome) -> Solution:
        hw_tasks = [
            t for t, g in zip(self._hw_capable, chromosome) if g >= 0
        ]
        impl_choice = {
            t: g for t, g in zip(self._hw_capable, chromosome) if g >= 0
        }
        return decode_partition(
            self.application, self.architecture, hw_tasks, impl_choice
        )

    def fitness(self, chromosome: Chromosome) -> float:
        """Cost (lower is better): makespan of the decoded solution."""
        return self.evaluator.makespan_ms(self.decode(chromosome))

    def _crossover(
        self, a: Chromosome, b: Chromosome, rng: random.Random
    ) -> Chromosome:
        if len(a) < 2:
            return a
        point = rng.randrange(1, len(a))
        return a[:point] + b[point:]

    def _mutate(self, chromosome: Chromosome, rng: random.Random) -> Chromosome:
        genes = list(chromosome)
        for i, t in enumerate(self._hw_capable):
            if rng.random() < self.config.mutation_rate:
                if genes[i] >= 0 and rng.random() < 0.5:
                    genes[i] = -1
                else:
                    genes[i] = rng.randrange(self._num_impls[t])
        return tuple(genes)

    def _tournament(
        self,
        population: Sequence[Chromosome],
        costs: Dict[Chromosome, float],
        rng: random.Random,
    ) -> Chromosome:
        best = None
        for _ in range(self.config.tournament_size):
            candidate = population[rng.randrange(len(population))]
            if best is None or costs[candidate] < costs[best]:
                best = candidate
        assert best is not None
        return best

    # ------------------------------------------------------------------
    def run(self) -> SearchResult:
        return self.search()

    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        """Evolve to the budget.  ``initial`` is ignored: the GA draws
        its own random population (documented protocol deviation)."""
        config = self.config
        rng = random.Random(config.seed)
        generations = (
            budget.resolve_iterations(config.generations)
            if budget is not None else config.generations
        )
        tele = self.telemetry
        evaluations_before = self.evaluator.evaluations
        # Construct the tracker first: scoring the initial population is
        # paid work and belongs in runtime_s (the clock starts here).
        tracker = SearchTracker(
            self.name, budget=budget, seed=config.seed, on_step=on_step,
            telemetry=tele,
        )

        population = [
            self.random_chromosome(rng) for _ in range(config.population_size)
        ]
        costs: Dict[Chromosome, float] = {}

        def cost_of(ch: Chromosome) -> float:
            if ch not in costs:
                costs[ch] = self.fitness(ch)
            return costs[ch]

        with tele.phase("init"):
            for chromosome in population:
                cost_of(chromosome)
            best = min(population, key=cost_of)
        tracker.begin(cost_of(best))

        for generation in range(1, generations + 1):
            with tele.phase("propose"):
                ranked = sorted(set(population), key=cost_of)
                next_population: List[Chromosome] = list(
                    ranked[: config.elitism]
                )
                while len(next_population) < config.population_size:
                    parent_a = self._tournament(population, costs, rng)
                    if rng.random() < config.crossover_rate:
                        parent_b = self._tournament(population, costs, rng)
                        child = self._crossover(parent_a, parent_b, rng)
                    else:
                        child = parent_a
                    child = self._mutate(child, rng)
                    next_population.append(child)
                population = next_population
            with tele.phase("evaluate"):
                for chromosome in population:
                    cost_of(chromosome)
            with tele.phase("accept"):
                generation_best = min(population, key=cost_of)
                if cost_of(generation_best) < cost_of(best):
                    best = generation_best
            tracker.observe(generation, cost_of(best))
            if tracker.exhausted():
                break

        best_solution = self.decode(best)
        best_evaluation = self.evaluator.evaluate(best_solution)
        tracker.record_engine(self.evaluator)
        return tracker.finish(
            best_solution=best_solution,
            evaluations=self.evaluator.evaluations - evaluations_before,
            best_evaluation=best_evaluation,
        )
