"""Genetic-algorithm HW/SW partitioning (the Ben Chehida & Auguin flow).

The paper's experimental comparator [6]: spatial partitioning is
explored by a genetic algorithm (population 300 in the original); for
each individual, temporal partitioning is performed by a deterministic
clustering and scheduling by a deterministic list scheduler.  The paper
reports 28 ms solution quality in 4 minutes against its own 18.1 ms in
under 10 seconds; our benchmark regenerates that comparison shape
(``benchmarks/bench_comparison.py``).

Chromosome encoding: one gene per hardware-capable task, ``-1`` for
software, otherwise the index of the selected hardware implementation.
Fitness is the library's standard evaluation (longest path of the
realized search graph), so GA and annealer compete on identical ground.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.architecture import Architecture
from repro.baselines.list_scheduler import decode_partition
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluation, Evaluator
from repro.mapping.solution import Solution
from repro.model.application import Application

Chromosome = Tuple[int, ...]


@dataclass
class GeneticConfig:
    """GA hyper-parameters (the tuning burden the paper criticizes)."""

    population_size: int = 300
    generations: int = 40
    crossover_rate: float = 0.9
    mutation_rate: float = 0.03
    tournament_size: int = 3
    elitism: int = 2
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.population_size < 2:
            raise ConfigurationError("population_size must be >= 2")
        if self.generations < 1:
            raise ConfigurationError("generations must be >= 1")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ConfigurationError("crossover_rate must lie in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ConfigurationError("mutation_rate must lie in [0, 1]")
        if self.tournament_size < 1:
            raise ConfigurationError("tournament_size must be >= 1")
        if not 0 <= self.elitism < self.population_size:
            raise ConfigurationError("elitism must lie in [0, population_size)")


@dataclass
class GeneticResult:
    best_solution: Solution
    best_evaluation: Evaluation
    best_cost: float
    generations_run: int
    evaluations: int
    runtime_s: float
    #: Best cost after each generation (convergence curve).
    history: List[float] = field(default_factory=list)


class GeneticPartitioner:
    """GA over spatial partitions with deterministic realization."""

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        config: Optional[GeneticConfig] = None,
        bus_policy: str = "ordered",
        engine: str = "full",
    ) -> None:
        self.application = application
        self.architecture = architecture
        self.config = config if config is not None else GeneticConfig()
        self.config.validate()
        self.evaluator = Evaluator(
            application, architecture, bus_policy, engine=engine
        )
        self._hw_capable = sorted(
            t.index for t in application.tasks() if t.hardware_capable
        )
        self._num_impls = {
            t: application.task(t).num_implementations for t in self._hw_capable
        }

    # ------------------------------------------------------------------
    # chromosome plumbing
    # ------------------------------------------------------------------
    def random_chromosome(self, rng: random.Random) -> Chromosome:
        genes = []
        for t in self._hw_capable:
            if rng.random() < 0.5:
                genes.append(-1)
            else:
                genes.append(rng.randrange(self._num_impls[t]))
        return tuple(genes)

    def decode(self, chromosome: Chromosome) -> Solution:
        hw_tasks = [
            t for t, g in zip(self._hw_capable, chromosome) if g >= 0
        ]
        impl_choice = {
            t: g for t, g in zip(self._hw_capable, chromosome) if g >= 0
        }
        return decode_partition(
            self.application, self.architecture, hw_tasks, impl_choice
        )

    def fitness(self, chromosome: Chromosome) -> float:
        """Cost (lower is better): makespan of the decoded solution."""
        return self.evaluator.makespan_ms(self.decode(chromosome))

    def _crossover(
        self, a: Chromosome, b: Chromosome, rng: random.Random
    ) -> Chromosome:
        if len(a) < 2:
            return a
        point = rng.randrange(1, len(a))
        return a[:point] + b[point:]

    def _mutate(self, chromosome: Chromosome, rng: random.Random) -> Chromosome:
        genes = list(chromosome)
        for i, t in enumerate(self._hw_capable):
            if rng.random() < self.config.mutation_rate:
                if genes[i] >= 0 and rng.random() < 0.5:
                    genes[i] = -1
                else:
                    genes[i] = rng.randrange(self._num_impls[t])
        return tuple(genes)

    def _tournament(
        self,
        population: Sequence[Chromosome],
        costs: Dict[Chromosome, float],
        rng: random.Random,
    ) -> Chromosome:
        best = None
        for _ in range(self.config.tournament_size):
            candidate = population[rng.randrange(len(population))]
            if best is None or costs[candidate] < costs[best]:
                best = candidate
        assert best is not None
        return best

    # ------------------------------------------------------------------
    def run(self) -> GeneticResult:
        config = self.config
        rng = random.Random(config.seed)
        started = time.perf_counter()

        population = [
            self.random_chromosome(rng) for _ in range(config.population_size)
        ]
        costs: Dict[Chromosome, float] = {}

        def cost_of(ch: Chromosome) -> float:
            if ch not in costs:
                costs[ch] = self.fitness(ch)
            return costs[ch]

        history: List[float] = []
        for chromosome in population:
            cost_of(chromosome)
        best = min(population, key=cost_of)
        history.append(cost_of(best))

        generations_run = 0
        for _ in range(config.generations):
            generations_run += 1
            ranked = sorted(set(population), key=cost_of)
            next_population: List[Chromosome] = list(ranked[: config.elitism])
            while len(next_population) < config.population_size:
                parent_a = self._tournament(population, costs, rng)
                if rng.random() < config.crossover_rate:
                    parent_b = self._tournament(population, costs, rng)
                    child = self._crossover(parent_a, parent_b, rng)
                else:
                    child = parent_a
                child = self._mutate(child, rng)
                next_population.append(child)
            population = next_population
            for chromosome in population:
                cost_of(chromosome)
            generation_best = min(population, key=cost_of)
            if cost_of(generation_best) < cost_of(best):
                best = generation_best
            history.append(cost_of(best))

        best_solution = self.decode(best)
        best_evaluation = self.evaluator.evaluate(best_solution)
        return GeneticResult(
            best_solution=best_solution,
            best_evaluation=best_evaluation,
            best_cost=cost_of(best),
            generations_run=generations_run,
            evaluations=len(costs),
            runtime_s=time.perf_counter() - started,
            history=history,
        )
