"""Random restart search: the weakest sensible baseline.

Draws independent random initial solutions and keeps the best — a
useful floor for judging how much structure the annealer's moves and
schedule actually exploit.  Implements the unified
:class:`~repro.search.strategy.SearchStrategy` protocol; ``iterations``
count samples (``result.samples`` is the historical alias).
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.arch.architecture import Architecture
from repro.errors import ConfigurationError
from repro.mapping.engine import EvaluationEngine
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.model.application import Application
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTracker,
    StepCallback,
)

#: Deprecated alias — random search returns the unified
#: :class:`~repro.search.strategy.SearchResult` since the search-layer
#: refactor.
RandomSearchResult = SearchResult


class RandomSearch(SearchStrategy):
    """Best of N independent random solutions.

    ``evaluator`` may be omitted, in which case one is built from
    ``bus_policy`` and ``engine`` (``"full"`` or ``"incremental"``) —
    the same evaluation-engine knob every other searcher exposes.
    """

    name = "random"

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        evaluator: Optional[Evaluator] = None,
        samples: int = 200,
        seed: Optional[int] = None,
        bus_policy: str = "ordered",
        engine: Union[str, EvaluationEngine] = "full",
    ) -> None:
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        self.application = application
        self.architecture = architecture
        if evaluator is None:
            evaluator = Evaluator(
                application, architecture, bus_policy, engine=engine
            )
        self.evaluator = evaluator
        self.samples = samples
        self.seed = seed

    def run(self) -> SearchResult:
        return self.search()

    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        """Sample to the budget.  ``initial``, when given, is scored as
        the first candidate (it costs one sample)."""
        rng = random.Random(self.seed)
        samples = (
            budget.resolve_iterations(self.samples)
            if budget is not None else self.samples
        )
        tele = self.telemetry
        evaluations_before = self.evaluator.evaluations
        tracker = SearchTracker(
            self.name, budget=budget, seed=self.seed, on_step=on_step,
            telemetry=tele,
        )
        tracker.begin()
        for sample in range(1, samples + 1):
            with tele.phase("propose"):
                if sample == 1 and initial is not None:
                    candidate = initial
                else:
                    candidate = random_initial_solution(
                        self.application, self.architecture, rng
                    )
            with tele.phase("evaluate"):
                cost = self.evaluator.makespan_ms(candidate)
            tracker.observe(sample, cost, candidate, copy=False)
            if tracker.exhausted():
                break
        assert tracker.result.best_solution is not None
        tracker.record_engine(self.evaluator)
        return tracker.finish(
            evaluations=self.evaluator.evaluations - evaluations_before,
        )
