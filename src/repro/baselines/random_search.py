"""Random restart search: the weakest sensible baseline.

Draws independent random initial solutions and keeps the best — a
useful floor for judging how much structure the annealer's moves and
schedule actually exploit.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.arch.architecture import Architecture
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.model.application import Application


@dataclass
class RandomSearchResult:
    best_solution: Solution
    best_cost: float
    samples: int
    runtime_s: float
    history: List[float] = field(default_factory=list)


class RandomSearch:
    """Best of N independent random solutions."""

    def __init__(
        self,
        application: Application,
        architecture: Architecture,
        evaluator: Evaluator,
        samples: int = 200,
        seed: Optional[int] = None,
    ) -> None:
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        self.application = application
        self.architecture = architecture
        self.evaluator = evaluator
        self.samples = samples
        self.seed = seed

    def run(self) -> RandomSearchResult:
        rng = random.Random(self.seed)
        best_solution: Optional[Solution] = None
        best_cost = float("inf")
        history: List[float] = []
        started = time.perf_counter()
        for _ in range(self.samples):
            candidate = random_initial_solution(
                self.application, self.architecture, rng
            )
            cost = self.evaluator.makespan_ms(candidate)
            if cost < best_cost:
                best_cost = cost
                best_solution = candidate
            history.append(best_cost)
        assert best_solution is not None
        return RandomSearchResult(
            best_solution=best_solution,
            best_cost=best_cost,
            samples=self.samples,
            runtime_s=time.perf_counter() - started,
            history=history,
        )
