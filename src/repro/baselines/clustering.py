"""Deterministic temporal partitioning by capacity-driven clustering.

Reimplements the second stage of Ben Chehida & Auguin's flow [6]: given
a spatial partition (which tasks go to hardware), pack the hardware
tasks into run-time contexts.  Tasks are visited in a topological order
of the precedence graph (so the context sequence is automatically
consistent with precedence) and appended to the current context until
the device capacity would overflow, at which point a new context opens.

This is exactly the "deterministic ... single temporal partitioning per
spatial partitioning" behaviour the paper contrasts its concurrent
exploration against (section 2).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import CapacityError
from repro.model.application import Application


def cluster_into_contexts(
    application: Application,
    rc: ReconfigurableCircuit,
    hw_tasks: Sequence[int],
    clbs_of: Dict[int, int],
) -> List[List[int]]:
    """Greedy first-fit packing of ``hw_tasks`` into ordered contexts.

    ``clbs_of`` maps each hardware task to the area of its selected
    implementation.  Raises :class:`CapacityError` when a single task
    exceeds the device.
    """
    hw_set = set(hw_tasks)
    contexts: List[List[int]] = []
    used = 0
    for task in _stable_topological_order(application):
        if task not in hw_set:
            continue
        area = clbs_of[task]
        if area > rc.n_clbs:
            raise CapacityError(
                f"task {task} needs {area} CLBs > device capacity {rc.n_clbs}"
            )
        if not contexts or used + area > rc.n_clbs:
            contexts.append([task])
            used = area
        else:
            contexts[-1].append(task)
            used += area
    return contexts


def _stable_topological_order(application: Application) -> List[int]:
    """Topological order with smallest-index-first tie-breaking, so the
    baseline's deterministic flow is reproducible and readable."""
    import heapq

    indeg = {
        t: len(application.predecessors(t))
        for t in application.task_indices()
    }
    heap = [t for t, d in indeg.items() if d == 0]
    heapq.heapify(heap)
    order: List[int] = []
    while heap:
        task = heapq.heappop(heap)
        order.append(task)
        for succ in application.successors(task):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(heap, succ)
    return order
