"""Tabu search over the same move space as the annealer.

The paper's conclusion contrasts its tuning-free adaptive annealing with
tabu search, which "requires tuning ... (tabu list sizes)".  This
implementation makes the comparison concrete: best-of-``k`` candidate
moves per iteration, a recency-based tabu list keyed by the moved task,
and an aspiration criterion (a tabu move is allowed when it improves on
the best cost seen).

Implements the unified :class:`~repro.search.strategy.SearchStrategy`
protocol; ``history`` is the shared best-so-far curve (the raw
current-cost walk, which tabu allows to worsen, is in
``extras["current_costs"]``).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.moves import (
    CreateResourceMove,
    ImplementationMove,
    Move,
    MoveGenerator,
    OffloadMove,
    ReassignMove,
    ReorderMove,
    RemoveResourceMove,
)
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTracker,
    StepCallback,
)

#: Deprecated alias — tabu search returns the unified
#: :class:`~repro.search.strategy.SearchResult` since the search-layer
#: refactor.
TabuResult = SearchResult


@dataclass
class TabuConfig:
    iterations: int = 2000
    candidates_per_iteration: int = 8
    tabu_tenure: int = 25
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.candidates_per_iteration < 1:
            raise ConfigurationError("candidates_per_iteration must be >= 1")
        if self.tabu_tenure < 0:
            raise ConfigurationError("tabu_tenure must be >= 0")


def _moved_task(move: Move) -> Optional[int]:
    """The task whose placement a move changes (tabu attribute)."""
    if isinstance(move, (ReorderMove, ReassignMove, ImplementationMove,
                         OffloadMove, CreateResourceMove)):
        return move.task
    if isinstance(move, RemoveResourceMove):
        return move.dest_task
    return None


class TabuSearch(SearchStrategy):
    """Best-candidate tabu search sharing the annealer's moves.

    ``evaluator`` may be an :class:`Evaluator` facade or any
    :class:`~repro.mapping.engine.EvaluationEngine`; tabu's
    candidate-probing loop (apply, score, undo, best candidate wins) is
    exactly the access pattern the incremental engine's delta-patching
    is built for.
    """

    name = "tabu"

    def __init__(
        self,
        evaluator: Evaluator,
        move_generator: MoveGenerator,
        config: Optional[TabuConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.move_generator = move_generator
        self.config = config if config is not None else TabuConfig()
        self.config.validate()

    def run(self, initial_solution: Solution) -> SearchResult:
        return self.search(initial_solution)

    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        config = self.config
        rng = random.Random(config.seed)
        if initial is None:
            initial = random_initial_solution(
                self.evaluator.application, self.evaluator.architecture, rng
            )
        solution = initial
        iterations = (
            budget.resolve_iterations(config.iterations)
            if budget is not None else config.iterations
        )
        tele = self.telemetry
        evaluations_before = self.evaluator.evaluations
        with tele.phase("init"):
            current_cost = self.evaluator.makespan_ms(solution)
        tracker = SearchTracker(
            self.name, budget=budget, seed=config.seed, on_step=on_step,
            telemetry=tele,
        )
        tracker.begin(current_cost, solution)
        current_costs: List[float] = [current_cost]
        tabu_until: Dict[int, int] = {}

        for iteration in range(1, iterations + 1):
            best_move: Optional[Move] = None
            best_move_cost = math.inf
            best_move_name = ""
            with tele.phase("evaluate"):
                for _ in range(config.candidates_per_iteration):
                    try:
                        move = self.move_generator.propose(solution, rng)
                        move.apply(solution)
                    except InfeasibleMoveError:
                        continue
                    cost = self.evaluator.makespan_ms(solution)
                    move.undo(solution)
                    task = _moved_task(move)
                    is_tabu = (
                        task is not None
                        and tabu_until.get(task, 0) >= iteration
                    )
                    if is_tabu and cost >= tracker.result.best_cost:
                        continue  # aspiration criterion
                    if cost < best_move_cost:
                        best_move, best_move_cost = move, cost
                        best_move_name = move.name
            if best_move is None:
                current_costs.append(current_cost)
                tracker.observe(iteration, current_cost, solution,
                                accepted=False, stall_eligible=False)
                if tracker.exhausted():
                    break
                continue
            with tele.phase("accept"):
                best_move.apply(solution)
                current_cost = best_move_cost
                task = _moved_task(best_move)
                if task is not None:
                    tabu_until[task] = iteration + config.tabu_tenure
            current_costs.append(current_cost)
            tracker.observe(iteration, current_cost, solution,
                            accepted=True, move_name=best_move_name)
            if tracker.exhausted():
                break

        tracker.record_engine(self.evaluator)
        return tracker.finish(
            evaluations=self.evaluator.evaluations - evaluations_before,
            current_costs=current_costs,
        )
