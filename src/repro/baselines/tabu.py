"""Tabu search over the same move space as the annealer.

The paper's conclusion contrasts its tuning-free adaptive annealing with
tabu search, which "requires tuning ... (tabu list sizes)".  This
implementation makes the comparison concrete: best-of-``k`` candidate
moves per iteration, a recency-based tabu list keyed by the moved task,
and an aspiration criterion (a tabu move is allowed when it improves on
the best cost seen).
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution
from repro.sa.moves import (
    CreateResourceMove,
    ImplementationMove,
    Move,
    MoveGenerator,
    OffloadMove,
    ReassignMove,
    ReorderMove,
    RemoveResourceMove,
)


@dataclass
class TabuConfig:
    iterations: int = 2000
    candidates_per_iteration: int = 8
    tabu_tenure: int = 25
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if self.candidates_per_iteration < 1:
            raise ConfigurationError("candidates_per_iteration must be >= 1")
        if self.tabu_tenure < 0:
            raise ConfigurationError("tabu_tenure must be >= 0")


@dataclass
class TabuResult:
    best_solution: Solution
    best_cost: float
    iterations_run: int
    runtime_s: float
    history: List[float] = field(default_factory=list)


def _moved_task(move: Move) -> Optional[int]:
    """The task whose placement a move changes (tabu attribute)."""
    if isinstance(move, (ReorderMove, ReassignMove, ImplementationMove,
                         OffloadMove, CreateResourceMove)):
        return move.task
    if isinstance(move, RemoveResourceMove):
        return move.dest_task
    return None


class TabuSearch:
    """Best-candidate tabu search sharing the annealer's moves.

    ``evaluator`` may be an :class:`Evaluator` facade or any
    :class:`~repro.mapping.engine.EvaluationEngine`; tabu's
    candidate-probing loop (apply, score, undo, best candidate wins) is
    exactly the access pattern the incremental engine's delta-patching
    is built for.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        move_generator: MoveGenerator,
        config: Optional[TabuConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.move_generator = move_generator
        self.config = config if config is not None else TabuConfig()
        self.config.validate()

    def run(self, initial_solution: Solution) -> TabuResult:
        config = self.config
        rng = random.Random(config.seed)
        solution = initial_solution
        current_cost = self.evaluator.makespan_ms(solution)
        best_solution = solution.copy()
        best_cost = current_cost
        tabu_until: Dict[int, int] = {}
        history: List[float] = [current_cost]
        started = time.perf_counter()

        for iteration in range(1, config.iterations + 1):
            best_move: Optional[Move] = None
            best_move_cost = math.inf
            for _ in range(config.candidates_per_iteration):
                try:
                    move = self.move_generator.propose(solution, rng)
                    move.apply(solution)
                except InfeasibleMoveError:
                    continue
                cost = self.evaluator.makespan_ms(solution)
                move.undo(solution)
                task = _moved_task(move)
                is_tabu = (
                    task is not None and tabu_until.get(task, 0) >= iteration
                )
                if is_tabu and cost >= best_cost:  # aspiration criterion
                    continue
                if cost < best_move_cost:
                    best_move, best_move_cost = move, cost
            if best_move is None:
                history.append(current_cost)
                continue
            best_move.apply(solution)
            current_cost = best_move_cost
            task = _moved_task(best_move)
            if task is not None:
                tabu_until[task] = iteration + config.tabu_tenure
            if current_cost < best_cost:
                best_cost = current_cost
                best_solution = solution.copy()
            history.append(current_cost)

        return TabuResult(
            best_solution=best_solution,
            best_cost=best_cost,
            iterations_run=config.iterations,
            runtime_s=time.perf_counter() - started,
            history=history,
        )
