"""The service front door: cache-first submit, status, result, stats, gc.

:class:`ExplorationService` is what clients (and the ``repro serve``
CLI) talk to.  ``submit`` is **cache-first**: the request is content-
addressed (request hash × resolved instance hash), and

* a ``done`` record is a **cache hit** — the persisted envelope is
  served back byte-identical to what the computing worker wrote, no
  CPU spent;
* a ``pending``/``running`` record is an **in-flight dedupe** — the
  submit attaches to the existing computation instead of starting a
  second one (the O_EXCL record creation in the store makes this hold
  even when two submits race);
* a ``failed`` record is **resubmitted** — back to ``pending`` and
  re-ticketed, keeping its attempt history;
* no record means a **cache miss** — row + queue ticket are created
  for the worker pool.

A cache miss additionally probes the warm-start ``near/`` index (see
:meth:`ExplorationService.submit`), and ``submit_anytime`` serves
deadline-capped best-so-far envelopes while the full job stays queued.

Telemetry: the service recorder counts ``cache_hit`` / ``cache_miss``
/ ``dedupe_inflight`` / ``job_resubmitted`` — plus ``warm_start_hit``
/ ``warm_start_repair`` on warm-started submits and
``anytime_partial`` on deadline-capped ones — and times every key
computation + record lookup under the ``store_lookup`` phase; the
queue adds ``job_requeued`` and the ``job_execute`` phase (see
:mod:`repro.service.jobs`).  All of it surfaces through
``repro telemetry summarize`` when the CLI is given ``--telemetry``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.api.facade import ExplorationResponse, environment_stamp
from repro.api.specs import ExplorationRequest
from repro.errors import ConfigurationError, MappingError, ServiceError
from repro.obs.telemetry import NULL
from repro.service.jobs import JobQueue
from repro.service.store import InstanceInfo, JobRecord, ResultStore

__all__ = [
    "STATS_FORMAT",
    "STATS_SCHEMA_VERSION",
    "ExplorationService",
    "SubmitOutcome",
]

STATS_FORMAT = "exploration-service-stats"
STATS_SCHEMA_VERSION = 2

#: ``SubmitOutcome.status`` values.  ``partial`` is the anytime path:
#: a deadline-capped in-process run served a best-so-far envelope while
#: the full job stays queued.
SUBMIT_STATUSES = ("hit", "queued", "inflight", "resubmitted", "partial")

#: Request kinds whose records can donate/receive warm-start seeds (one
#: fixed instance per run, so the best solution maps onto a near
#: instance; sweeps and portfolios vary the platform per job).
_WARM_KINDS = ("single", "batch")

#: Strategies that use an initial solution (population/sampling
#: strategies generate their own starting points and ignore it).
_WARM_STRATEGIES = ("sa", "tempering", "hill_climber", "tabu")


@dataclass
class SubmitOutcome:
    """What one ``submit`` did.

    ``response``/``response_text`` are populated on a cache hit only —
    ``response_text`` is the exact persisted bytes, so hit-served
    envelopes are verifiably identical to the computed ones.
    """

    key: str
    status: str
    record: JobRecord
    response: Optional[ExplorationResponse] = None
    response_text: Optional[str] = None

    @property
    def cached(self) -> bool:
        return self.status == "hit"


class ExplorationService:
    """Cache-first serving layer over the store and the job queue."""

    def __init__(self, root: str, telemetry=NULL, create: bool = True) -> None:
        self.store = ResultStore(root, create=create)
        self.queue = JobQueue(self.store, telemetry=telemetry)
        self.telemetry = telemetry

    # -- submit --------------------------------------------------------
    def submit(self, request: ExplorationRequest) -> SubmitOutcome:
        """Cache-first submit; never computes, only looks up or enqueues
        (workers — or :meth:`run_local` — do the computing).

        A cache miss additionally consults the warm-start ``near/``
        index: when a completed record exists for a structurally
        identical instance (same topology and resource kinds, numeric
        fields free to differ), its persisted best solution is re-mapped
        onto the new instance — repaired deterministically where the
        drift invalidated assignments — and the queued job is rewritten
        to anneal from that seed with warmup skipped.  The cache key is
        always the *original* request's, so warm-started results are
        served back under the identity the client submitted.
        """
        request.validate()
        with self.telemetry.phase("store_lookup"):
            key, request_hash, info = self.store.cache_key_info(request)
            record, created = self.store.create_record(
                key, request_hash, info.instance_hash, request.to_dict()
            )
        if created:
            self._register_instance(record, info)
            self._try_warm_start(record, request, info)
            self.queue.enqueue(key)
            self.telemetry.count("cache_miss")
            if self.telemetry.enabled:
                self.telemetry.event("submit", key=key, status="queued")
            return SubmitOutcome(key=key, status="queued", record=record)
        return self._attach(key, record)

    def _register_instance(
        self, record: JobRecord, info: InstanceInfo
    ) -> None:
        """Persist the instance document and file the record under its
        structure digest (what makes it findable as a future donor)."""
        self.store.put_instance(info.instance_hash, info.document)
        self.store.index_near(info.structure_hash, record.key)
        record.structure_hash = info.structure_hash
        self.store.write_record(record)

    def _try_warm_start(
        self,
        record: JobRecord,
        request: ExplorationRequest,
        info: InstanceInfo,
    ) -> None:
        """Seed the freshly queued job from the best near-instance donor
        (no-op when no donor qualifies; never fails the submit)."""
        if request.kind not in _WARM_KINDS:
            return
        if request.strategy.kind not in _WARM_STRATEGIES:
            return
        if request.strategy.initial_solution is not None:
            return  # the client seeded the run explicitly
        try:
            donor, delta = self._best_donor(record.key, info)
            if donor is None:
                return
            rewritten, repairs = self._warm_rewrite(request, info, donor)
        except (ServiceError, ConfigurationError, MappingError):
            return
        record.request = rewritten
        record.warm_start = {
            "donor": donor.key,
            "delta": delta.to_dict(),
            "repairs": repairs,
        }
        self.store.write_record(record)
        self.telemetry.count("warm_start_hit")
        if repairs:
            self.telemetry.count("warm_start_repair", repairs)
        if self.telemetry.enabled:
            self.telemetry.event(
                "warm_start",
                key=record.key,
                donor=donor.key,
                delta_kind=delta.kind,
                delta_size=delta.size,
                repairs=repairs,
            )

    def _best_donor(
        self, key: str, info: InstanceInfo
    ) -> Tuple[Optional[JobRecord], Any]:
        """The completed near-index record with the smallest instance
        delta (ties broken lexicographically by key)."""
        from repro.io import diff_instances

        best: Optional[JobRecord] = None
        best_delta = None
        for candidate_key in self.store.near_keys(info.structure_hash):
            if candidate_key == key:
                continue
            try:
                candidate = self.store.load_record(candidate_key)
            except ServiceError:
                continue
            if candidate.status != "done":
                continue
            if candidate.request.get("kind") not in _WARM_KINDS:
                continue
            donor_doc = self.store.instance_document(candidate.instance_hash)
            if donor_doc is None:
                continue
            delta = diff_instances(donor_doc, info.document)
            if delta.kind == "structural":
                continue  # same digest yet structural drift: stale index
            if best_delta is None or (
                (delta.size, candidate.key) < (best_delta.size, best.key)
            ):
                best, best_delta = candidate, delta
        return best, best_delta

    def _warm_rewrite(
        self,
        request: ExplorationRequest,
        info: InstanceInfo,
        donor: JobRecord,
    ) -> Tuple[Dict[str, Any], int]:
        """The queued job's rewritten request document: donor's best
        solution re-mapped onto the new instance as ``initial_solution``
        plus ``warmup_iterations=0`` (the annealer's infinite-temperature
        warmup would randomize the seed away).

        Repair happens here, at submit time, against the new resolved
        instance — so the embedded document always decodes strictly at
        execution time and the repair count is observable in the
        record's ``warm_start`` block.
        """
        from repro.io import instance_from_dict, solution_to_dict
        from repro.mapping.seed import seed_solution

        envelope = self.store.get_response(donor.key)
        if envelope.best is None or "solution" not in envelope.best:
            raise ServiceError(f"donor {donor.key!r} has no best solution")
        instance = instance_from_dict(info.document)
        seed, repairs = seed_solution(
            envelope.best["solution"],
            instance.application,
            instance.architecture,
        )
        rewritten = request.to_dict()
        rewritten["strategy"]["initial_solution"] = solution_to_dict(seed)
        if request.strategy.kind in ("sa", "tempering"):
            rewritten["budget"]["warmup_iterations"] = 0
        # The rewrite must execute: validate it the way the worker will.
        ExplorationRequest.from_dict(rewritten).validate()
        return rewritten, repairs

    def _attach(self, key: str, record: JobRecord) -> SubmitOutcome:
        """Submit outcome for a key whose record already existed."""
        if record.status == "done":
            with self.telemetry.phase("store_lookup"):
                text = self.store.response_text(key)
            record.hits += 1
            self.store.write_record(record)  # best-effort hit counter
            self.telemetry.count("cache_hit")
            if self.telemetry.enabled:
                self.telemetry.event("submit", key=key, status="hit")
            return SubmitOutcome(
                key=key,
                status="hit",
                record=record,
                response=ExplorationResponse.from_json(text),
                response_text=text,
            )
        if record.status == "failed":
            record.transition("pending")
            self.store.write_record(record)
            self.queue.enqueue(key)
            self.telemetry.count("job_resubmitted")
            if self.telemetry.enabled:
                self.telemetry.event("submit", key=key, status="resubmitted")
            return SubmitOutcome(key=key, status="resubmitted", record=record)
        # pending or running: one computation is already on its way
        self.telemetry.count("dedupe_inflight")
        if self.telemetry.enabled:
            self.telemetry.event("submit", key=key, status="inflight")
        return SubmitOutcome(key=key, status="inflight", record=record)

    def submit_anytime(
        self, request: ExplorationRequest, deadline_s: float
    ) -> SubmitOutcome:
        """Deadline-aware submit: a cache hit is served instantly; any
        other outcome additionally runs the (possibly warm-started) job
        in-process with its wall-clock budget capped at ``deadline_s``
        and returns the best-so-far envelope as a ``partial`` outcome.

        The partial envelope is marked ``summary["partial"] = True`` and
        is **not** cached — the record stays queued, so a later worker
        (or :meth:`run_local`) still computes and persists the full
        result under the same key.
        """
        if deadline_s <= 0:
            raise ServiceError("deadline_s must be > 0")
        outcome = self.submit(request)
        if outcome.status == "hit":
            return outcome
        record = self.store.load_record(outcome.key)
        executed = ExplorationRequest.from_dict(record.request)
        capped = executed.to_dict()
        capped["budget"]["time_limit_s"] = deadline_s
        partial_request = ExplorationRequest.from_dict(capped)
        from repro.api.facade import explore

        with self.telemetry.phase("anytime_partial"):
            response = explore(partial_request)
        response.summary = dict(response.summary, partial=True)
        self.telemetry.count("anytime_partial")
        if self.telemetry.enabled:
            self.telemetry.event(
                "submit_anytime",
                key=outcome.key,
                status="partial",
                deadline_s=deadline_s,
            )
        return SubmitOutcome(
            key=outcome.key,
            status="partial",
            record=record,
            response=response,
        )

    def run_local(self, jobs: int = 1, max_jobs: Optional[int] = None) -> int:
        """Drain the queue in-process (no pool); jobs executed.  The
        single-machine convenience the bench case and tests use."""
        return self.queue.drain(worker="local", jobs=jobs, max_jobs=max_jobs)

    # -- lookups -------------------------------------------------------
    def key_of(self, request: ExplorationRequest) -> str:
        return self.store.cache_key(request)[0]

    def status(self, key: str) -> JobRecord:
        return self.store.load_record(key)

    def result(self, key: str) -> ExplorationResponse:
        """The persisted envelope; raises while the job is unfinished."""
        record = self.store.load_record(key)
        if record.status != "done":
            raise ServiceError(
                f"no result for {key!r} yet: record is {record.status!r}"
                + (f" ({record.error})" if record.error else "")
            )
        return self.store.get_response(key)

    def wait(
        self, key: str, timeout_s: float = 60.0, poll_s: float = 0.05
    ) -> JobRecord:
        """Poll until the record settles (done/failed) or timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.store.load_record(key)
            if record.status in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for {key!r} "
                    f"(still {record.status!r})"
                )
            time.sleep(poll_s)

    # -- bookkeeping ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One JSON document summarizing the store (the ``repro serve
        stats --json`` schema; pinned by the service tests)."""
        by_status = {status: 0 for status in
                     ("pending", "running", "done", "failed")}
        executions = 0
        hits = 0
        failed_attempts = 0
        warm_start_hits = 0
        warm_start_repairs = 0
        for record in self.store.iter_records():
            by_status[record.status] += 1
            executions += record.attempts
            hits += record.hits
            if record.status == "failed":
                failed_attempts += record.attempts
            if record.warm_start is not None:
                warm_start_hits += 1
                warm_start_repairs += record.warm_start.get("repairs", 0)
        results_dir = os.path.join(self.store.root, self.store.RESULTS_DIR)
        return {
            "format": STATS_FORMAT,
            "schema_version": STATS_SCHEMA_VERSION,
            "root": self.store.root,
            "records": dict(
                by_status, total=sum(by_status.values())
            ),
            "queue": {
                "queued": len(self.queue.pending_keys()),
                "claimed": len(self.queue.claimed_keys()),
            },
            "executions": executions,
            "hits": hits,
            "failed_attempts": failed_attempts,
            "warm_start_hits": warm_start_hits,
            "warm_start_repairs": warm_start_repairs,
            "results": sum(
                1 for name in os.listdir(results_dir)
                if name.endswith(".json")
            ),
            "environment": environment_stamp(),
        }

    def gc(
        self,
        failed: bool = True,
        orphans: bool = True,
        done_older_than_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Prune the store; returns removal counts per category.

        * ``failed`` — drop failed records (their error is in the
          history; resubmitting later simply recreates the row);
        * ``orphans`` — tickets/envelopes whose record row is gone
          (half-states from crashes or manual deletion);
        * ``done_older_than_s`` — age out completed records + their
          envelopes (the cache eviction knob).
        """
        now = time.time() if now is None else now
        removed = {"failed": 0, "done": 0, "orphan_tickets": 0,
                   "orphan_results": 0}
        for record in self.store.iter_records():
            if failed and record.status == "failed":
                self.store.delete_record(record.key)
                removed["failed"] += 1
            elif (
                done_older_than_s is not None
                and record.status == "done"
                and record.completed_ts is not None
                and now - record.completed_ts > done_older_than_s
            ):
                self.store.delete_record(record.key)
                removed["done"] += 1
        if orphans:
            keys = set(self.store.list_keys())
            for subdir, suffix, bucket in (
                (self.store.QUEUE_DIR, ".ticket", "orphan_tickets"),
                (self.store.CLAIMS_DIR, ".ticket", "orphan_tickets"),
                (self.store.RESULTS_DIR, ".json", "orphan_results"),
            ):
                directory = os.path.join(self.store.root, subdir)
                for name in os.listdir(directory):
                    if not name.endswith(suffix):
                        continue
                    if name[: -len(suffix)] in keys:
                        continue
                    try:
                        os.unlink(os.path.join(directory, name))
                    except FileNotFoundError:
                        continue
                    removed[bucket] += 1
            # Near-index markers whose record row is gone (nested one
            # level: near/<structure_hash>/<key>).
            near_root = os.path.join(self.store.root, self.store.NEAR_DIR)
            if os.path.isdir(near_root):
                for structure_hash in os.listdir(near_root):
                    bucket_dir = os.path.join(near_root, structure_hash)
                    if not os.path.isdir(bucket_dir):
                        continue
                    for name in os.listdir(bucket_dir):
                        if name in keys:
                            continue
                        try:
                            os.unlink(os.path.join(bucket_dir, name))
                        except FileNotFoundError:
                            continue
                        removed["orphan_tickets"] += 1
        return removed
