"""The service front door: cache-first submit, status, result, stats, gc.

:class:`ExplorationService` is what clients (and the ``repro serve``
CLI) talk to.  ``submit`` is **cache-first**: the request is content-
addressed (request hash × resolved instance hash), and

* a ``done`` record is a **cache hit** — the persisted envelope is
  served back byte-identical to what the computing worker wrote, no
  CPU spent;
* a ``pending``/``running`` record is an **in-flight dedupe** — the
  submit attaches to the existing computation instead of starting a
  second one (the O_EXCL record creation in the store makes this hold
  even when two submits race);
* a ``failed`` record is **resubmitted** — back to ``pending`` and
  re-ticketed, keeping its attempt history;
* no record means a **cache miss** — row + queue ticket are created
  for the worker pool.

Telemetry: the service recorder counts ``cache_hit`` / ``cache_miss``
/ ``dedupe_inflight`` / ``job_resubmitted`` and times every key
computation + record lookup under the ``store_lookup`` phase; the
queue adds ``job_requeued`` and the ``job_execute`` phase (see
:mod:`repro.service.jobs`).  All of it surfaces through
``repro telemetry summarize`` when the CLI is given ``--telemetry``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.api.facade import ExplorationResponse, environment_stamp
from repro.api.specs import ExplorationRequest
from repro.errors import ServiceError
from repro.obs.telemetry import NULL
from repro.service.jobs import JobQueue
from repro.service.store import JobRecord, ResultStore

__all__ = [
    "STATS_FORMAT",
    "STATS_SCHEMA_VERSION",
    "ExplorationService",
    "SubmitOutcome",
]

STATS_FORMAT = "exploration-service-stats"
STATS_SCHEMA_VERSION = 1

#: ``SubmitOutcome.status`` values.
SUBMIT_STATUSES = ("hit", "queued", "inflight", "resubmitted")


@dataclass
class SubmitOutcome:
    """What one ``submit`` did.

    ``response``/``response_text`` are populated on a cache hit only —
    ``response_text`` is the exact persisted bytes, so hit-served
    envelopes are verifiably identical to the computed ones.
    """

    key: str
    status: str
    record: JobRecord
    response: Optional[ExplorationResponse] = None
    response_text: Optional[str] = None

    @property
    def cached(self) -> bool:
        return self.status == "hit"


class ExplorationService:
    """Cache-first serving layer over the store and the job queue."""

    def __init__(self, root: str, telemetry=NULL, create: bool = True) -> None:
        self.store = ResultStore(root, create=create)
        self.queue = JobQueue(self.store, telemetry=telemetry)
        self.telemetry = telemetry

    # -- submit --------------------------------------------------------
    def submit(self, request: ExplorationRequest) -> SubmitOutcome:
        """Cache-first submit; never computes, only looks up or enqueues
        (workers — or :meth:`run_local` — do the computing)."""
        request.validate()
        with self.telemetry.phase("store_lookup"):
            key, request_hash, instance_hash = self.store.cache_key(request)
            record, created = self.store.create_record(
                key, request_hash, instance_hash, request.to_dict()
            )
        if created:
            self.queue.enqueue(key)
            self.telemetry.count("cache_miss")
            if self.telemetry.enabled:
                self.telemetry.event("submit", key=key, status="queued")
            return SubmitOutcome(key=key, status="queued", record=record)
        return self._attach(key, record)

    def _attach(self, key: str, record: JobRecord) -> SubmitOutcome:
        """Submit outcome for a key whose record already existed."""
        if record.status == "done":
            with self.telemetry.phase("store_lookup"):
                text = self.store.response_text(key)
            record.hits += 1
            self.store.write_record(record)  # best-effort hit counter
            self.telemetry.count("cache_hit")
            if self.telemetry.enabled:
                self.telemetry.event("submit", key=key, status="hit")
            return SubmitOutcome(
                key=key,
                status="hit",
                record=record,
                response=ExplorationResponse.from_json(text),
                response_text=text,
            )
        if record.status == "failed":
            record.transition("pending")
            self.store.write_record(record)
            self.queue.enqueue(key)
            self.telemetry.count("job_resubmitted")
            if self.telemetry.enabled:
                self.telemetry.event("submit", key=key, status="resubmitted")
            return SubmitOutcome(key=key, status="resubmitted", record=record)
        # pending or running: one computation is already on its way
        self.telemetry.count("dedupe_inflight")
        if self.telemetry.enabled:
            self.telemetry.event("submit", key=key, status="inflight")
        return SubmitOutcome(key=key, status="inflight", record=record)

    def run_local(self, jobs: int = 1, max_jobs: Optional[int] = None) -> int:
        """Drain the queue in-process (no pool); jobs executed.  The
        single-machine convenience the bench case and tests use."""
        return self.queue.drain(worker="local", jobs=jobs, max_jobs=max_jobs)

    # -- lookups -------------------------------------------------------
    def key_of(self, request: ExplorationRequest) -> str:
        return self.store.cache_key(request)[0]

    def status(self, key: str) -> JobRecord:
        return self.store.load_record(key)

    def result(self, key: str) -> ExplorationResponse:
        """The persisted envelope; raises while the job is unfinished."""
        record = self.store.load_record(key)
        if record.status != "done":
            raise ServiceError(
                f"no result for {key!r} yet: record is {record.status!r}"
                + (f" ({record.error})" if record.error else "")
            )
        return self.store.get_response(key)

    def wait(
        self, key: str, timeout_s: float = 60.0, poll_s: float = 0.05
    ) -> JobRecord:
        """Poll until the record settles (done/failed) or timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.store.load_record(key)
            if record.status in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout_s:g}s waiting for {key!r} "
                    f"(still {record.status!r})"
                )
            time.sleep(poll_s)

    # -- bookkeeping ---------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """One JSON document summarizing the store (the ``repro serve
        stats --json`` schema; pinned by the service tests)."""
        by_status = {status: 0 for status in
                     ("pending", "running", "done", "failed")}
        executions = 0
        hits = 0
        failed_attempts = 0
        for record in self.store.iter_records():
            by_status[record.status] += 1
            executions += record.attempts
            hits += record.hits
            if record.status == "failed":
                failed_attempts += record.attempts
        results_dir = os.path.join(self.store.root, self.store.RESULTS_DIR)
        return {
            "format": STATS_FORMAT,
            "schema_version": STATS_SCHEMA_VERSION,
            "root": self.store.root,
            "records": dict(
                by_status, total=sum(by_status.values())
            ),
            "queue": {
                "queued": len(self.queue.pending_keys()),
                "claimed": len(self.queue.claimed_keys()),
            },
            "executions": executions,
            "hits": hits,
            "failed_attempts": failed_attempts,
            "results": sum(
                1 for name in os.listdir(results_dir)
                if name.endswith(".json")
            ),
            "environment": environment_stamp(),
        }

    def gc(
        self,
        failed: bool = True,
        orphans: bool = True,
        done_older_than_s: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Prune the store; returns removal counts per category.

        * ``failed`` — drop failed records (their error is in the
          history; resubmitting later simply recreates the row);
        * ``orphans`` — tickets/envelopes whose record row is gone
          (half-states from crashes or manual deletion);
        * ``done_older_than_s`` — age out completed records + their
          envelopes (the cache eviction knob).
        """
        now = time.time() if now is None else now
        removed = {"failed": 0, "done": 0, "orphan_tickets": 0,
                   "orphan_results": 0}
        for record in self.store.iter_records():
            if failed and record.status == "failed":
                self.store.delete_record(record.key)
                removed["failed"] += 1
            elif (
                done_older_than_s is not None
                and record.status == "done"
                and record.completed_ts is not None
                and now - record.completed_ts > done_older_than_s
            ):
                self.store.delete_record(record.key)
                removed["done"] += 1
        if orphans:
            keys = set(self.store.list_keys())
            for subdir, suffix, bucket in (
                (self.store.QUEUE_DIR, ".ticket", "orphan_tickets"),
                (self.store.CLAIMS_DIR, ".ticket", "orphan_tickets"),
                (self.store.RESULTS_DIR, ".json", "orphan_results"),
            ):
                directory = os.path.join(self.store.root, subdir)
                for name in os.listdir(directory):
                    if not name.endswith(suffix):
                        continue
                    if name[: -len(suffix)] in keys:
                        continue
                    try:
                        os.unlink(os.path.join(directory, name))
                    except FileNotFoundError:
                        continue
                    removed[bucket] += 1
        return removed
