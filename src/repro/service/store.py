"""Content-addressed result store: persisted envelopes + record rows.

The store is the persistence layer of the exploration service.  Its
unit of identity is the **cache key**

    sha256(request.content_hash() + ":" + instance_hash)

where :meth:`~repro.api.specs.ExplorationRequest.content_hash` is the
SHA-256 of the canonical request JSON and ``instance_hash`` is the
SHA-256 of the *resolved* problem instance's canonical bundled document
(the same digest :func:`repro.bench.corpus.scenario_hash` assigns to
corpus scenarios).  The request hash alone would miss path-referencing
specs whose file content changed underneath the path; composing it with
the materialized instance binds the key to what would actually run.

On-disk layout (JSON files + atomic rename, no external database)::

    <root>/
      records/<key>.json    one JobRecord row per key (status, probe
                            history, timestamps, attempts, environment)
      results/<key>.json    the ExplorationResponse envelope, written
                            once when a job completes
      queue/<key>.ticket    pending work (claiming renames it away)
      claims/<key>.ticket   work owned by a worker (crash-safe: a stale
                            claim is renamed back into queue/)

Every write is append-safe: new content goes to a temp file in the same
directory and is atomically renamed over the target, so readers never
observe a torn record and two racing writers resolve to one winner.
Record *creation* uses ``O_CREAT | O_EXCL``, which is the store's one
point of mutual exclusion — exactly one of N racing submitters creates
the row, everyone else observes it (the dedupe guarantee of the
service).  The record/probe-history idiom follows the persistent mirror
records of Launchpad's ``distributionmirror.py`` (see SNIPPETS.md #3):
each row keeps its full state-transition history next to the current
freshness state.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api.facade import ExplorationResponse, environment_stamp
from repro.api.specs import ExplorationRequest
from repro.errors import ConfigurationError, ServiceError

__all__ = [
    "RECORD_FORMAT",
    "RECORD_SCHEMA_VERSION",
    "RECORD_STATES",
    "InstanceInfo",
    "JobRecord",
    "ResultStore",
    "compose_cache_key",
    "instance_hash_for",
    "instance_info_for",
]

RECORD_FORMAT = "exploration-record"
RECORD_SCHEMA_VERSION = 1

#: Record lifecycle: ``pending`` (queued, unclaimed) → ``running``
#: (claimed by a worker) → ``done`` (envelope persisted) or ``failed``
#: (error captured).  A stale ``running`` record is requeued back to
#: ``pending`` by :meth:`repro.service.jobs.JobQueue.requeue_stale`.
RECORD_STATES = ("pending", "running", "done", "failed")


@dataclass(frozen=True)
class InstanceInfo:
    """Everything one resolution of a request's problem instance yields:
    the content digest (cache-key component), the structure-only digest
    (warm-start near-index key) and the canonical bundled document."""

    instance_hash: str
    structure_hash: str
    document: Dict[str, Any]


def instance_info_for(request: ExplorationRequest) -> InstanceInfo:
    """Resolve the request's problem instance once and digest it twice.

    ``instance_hash`` is the canonical-document SHA-256 of
    :func:`repro.bench.corpus.scenario_hash` (service cache keys and
    bench corpus identities share one digest vocabulary);
    ``structure_hash`` is :func:`repro.io.structure_digest` — topology
    plus resource kinds only, ignoring every numeric field — the key of
    the warm-start ``near/`` secondary index.  For sweep requests (whose
    per-cell platforms are derived from ``sizes``) both bind the base
    problem; the grid itself is covered by the request hash.
    """
    from repro.api.resolve import resolve_application, resolve_architecture
    from repro.bench.corpus import scenario_hash
    from repro.io import ProblemInstance, instance_to_dict, structure_digest

    problem = resolve_application(request.application)
    architecture = resolve_architecture(
        request.architecture, bundled=problem.architecture
    )
    deadline = request.deadline_ms
    if deadline is None:
        deadline = problem.deadline_ms
    instance = ProblemInstance(
        application=problem.application,
        architecture=architecture,
        deadline_ms=deadline,
    )
    document = instance_to_dict(instance)
    return InstanceInfo(
        instance_hash=scenario_hash(instance),
        structure_hash=structure_digest(document),
        document=document,
    )


def instance_hash_for(request: ExplorationRequest) -> str:
    """SHA-256 of the request's *resolved* problem instance (the
    cache-key component; see :func:`instance_info_for`)."""
    return instance_info_for(request).instance_hash


def compose_cache_key(request_hash: str, instance_hash: str) -> str:
    """The store key: SHA-256 over both component digests."""
    return hashlib.sha256(
        f"{request_hash}:{instance_hash}".encode("ascii")
    ).hexdigest()


# ----------------------------------------------------------------------
# the record row
# ----------------------------------------------------------------------
@dataclass
class JobRecord:
    """One persisted row per cache key: state, provenance, history.

    ``history`` is the append-only probe log — every transition appends
    ``{"ts", "status", "worker"?, "error"?}``, so a record tells the
    whole story of its job (submitted, claimed, requeued after a crash,
    completed) without consulting any other file.
    """

    key: str
    request_hash: str
    instance_hash: str
    request: Dict[str, Any]
    status: str = "pending"
    created_ts: float = 0.0
    claimed_ts: Optional[float] = None
    completed_ts: Optional[float] = None
    attempts: int = 0
    hits: int = 0
    worker: Optional[str] = None
    error: Optional[str] = None
    environment: Dict[str, Any] = field(default_factory=environment_stamp)
    #: Counters/timers snapshot of the job's own telemetry recorder,
    #: absorbed at completion (``None`` until then).
    telemetry: Optional[Dict[str, Any]] = None
    #: Structure-only digest of the resolved instance (the ``near/``
    #: secondary-index key this record is filed under).
    structure_hash: Optional[str] = None
    #: Warm-start provenance, set when submit seeded this job from a
    #: donor record: ``{"donor", "delta", "repairs"}``.
    warm_start: Optional[Dict[str, Any]] = None
    history: List[Dict[str, Any]] = field(default_factory=list)

    def transition(
        self,
        status: str,
        worker: Optional[str] = None,
        error: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        """Move to ``status`` and append the probe-history entry."""
        if status not in RECORD_STATES:
            raise ConfigurationError(
                f"unknown record status {status!r}; "
                f"known: {list(RECORD_STATES)}"
            )
        now = time.time() if now is None else now
        self.status = status
        if status == "running":
            self.claimed_ts = now
            self.attempts += 1
            self.worker = worker
            self.error = None
        elif status in ("done", "failed"):
            self.completed_ts = now
            self.error = error
        else:  # pending (initial creation or requeue)
            self.worker = None
            self.error = error
        entry: Dict[str, Any] = {"ts": now, "status": status}
        if worker is not None:
            entry["worker"] = worker
        if error is not None:
            entry["error"] = error
        self.history.append(entry)

    # -- (de)serialization ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": RECORD_FORMAT,
            "schema_version": RECORD_SCHEMA_VERSION,
            "key": self.key,
            "request_hash": self.request_hash,
            "instance_hash": self.instance_hash,
            "status": self.status,
            "created_ts": self.created_ts,
            "claimed_ts": self.claimed_ts,
            "completed_ts": self.completed_ts,
            "attempts": self.attempts,
            "hits": self.hits,
            "worker": self.worker,
            "error": self.error,
            "environment": dict(self.environment),
            "telemetry": self.telemetry,
            "structure_hash": self.structure_hash,
            "warm_start": self.warm_start,
            "history": list(self.history),
            "request": self.request,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobRecord":
        if data.get("format") != RECORD_FORMAT:
            raise ServiceError(
                f"expected a {RECORD_FORMAT!r} document, "
                f"got {data.get('format')!r}"
            )
        version = data.get("schema_version")
        if not isinstance(version, int) or version > RECORD_SCHEMA_VERSION:
            raise ServiceError(
                f"unsupported record schema_version {version!r} "
                f"(this library understands <= {RECORD_SCHEMA_VERSION})"
            )
        status = data.get("status")
        if status not in RECORD_STATES:
            raise ServiceError(
                f"record {data.get('key')!r} has unknown status {status!r}"
            )
        return cls(
            key=data["key"],
            request_hash=data["request_hash"],
            instance_hash=data["instance_hash"],
            request=dict(data["request"]),
            status=status,
            created_ts=data.get("created_ts", 0.0),
            claimed_ts=data.get("claimed_ts"),
            completed_ts=data.get("completed_ts"),
            attempts=data.get("attempts", 0),
            hits=data.get("hits", 0),
            worker=data.get("worker"),
            error=data.get("error"),
            environment=dict(data.get("environment", {})),
            telemetry=data.get("telemetry"),
            structure_hash=data.get("structure_hash"),
            warm_start=data.get("warm_start"),
            history=list(data.get("history", [])),
        )


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ResultStore:
    """Filesystem-backed content-addressed store (records + envelopes).

    All methods are safe to call from any number of processes sharing
    ``root``: reads parse whole files (atomic-rename writes mean no torn
    state), record creation is ``O_EXCL``-exclusive, and queue/claim
    ticket moves are single ``rename`` calls with exactly one winner.
    """

    RECORDS_DIR = "records"
    RESULTS_DIR = "results"
    QUEUE_DIR = "queue"
    CLAIMS_DIR = "claims"
    #: Warm-start support: ``instances/<instance_hash>.json`` holds the
    #: resolved instance document; ``near/<structure_hash>/<key>``
    #: marker files index records by structure-only digest, so a submit
    #: can find completed runs on structurally-identical instances
    #: without scanning every record.
    INSTANCES_DIR = "instances"
    NEAR_DIR = "near"

    def __init__(self, root: str, create: bool = True) -> None:
        self.root = os.path.abspath(root)
        if create:
            for name in (
                self.RECORDS_DIR, self.RESULTS_DIR,
                self.QUEUE_DIR, self.CLAIMS_DIR,
                self.INSTANCES_DIR, self.NEAR_DIR,
            ):
                os.makedirs(os.path.join(self.root, name), exist_ok=True)
        elif not os.path.isdir(os.path.join(self.root, self.RECORDS_DIR)):
            raise ServiceError(
                f"no exploration store at {self.root!r} "
                f"(missing {self.RECORDS_DIR}/)"
            )

    # -- paths ---------------------------------------------------------
    def record_path(self, key: str) -> str:
        return os.path.join(self.root, self.RECORDS_DIR, f"{key}.json")

    def result_path(self, key: str) -> str:
        return os.path.join(self.root, self.RESULTS_DIR, f"{key}.json")

    def queue_ticket(self, key: str) -> str:
        return os.path.join(self.root, self.QUEUE_DIR, f"{key}.ticket")

    def claim_ticket(self, key: str) -> str:
        return os.path.join(self.root, self.CLAIMS_DIR, f"{key}.ticket")

    def instance_path(self, instance_hash: str) -> str:
        return os.path.join(
            self.root, self.INSTANCES_DIR, f"{instance_hash}.json"
        )

    def near_marker(self, structure_hash: str, key: str) -> str:
        return os.path.join(self.root, self.NEAR_DIR, structure_hash, key)

    # -- keys ----------------------------------------------------------
    def cache_key_info(
        self, request: ExplorationRequest
    ) -> Tuple[str, str, InstanceInfo]:
        """``(key, request_hash, instance info)`` — one resolution pass
        yields the cache key *and* the warm-start index inputs."""
        request_hash = request.content_hash()
        info = instance_info_for(request)
        return (
            compose_cache_key(request_hash, info.instance_hash),
            request_hash,
            info,
        )

    def cache_key(self, request: ExplorationRequest) -> Tuple[str, str, str]:
        """``(key, request_hash, instance_hash)`` for a request."""
        key, request_hash, info = self.cache_key_info(request)
        return key, request_hash, info.instance_hash

    # -- atomic write --------------------------------------------------
    def _atomic_write(self, path: str, text: str) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- records -------------------------------------------------------
    def create_record(
        self, key: str, request_hash: str, instance_hash: str,
        request_document: Dict[str, Any],
    ) -> Tuple[JobRecord, bool]:
        """Create the row for ``key`` if absent; ``(record, created)``.

        ``O_CREAT | O_EXCL`` on the record file makes exactly one of N
        racing creators win; losers re-read the winner's row.  The row
        is born ``pending`` with its first probe-history entry.
        """
        record = JobRecord(
            key=key,
            request_hash=request_hash,
            instance_hash=instance_hash,
            request=request_document,
            created_ts=time.time(),
        )
        record.transition("pending", now=record.created_ts)
        path = self.record_path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return self.load_record(key), False
        try:
            text = json.dumps(record.to_dict(), indent=2)
            os.write(fd, text.encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        return record, True

    def load_record(self, key: str) -> JobRecord:
        path = self.record_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            raise ServiceError(f"no record for key {key!r}") from None
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"record {path!r} is not valid JSON: {exc}"
            ) from None
        return JobRecord.from_dict(data)

    def has_record(self, key: str) -> bool:
        return os.path.exists(self.record_path(key))

    def write_record(self, record: JobRecord) -> None:
        self._atomic_write(
            self.record_path(record.key),
            json.dumps(record.to_dict(), indent=2),
        )

    def list_keys(self) -> List[str]:
        directory = os.path.join(self.root, self.RECORDS_DIR)
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(directory)
            if name.endswith(".json")
        )

    def iter_records(self) -> Iterator[JobRecord]:
        for key in self.list_keys():
            yield self.load_record(key)

    def delete_record(self, key: str) -> None:
        structure_hash = None
        try:
            structure_hash = self.load_record(key).structure_hash
        except ServiceError:
            pass
        paths = [
            self.record_path(key), self.result_path(key),
            self.queue_ticket(key), self.claim_ticket(key),
        ]
        if structure_hash is not None:
            paths.append(self.near_marker(structure_hash, key))
        for path in paths:
            try:
                os.unlink(path)
            except FileNotFoundError:
                pass

    # -- warm-start index ----------------------------------------------
    def put_instance(
        self, instance_hash: str, document: Dict[str, Any]
    ) -> None:
        """Persist the resolved instance document (content-addressed:
        an existing file is already byte-equivalent, skip the write)."""
        path = self.instance_path(instance_hash)
        if os.path.exists(path):
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._atomic_write(
            path, json.dumps(document, sort_keys=True, indent=2)
        )

    def instance_document(self, instance_hash: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self.instance_path(instance_hash), encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    def index_near(self, structure_hash: str, key: str) -> None:
        """File ``key`` under the structure-only digest (idempotent)."""
        marker = self.near_marker(structure_hash, key)
        os.makedirs(os.path.dirname(marker), exist_ok=True)
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)

    def near_keys(self, structure_hash: str) -> List[str]:
        """Record keys filed under ``structure_hash``, sorted."""
        directory = os.path.join(self.root, self.NEAR_DIR, structure_hash)
        try:
            return sorted(os.listdir(directory))
        except FileNotFoundError:
            return []

    # -- envelopes -----------------------------------------------------
    def put_response(self, key: str, response: ExplorationResponse) -> str:
        """Persist the envelope; returns the exact text written (the
        bytes a later cache hit serves back)."""
        text = response.to_json()
        self._atomic_write(self.result_path(key), text)
        return text

    def response_text(self, key: str) -> str:
        try:
            with open(self.result_path(key), encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError:
            raise ServiceError(f"no result envelope for key {key!r}") from None

    def get_response(self, key: str) -> ExplorationResponse:
        return ExplorationResponse.from_json(self.response_text(key))

    def has_response(self, key: str) -> bool:
        return os.path.exists(self.result_path(key))
