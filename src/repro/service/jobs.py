"""Job queue and worker pool over the result store.

Lifecycle (all state lives in :class:`~repro.service.store.ResultStore`
files; no broker, no database):

* **submit** (done by the service front door) creates the ``pending``
  record row and drops ``queue/<key>.ticket``;
* **claim** renames the ticket into ``claims/`` — a single ``rename``
  with exactly one winner among racing workers — then stamps the record
  ``running`` (attempt count + worker + claimed timestamp);
* **complete** persists the envelope, stamps the record ``done`` with
  the job's telemetry snapshot absorbed, and removes the claim ticket;
  **fail** stamps ``failed`` with the error message;
* **requeue_stale** is the crash-safety pass: a worker that died
  mid-job leaves a ``running`` record and a stranded claim ticket;
  once ``stale_after_s`` has elapsed the ticket is renamed back into
  the queue and the record returns to ``pending`` for the next worker.
  It also heals the two half-states a crash between renames can leave
  (a pending record with no ticket at all, or with only a claim
  ticket).

Workers execute claimed requests through the one public façade
(:func:`repro.api.facade.explore`), which runs them on the PR 2 search
runner — the service adds persistence and record-keeping, never a
second execution path.  :func:`run_workers` fans N drain-loop workers
across spawn-safe processes, mirroring the runner's pool idiom, and
absorbs each worker's telemetry into the caller's recorder in worker
order.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api.facade import ExplorationResponse, explore
from repro.api.specs import ExplorationRequest
from repro.errors import ConfigurationError, ReproError, ServiceError
from repro.obs.telemetry import NULL, Telemetry
from repro.service.store import ResultStore

__all__ = [
    "DEFAULT_STALE_AFTER_S",
    "JobQueue",
    "run_workers",
]

#: Default age after which a ``running`` record counts as abandoned.
#: Wide enough that live siblings in a worker pool are never robbed of
#: jobs they are still computing; crash-safety tests pass 0 to requeue
#: immediately.
DEFAULT_STALE_AFTER_S = 600.0


class JobQueue:
    """Submit/claim/complete lifecycle over one store.

    ``telemetry`` receives the service-level counters
    (``job_claimed`` / ``job_completed`` / ``job_failed`` /
    ``job_requeued``) and the ``job_execute`` phase timer; per-job
    search telemetry is recorded by a job-scoped recorder whose
    counters/timers snapshot is absorbed into the record row.
    """

    def __init__(self, store: ResultStore, telemetry=NULL) -> None:
        self.store = store
        self.telemetry = telemetry

    # -- submit side ---------------------------------------------------
    def enqueue(self, key: str) -> bool:
        """Drop the work ticket for ``key``; False if already queued."""
        if not self.store.has_record(key):
            raise ServiceError(f"cannot enqueue {key!r}: no record row")
        path = self.store.queue_ticket(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, key.encode("ascii"))
        finally:
            os.close(fd)
        return True

    def pending_keys(self) -> List[str]:
        """Queued keys, oldest ticket first (FIFO-ish claim order)."""
        directory = os.path.join(self.store.root, self.store.QUEUE_DIR)
        entries = []
        for name in os.listdir(directory):
            if not name.endswith(".ticket"):
                continue
            path = os.path.join(directory, name)
            try:
                mtime = os.path.getmtime(path)
            except OSError:
                continue  # claimed between listdir and stat
            entries.append((mtime, name[: -len(".ticket")]))
        return [key for _, key in sorted(entries)]

    def claimed_keys(self) -> List[str]:
        directory = os.path.join(self.store.root, self.store.CLAIMS_DIR)
        return sorted(
            name[: -len(".ticket")]
            for name in os.listdir(directory)
            if name.endswith(".ticket")
        )

    # -- worker side ---------------------------------------------------
    def claim(self, worker: str) -> Optional[str]:
        """Claim one pending job; ``None`` when the queue is empty.

        The rename is the atomic hand-off: among N racing workers
        exactly one succeeds per ticket, everyone else gets
        ``FileNotFoundError`` and moves to the next ticket.
        """
        for key in self.pending_keys():
            try:
                os.rename(
                    self.store.queue_ticket(key),
                    self.store.claim_ticket(key),
                )
            except FileNotFoundError:
                continue  # lost the race for this ticket
            record = self.store.load_record(key)
            record.transition("running", worker=worker)
            self.store.write_record(record)
            self.telemetry.count("job_claimed")
            if self.telemetry.enabled:
                self.telemetry.event("job_claimed", key=key, worker=worker)
            return key
        return None

    def complete(
        self,
        key: str,
        response: ExplorationResponse,
        job_telemetry: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Persist the envelope, stamp ``done``; returns the envelope
        text written (the bytes later cache hits serve back)."""
        text = self.store.put_response(key, response)
        record = self.store.load_record(key)
        record.telemetry = job_telemetry
        record.transition("done", worker=record.worker)
        self.store.write_record(record)
        self._drop_claim(key)
        self.telemetry.count("job_completed")
        if self.telemetry.enabled:
            self.telemetry.event("job_completed", key=key)
        return text

    def fail(self, key: str, error: str) -> None:
        record = self.store.load_record(key)
        record.transition("failed", worker=record.worker, error=error)
        self.store.write_record(record)
        self._drop_claim(key)
        self.telemetry.count("job_failed")
        if self.telemetry.enabled:
            self.telemetry.event("job_failed", key=key, error=error)

    def _drop_claim(self, key: str) -> None:
        try:
            os.unlink(self.store.claim_ticket(key))
        except FileNotFoundError:
            pass

    # -- crash safety --------------------------------------------------
    def requeue_stale(
        self,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
        now: Optional[float] = None,
    ) -> List[str]:
        """Return abandoned jobs to the queue; lists the keys requeued.

        A ``running`` record whose claim is older than ``stale_after_s``
        is assumed dead (its worker crashed mid-job): the claim ticket
        is renamed back into the queue (or recreated if the crash ate
        it) and the record transitions back to ``pending``, keeping its
        attempt count and probe history.  Pending records that lost
        their ticket to a crash between renames are re-ticketed too.
        """
        now = time.time() if now is None else now
        requeued: List[str] = []
        for record in self.store.iter_records():
            if record.status == "running":
                anchor = record.claimed_ts or record.created_ts
                if now - anchor < stale_after_s:
                    continue
                self._restore_ticket(record.key)
                record.transition(
                    "pending",
                    error=f"requeued: stale claim by {record.worker!r}",
                    now=now,
                )
                self.store.write_record(record)
                requeued.append(record.key)
                self.telemetry.count("job_requeued")
                if self.telemetry.enabled:
                    self.telemetry.event("job_requeued", key=record.key)
            elif record.status == "pending":
                if now - record.created_ts < stale_after_s:
                    continue
                if not os.path.exists(self.store.queue_ticket(record.key)):
                    self._restore_ticket(record.key)
        return requeued

    def _restore_ticket(self, key: str) -> None:
        """Claim ticket back to the queue, or a fresh ticket if lost."""
        try:
            os.rename(
                self.store.claim_ticket(key), self.store.queue_ticket(key)
            )
        except FileNotFoundError:
            try:
                fd = os.open(
                    self.store.queue_ticket(key),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                return
            try:
                os.write(fd, key.encode("ascii"))
            finally:
                os.close(fd)

    # -- execution -----------------------------------------------------
    def execute(self, key: str, jobs: int = 1) -> ExplorationResponse:
        """Run the claimed request through the façade and complete it.

        The job gets its own :class:`Telemetry` recorder; its
        counters/gauges/timers snapshot is absorbed into the record row
        so ``repro serve status`` shows the run's internals without a
        separate stream file.  A :class:`~repro.errors.ReproError`
        marks the record ``failed`` and re-raises.
        """
        record = self.store.load_record(key)
        if record.status != "running":
            raise ServiceError(
                f"cannot execute {key!r}: record is {record.status!r}, "
                f"not 'running' (claim it first)"
            )
        job_telemetry = Telemetry(label=f"job:{key[:12]}")
        try:
            request = ExplorationRequest.from_dict(record.request)
            with self.telemetry.phase("job_execute"):
                response = explore(
                    request, jobs=jobs, telemetry=job_telemetry
                )
        except ReproError as exc:
            self.fail(key, f"{type(exc).__name__}: {exc}")
            raise
        except Exception as exc:  # unexpected: capture the traceback
            self.fail(key, traceback.format_exc())
            raise ServiceError(
                f"job {key!r} crashed: {type(exc).__name__}: {exc}"
            ) from exc
        block = job_telemetry.snapshot()
        block["label"] = job_telemetry.label
        block["events"] = len(job_telemetry.events)
        self.complete(key, response, job_telemetry=block)
        return response

    def drain(
        self,
        worker: str = "local",
        jobs: int = 1,
        max_jobs: Optional[int] = None,
    ) -> int:
        """Claim-and-execute until the queue is empty; jobs executed.

        A failed job is recorded (``failed`` row, ``job_failed``
        counter) and the drain moves on — one poisoned request must not
        wedge the worker.
        """
        executed = 0
        while max_jobs is None or executed < max_jobs:
            key = self.claim(worker)
            if key is None:
                return executed
            try:
                self.execute(key, jobs=jobs)
            except ReproError:
                continue  # recorded as failed; keep draining
            executed += 1
        return executed


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------
def _worker_main(
    root: str,
    worker: str,
    jobs: int,
    max_jobs: Optional[int],
) -> Tuple[int, Dict[str, Any]]:
    """Worker entry point (top-level, hence spawn-picklable)."""
    telemetry = Telemetry(label=worker)
    queue = JobQueue(ResultStore(root, create=False), telemetry=telemetry)
    executed = queue.drain(worker=worker, jobs=jobs, max_jobs=max_jobs)
    return executed, telemetry.export()


def run_workers(
    root: str,
    workers: int = 2,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    jobs: int = 1,
    max_jobs: Optional[int] = None,
    telemetry=NULL,
    start_method: str = "spawn",
) -> int:
    """Drain the store's queue with ``workers`` processes; jobs executed.

    Stale ``running`` records are requeued once, here, before any
    worker starts (crash recovery) — doing it per worker would let a
    late-starting worker rob a live sibling's fresh claim under small
    ``stale_after_s`` values.  Then the workers drain until the queue
    is empty.  ``workers=1`` runs inline — no pool, easiest to debug.
    Worker telemetry (service counters, ``job_execute`` timers, job
    events) is absorbed into ``telemetry`` in worker-index order, the
    runner's deterministic merge idiom.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    JobQueue(
        ResultStore(root, create=False), telemetry=telemetry
    ).requeue_stale(stale_after_s)
    if workers == 1:
        executed, payload = _worker_main(
            root, "worker-0", jobs, max_jobs
        )
        if telemetry.enabled:
            telemetry.absorb(0, "worker-0", payload)
        return executed
    import multiprocessing

    context = multiprocessing.get_context(start_method)
    executed = 0
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=context
    ) as pool:
        futures = [
            pool.submit(
                _worker_main,
                root, f"worker-{index}", jobs, max_jobs,
            )
            for index in range(workers)
        ]
        for index, future in enumerate(futures):
            count, payload = future.result()
            executed += count
            if telemetry.enabled:
                telemetry.absorb(index, f"worker-{index}", payload)
    return executed
