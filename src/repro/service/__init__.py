"""Exploration service: job store, worker pool, content-addressed cache.

Three layers (see the README architecture section):

* :mod:`repro.service.store` — persistence: content-addressed cache
  keys, :class:`JobRecord` rows with probe history, atomically written
  result envelopes;
* :mod:`repro.service.jobs` — lifecycle: queue tickets, claim/complete,
  crash-safe requeue, :func:`run_workers` process pool executing through
  :func:`repro.api.explore`;
* :mod:`repro.service.service` — the front door clients use:
  :class:`ExplorationService` with cache-first ``submit`` and the
  ``repro serve`` CLI behind it.
"""

from repro.service.jobs import DEFAULT_STALE_AFTER_S, JobQueue, run_workers
from repro.service.service import (
    STATS_FORMAT,
    STATS_SCHEMA_VERSION,
    SUBMIT_STATUSES,
    ExplorationService,
    SubmitOutcome,
)
from repro.service.store import (
    RECORD_FORMAT,
    RECORD_SCHEMA_VERSION,
    RECORD_STATES,
    JobRecord,
    ResultStore,
    compose_cache_key,
    instance_hash_for,
)

__all__ = [
    "DEFAULT_STALE_AFTER_S",
    "ExplorationService",
    "JobQueue",
    "JobRecord",
    "RECORD_FORMAT",
    "RECORD_SCHEMA_VERSION",
    "RECORD_STATES",
    "ResultStore",
    "STATS_FORMAT",
    "STATS_SCHEMA_VERSION",
    "SUBMIT_STATUSES",
    "SubmitOutcome",
    "compose_cache_key",
    "instance_hash_for",
    "run_workers",
]
