"""JSON (de)serialization of applications, architectures and solutions.

Stable, versioned, human-diffable formats so problem instances and
mapping results can be archived, shared, and reloaded — what downstream
users of a DSE tool actually need.  Round-tripping is exact (tested):
``load_application(dump_application(app))`` reproduces every task,
implementation and edge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError, MappingError
from repro.mapping.solution import Solution
from repro.model.application import Application
from repro.model.task import Implementation, Task

FORMAT_VERSION = 1


def _check_version(data: Dict[str, Any], kind: str) -> None:
    if data.get("format") != kind:
        raise ConfigurationError(
            f"expected a {kind!r} document, got {data.get('format')!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} format version {data.get('version')!r}"
        )


# ----------------------------------------------------------------------
# applications
# ----------------------------------------------------------------------
def application_to_dict(application: Application) -> Dict[str, Any]:
    return {
        "format": "application",
        "version": FORMAT_VERSION,
        "name": application.name,
        "tasks": [
            {
                "index": task.index,
                "name": task.name,
                "functionality": task.functionality,
                "sw_time_ms": task.sw_time_ms,
                "implementations": [
                    {"clbs": i.clbs, "time_ms": i.time_ms, "name": i.name}
                    for i in task.implementations
                ],
            }
            for task in sorted(application.tasks(), key=lambda t: t.index)
        ],
        "dependencies": [
            {"src": src, "dst": dst, "data_kbytes": kbytes}
            for src, dst, kbytes in sorted(application.dependencies())
        ],
    }


def application_from_dict(data: Dict[str, Any]) -> Application:
    _check_version(data, "application")
    app = Application(data["name"])
    for entry in data["tasks"]:
        app.add_task(
            Task(
                index=entry["index"],
                name=entry["name"],
                functionality=entry["functionality"],
                sw_time_ms=entry["sw_time_ms"],
                implementations=tuple(
                    Implementation(
                        clbs=i["clbs"], time_ms=i["time_ms"],
                        name=i.get("name", ""),
                    )
                    for i in entry["implementations"]
                ),
            )
        )
    for edge in data["dependencies"]:
        app.add_dependency(edge["src"], edge["dst"], edge["data_kbytes"])
    app.validate()
    return app


def dump_application(application: Application, indent: int = 2) -> str:
    return json.dumps(application_to_dict(application), indent=indent)


def load_application(text: str) -> Application:
    return application_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# architectures
# ----------------------------------------------------------------------
def architecture_to_dict(architecture: Architecture) -> Dict[str, Any]:
    resources: List[Dict[str, Any]] = []
    for resource in architecture.resources():
        entry: Dict[str, Any] = {
            "name": resource.name,
            "monetary_cost": resource.monetary_cost,
        }
        if isinstance(resource, Processor):
            entry["kind"] = "processor"
            entry["speed_factor"] = resource.speed_factor
        elif isinstance(resource, ReconfigurableCircuit):
            entry["kind"] = "reconfigurable"
            entry["n_clbs"] = resource.n_clbs
            entry["reconfig_ms_per_clb"] = resource.reconfig_ms_per_clb
            entry["partial_reconfiguration"] = resource.partial_reconfiguration
        elif isinstance(resource, Asic):
            entry["kind"] = "asic"
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"cannot serialize resource type {type(resource).__name__}"
            )
        resources.append(entry)
    return {
        "format": "architecture",
        "version": FORMAT_VERSION,
        "name": architecture.name,
        "bus": {
            "name": architecture.bus.name,
            "rate_kbytes_per_ms": architecture.bus.rate_kbytes_per_ms,
            "latency_ms": architecture.bus.latency_ms,
        },
        "resources": resources,
    }


def architecture_from_dict(data: Dict[str, Any]) -> Architecture:
    _check_version(data, "architecture")
    bus = Bus(
        name=data["bus"]["name"],
        rate_kbytes_per_ms=data["bus"]["rate_kbytes_per_ms"],
        latency_ms=data["bus"].get("latency_ms", 0.0),
    )
    arch = Architecture(data["name"], bus=bus)
    for entry in data["resources"]:
        kind = entry["kind"]
        if kind == "processor":
            arch.add_resource(
                Processor(
                    entry["name"],
                    speed_factor=entry.get("speed_factor", 1.0),
                    monetary_cost=entry.get("monetary_cost", 0.0),
                )
            )
        elif kind == "reconfigurable":
            arch.add_resource(
                ReconfigurableCircuit(
                    entry["name"],
                    n_clbs=entry["n_clbs"],
                    reconfig_ms_per_clb=entry["reconfig_ms_per_clb"],
                    monetary_cost=entry.get("monetary_cost", 0.0),
                    partial_reconfiguration=entry.get(
                        "partial_reconfiguration", True
                    ),
                )
            )
        elif kind == "asic":
            arch.add_resource(
                Asic(entry["name"], monetary_cost=entry.get("monetary_cost", 0.0))
            )
        else:
            raise ConfigurationError(f"unknown resource kind {kind!r}")
    return arch


def dump_architecture(architecture: Architecture, indent: int = 2) -> str:
    return json.dumps(architecture_to_dict(architecture), indent=indent)


def load_architecture(text: str) -> Architecture:
    return architecture_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# bundled problem instances
# ----------------------------------------------------------------------
@dataclass
class ProblemInstance:
    """One self-contained DSE problem: what to map, onto what, by when.

    The bundled document is what the benchmark corpus hashes and what
    users archive next to results — a mapping experiment is not
    reproducible from an application alone.  ``metadata`` is free-form
    JSON (the corpus stores ``family``/``params``/``seed`` there).
    """

    application: Application
    architecture: Architecture
    deadline_ms: Optional[float] = None
    name: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


def instance_to_dict(instance: ProblemInstance) -> Dict[str, Any]:
    return {
        "format": "instance",
        "version": FORMAT_VERSION,
        "name": instance.name or instance.application.name,
        "deadline_ms": instance.deadline_ms,
        "application": application_to_dict(instance.application),
        "architecture": architecture_to_dict(instance.architecture),
        "metadata": instance.metadata,
    }


def instance_from_dict(data: Dict[str, Any]) -> ProblemInstance:
    _check_version(data, "instance")
    return ProblemInstance(
        application=application_from_dict(data["application"]),
        architecture=architecture_from_dict(data["architecture"]),
        deadline_ms=data.get("deadline_ms"),
        name=data.get("name", ""),
        metadata=dict(data.get("metadata", {})),
    )


def dump_instance(instance: ProblemInstance, indent: int = 2) -> str:
    return json.dumps(instance_to_dict(instance), indent=indent)


def load_instance(text: str) -> ProblemInstance:
    return instance_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# solutions
# ----------------------------------------------------------------------
def solution_to_dict(solution: Solution) -> Dict[str, Any]:
    arch = solution.architecture
    return {
        "format": "solution",
        "version": FORMAT_VERSION,
        "application": solution.application.name,
        "architecture": arch.name,
        "software_orders": {
            p.name: list(solution.software_order(p.name))
            for p in arch.processors()
        },
        "contexts": {
            rc.name: [list(ctx) for ctx in solution.contexts(rc.name)]
            for rc in arch.reconfigurable_circuits()
        },
        "asic_tasks": {
            a.name: list(solution.asic_tasks(a.name)) for a in arch.asics()
        },
        "implementation_choices": {
            str(t): solution.implementation_choice(t)
            for t in sorted(solution.assigned_tasks())
            if solution.application.task(t).hardware_capable
        },
    }


def solution_from_dict(
    data: Dict[str, Any],
    application: Application,
    architecture: Architecture,
) -> Solution:
    _check_version(data, "solution")
    if data["application"] != application.name:
        raise MappingError(
            f"solution was saved for application {data['application']!r}, "
            f"not {application.name!r}"
        )
    solution = Solution(application, architecture)
    for task, choice in data.get("implementation_choices", {}).items():
        solution.set_implementation_choice(int(task), choice)
    for proc_name, order in data["software_orders"].items():
        for task in order:
            solution.assign_to_processor(task, proc_name)
    for rc_name, contexts in data["contexts"].items():
        for k, members in enumerate(contexts):
            for i, task in enumerate(members):
                if i == 0:
                    solution.spawn_context(task, rc_name, k)
                else:
                    solution.assign_to_context(task, rc_name, k)
    for asic_name, members in data.get("asic_tasks", {}).items():
        for task in members:
            solution.assign_to_asic(task, asic_name)
    solution.validate()
    return solution


def dump_solution(solution: Solution, indent: int = 2) -> str:
    return json.dumps(solution_to_dict(solution), indent=indent)


def load_solution(
    text: str, application: Application, architecture: Architecture
) -> Solution:
    return solution_from_dict(json.loads(text), application, architecture)
