"""JSON (de)serialization of applications, architectures and solutions.

Stable, versioned, human-diffable formats so problem instances and
mapping results can be archived, shared, and reloaded — what downstream
users of a DSE tool actually need.  Round-tripping is exact (tested):
``load_application(dump_application(app))`` reproduces every task,
implementation and edge.

Two instance-identity notions live here:

* the *content* hash (``bench.corpus.scenario_hash``) covers every
  byte of the bundled document — two instances are the same problem iff
  it matches;
* the *structure* digest (:func:`structure_digest`) covers only the
  topology skeleton — task indices and implementation counts, the
  dependency edge set, and resource names/kinds — ignoring all numeric
  durations/rates/capacities.  Instances sharing a structure digest can
  exchange mapping solutions (possibly after repair), which is what the
  exploration service's warm-start donor index keys on, with
  :func:`diff_instances` classifying how far apart two such instances
  actually are.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.errors import ConfigurationError, MappingError
from repro.mapping.solution import Solution
from repro.model.application import Application
from repro.model.task import Implementation, Task

FORMAT_VERSION = 1


def _check_version(data: Dict[str, Any], kind: str) -> None:
    if data.get("format") != kind:
        raise ConfigurationError(
            f"expected a {kind!r} document, got {data.get('format')!r}"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported {kind} format version {data.get('version')!r}"
        )


# ----------------------------------------------------------------------
# applications
# ----------------------------------------------------------------------
def application_to_dict(application: Application) -> Dict[str, Any]:
    return {
        "format": "application",
        "version": FORMAT_VERSION,
        "name": application.name,
        "tasks": [
            {
                "index": task.index,
                "name": task.name,
                "functionality": task.functionality,
                "sw_time_ms": task.sw_time_ms,
                "implementations": [
                    {"clbs": i.clbs, "time_ms": i.time_ms, "name": i.name}
                    for i in task.implementations
                ],
            }
            for task in sorted(application.tasks(), key=lambda t: t.index)
        ],
        "dependencies": [
            {"src": src, "dst": dst, "data_kbytes": kbytes}
            for src, dst, kbytes in sorted(application.dependencies())
        ],
    }


def application_from_dict(data: Dict[str, Any]) -> Application:
    _check_version(data, "application")
    app = Application(data["name"])
    for entry in data["tasks"]:
        app.add_task(
            Task(
                index=entry["index"],
                name=entry["name"],
                functionality=entry["functionality"],
                sw_time_ms=entry["sw_time_ms"],
                implementations=tuple(
                    Implementation(
                        clbs=i["clbs"], time_ms=i["time_ms"],
                        name=i.get("name", ""),
                    )
                    for i in entry["implementations"]
                ),
            )
        )
    for edge in data["dependencies"]:
        app.add_dependency(edge["src"], edge["dst"], edge["data_kbytes"])
    app.validate()
    return app


def dump_application(application: Application, indent: int = 2) -> str:
    return json.dumps(application_to_dict(application), indent=indent)


def load_application(text: str) -> Application:
    return application_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# architectures
# ----------------------------------------------------------------------
def architecture_to_dict(architecture: Architecture) -> Dict[str, Any]:
    resources: List[Dict[str, Any]] = []
    for resource in architecture.resources():
        entry: Dict[str, Any] = {
            "name": resource.name,
            "monetary_cost": resource.monetary_cost,
        }
        if isinstance(resource, Processor):
            entry["kind"] = "processor"
            entry["speed_factor"] = resource.speed_factor
        elif isinstance(resource, ReconfigurableCircuit):
            entry["kind"] = "reconfigurable"
            entry["n_clbs"] = resource.n_clbs
            entry["reconfig_ms_per_clb"] = resource.reconfig_ms_per_clb
            entry["partial_reconfiguration"] = resource.partial_reconfiguration
        elif isinstance(resource, Asic):
            entry["kind"] = "asic"
        else:  # pragma: no cover - defensive
            raise ConfigurationError(
                f"cannot serialize resource type {type(resource).__name__}"
            )
        resources.append(entry)
    return {
        "format": "architecture",
        "version": FORMAT_VERSION,
        "name": architecture.name,
        "bus": {
            "name": architecture.bus.name,
            "rate_kbytes_per_ms": architecture.bus.rate_kbytes_per_ms,
            "latency_ms": architecture.bus.latency_ms,
        },
        "resources": resources,
    }


def architecture_from_dict(data: Dict[str, Any]) -> Architecture:
    _check_version(data, "architecture")
    bus = Bus(
        name=data["bus"]["name"],
        rate_kbytes_per_ms=data["bus"]["rate_kbytes_per_ms"],
        latency_ms=data["bus"].get("latency_ms", 0.0),
    )
    arch = Architecture(data["name"], bus=bus)
    for entry in data["resources"]:
        kind = entry["kind"]
        if kind == "processor":
            arch.add_resource(
                Processor(
                    entry["name"],
                    speed_factor=entry.get("speed_factor", 1.0),
                    monetary_cost=entry.get("monetary_cost", 0.0),
                )
            )
        elif kind == "reconfigurable":
            arch.add_resource(
                ReconfigurableCircuit(
                    entry["name"],
                    n_clbs=entry["n_clbs"],
                    reconfig_ms_per_clb=entry["reconfig_ms_per_clb"],
                    monetary_cost=entry.get("monetary_cost", 0.0),
                    partial_reconfiguration=entry.get(
                        "partial_reconfiguration", True
                    ),
                )
            )
        elif kind == "asic":
            arch.add_resource(
                Asic(entry["name"], monetary_cost=entry.get("monetary_cost", 0.0))
            )
        else:
            raise ConfigurationError(f"unknown resource kind {kind!r}")
    return arch


def dump_architecture(architecture: Architecture, indent: int = 2) -> str:
    return json.dumps(architecture_to_dict(architecture), indent=indent)


def load_architecture(text: str) -> Architecture:
    return architecture_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# bundled problem instances
# ----------------------------------------------------------------------
@dataclass
class ProblemInstance:
    """One self-contained DSE problem: what to map, onto what, by when.

    The bundled document is what the benchmark corpus hashes and what
    users archive next to results — a mapping experiment is not
    reproducible from an application alone.  ``metadata`` is free-form
    JSON (the corpus stores ``family``/``params``/``seed`` there).
    """

    application: Application
    architecture: Architecture
    deadline_ms: Optional[float] = None
    name: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)


def instance_to_dict(instance: ProblemInstance) -> Dict[str, Any]:
    return {
        "format": "instance",
        "version": FORMAT_VERSION,
        "name": instance.name or instance.application.name,
        "deadline_ms": instance.deadline_ms,
        "application": application_to_dict(instance.application),
        "architecture": architecture_to_dict(instance.architecture),
        "metadata": instance.metadata,
    }


def instance_from_dict(data: Dict[str, Any]) -> ProblemInstance:
    _check_version(data, "instance")
    return ProblemInstance(
        application=application_from_dict(data["application"]),
        architecture=architecture_from_dict(data["architecture"]),
        deadline_ms=data.get("deadline_ms"),
        name=data.get("name", ""),
        metadata=dict(data.get("metadata", {})),
    )


def dump_instance(instance: ProblemInstance, indent: int = 2) -> str:
    return json.dumps(instance_to_dict(instance), indent=indent)


def load_instance(text: str) -> ProblemInstance:
    return instance_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# instance structure identity and deltas
# ----------------------------------------------------------------------
def _instance_document(
    instance: Union[ProblemInstance, Dict[str, Any]],
) -> Dict[str, Any]:
    if isinstance(instance, ProblemInstance):
        return instance_to_dict(instance)
    return instance


def structure_digest(
    instance: Union[ProblemInstance, Dict[str, Any]],
) -> str:
    """SHA-256 of the instance's *structure-only* skeleton.

    Covers the task index set with per-task implementation counts, the
    dependency ``(src, dst)`` edge set, and the resource name/kind set —
    and deliberately ignores every numeric field (durations, transfer
    volumes, bus rates, CLB capacities, deadlines) plus names/metadata.
    Two instances with equal digests describe the same mapping search
    space shape: a solution document for one can seed the other.
    """
    doc = _instance_document(instance)
    skeleton = {
        "tasks": sorted(
            [entry["index"], len(entry["implementations"])]
            for entry in doc["application"]["tasks"]
        ),
        "deps": sorted(
            [edge["src"], edge["dst"]]
            for edge in doc["application"]["dependencies"]
        ),
        "resources": sorted(
            [entry["name"], entry["kind"]]
            for entry in doc["architecture"]["resources"]
        ),
    }
    canonical = json.dumps(
        skeleton, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Cap on the per-field descriptions an :class:`InstanceDelta` carries.
_DELTA_CHANGE_CAP = 32


@dataclass
class InstanceDelta:
    """Classified difference between two problem instances.

    ``kind`` is ``"identical"`` (no differences), ``"param"`` (only
    numeric parameters differ — durations, volumes, rates, capacities,
    deadline: a donor solution re-maps directly), or ``"structural"``
    (tasks/edges/resources/implementations appeared or vanished: a
    donor solution needs repair).  ``size`` counts every differing
    field; ``changed`` holds up to ``_DELTA_CHANGE_CAP`` short
    descriptions for diagnostics.
    """

    kind: str
    size: int
    param_changes: int
    structural_changes: int
    changed: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "size": self.size,
            "param_changes": self.param_changes,
            "structural_changes": self.structural_changes,
            "changed": list(self.changed),
        }


class _DeltaBuilder:
    def __init__(self) -> None:
        self.param = 0
        self.structural = 0
        self.changed: List[str] = []

    def _note(self, description: str) -> None:
        if len(self.changed) < _DELTA_CHANGE_CAP:
            self.changed.append(description)

    def add_param(self, description: str) -> None:
        self.param += 1
        self._note(description)

    def add_structural(self, description: str) -> None:
        self.structural += 1
        self._note(description)

    def compare_scalar(self, label: str, a: Any, b: Any) -> None:
        if a != b:
            self.add_param(f"{label}: {a!r} -> {b!r}")

    def build(self) -> InstanceDelta:
        if self.structural:
            kind = "structural"
        elif self.param:
            kind = "param"
        else:
            kind = "identical"
        return InstanceDelta(
            kind=kind,
            size=self.param + self.structural,
            param_changes=self.param,
            structural_changes=self.structural,
            changed=self.changed,
        )


def diff_instances(
    a: Union[ProblemInstance, Dict[str, Any]],
    b: Union[ProblemInstance, Dict[str, Any]],
) -> InstanceDelta:
    """Classify the delta between two instances (``a`` = donor,
    ``b`` = target): param-only vs structural, and its size.

    Works on :class:`ProblemInstance` objects or their canonical
    bundled documents interchangeably.  Names and free-form metadata
    are ignored — they carry no mapping semantics.
    """
    doc_a = _instance_document(a)
    doc_b = _instance_document(b)
    delta = _DeltaBuilder()

    # -- tasks ---------------------------------------------------------
    tasks_a = {t["index"]: t for t in doc_a["application"]["tasks"]}
    tasks_b = {t["index"]: t for t in doc_b["application"]["tasks"]}
    for index in sorted(tasks_a.keys() - tasks_b.keys()):
        delta.add_structural(f"task {index} removed")
    for index in sorted(tasks_b.keys() - tasks_a.keys()):
        delta.add_structural(f"task {index} added")
    for index in sorted(tasks_a.keys() & tasks_b.keys()):
        ta, tb = tasks_a[index], tasks_b[index]
        delta.compare_scalar(
            f"task {index} sw_time_ms", ta["sw_time_ms"], tb["sw_time_ms"]
        )
        impls_a, impls_b = ta["implementations"], tb["implementations"]
        if len(impls_a) != len(impls_b):
            delta.add_structural(
                f"task {index} implementations: "
                f"{len(impls_a)} -> {len(impls_b)}"
            )
            continue
        for k, (ia, ib) in enumerate(zip(impls_a, impls_b)):
            delta.compare_scalar(
                f"task {index} impl {k} clbs", ia["clbs"], ib["clbs"]
            )
            delta.compare_scalar(
                f"task {index} impl {k} time_ms", ia["time_ms"], ib["time_ms"]
            )

    # -- dependencies --------------------------------------------------
    deps_a = {
        (e["src"], e["dst"]): e
        for e in doc_a["application"]["dependencies"]
    }
    deps_b = {
        (e["src"], e["dst"]): e
        for e in doc_b["application"]["dependencies"]
    }
    for src, dst in sorted(deps_a.keys() - deps_b.keys()):
        delta.add_structural(f"dependency ({src}, {dst}) removed")
    for src, dst in sorted(deps_b.keys() - deps_a.keys()):
        delta.add_structural(f"dependency ({src}, {dst}) added")
    for key in sorted(deps_a.keys() & deps_b.keys()):
        delta.compare_scalar(
            f"dependency {key} data_kbytes",
            deps_a[key]["data_kbytes"],
            deps_b[key]["data_kbytes"],
        )

    # -- architecture --------------------------------------------------
    bus_a, bus_b = doc_a["architecture"]["bus"], doc_b["architecture"]["bus"]
    delta.compare_scalar(
        "bus rate_kbytes_per_ms",
        bus_a["rate_kbytes_per_ms"],
        bus_b["rate_kbytes_per_ms"],
    )
    delta.compare_scalar(
        "bus latency_ms",
        bus_a.get("latency_ms", 0.0),
        bus_b.get("latency_ms", 0.0),
    )
    res_a = {r["name"]: r for r in doc_a["architecture"]["resources"]}
    res_b = {r["name"]: r for r in doc_b["architecture"]["resources"]}
    for name in sorted(res_a.keys() - res_b.keys()):
        delta.add_structural(f"resource {name!r} removed")
    for name in sorted(res_b.keys() - res_a.keys()):
        delta.add_structural(f"resource {name!r} added")
    for name in sorted(res_a.keys() & res_b.keys()):
        ra, rb = res_a[name], res_b[name]
        if ra["kind"] != rb["kind"]:
            delta.add_structural(
                f"resource {name!r} kind: {ra['kind']!r} -> {rb['kind']!r}"
            )
            continue
        for key in (
            "speed_factor",
            "n_clbs",
            "reconfig_ms_per_clb",
            "partial_reconfiguration",
            "monetary_cost",
        ):
            if key in ra or key in rb:
                delta.compare_scalar(
                    f"resource {name!r} {key}", ra.get(key), rb.get(key)
                )

    # -- deadline ------------------------------------------------------
    delta.compare_scalar(
        "deadline_ms", doc_a.get("deadline_ms"), doc_b.get("deadline_ms")
    )
    return delta.build()


# ----------------------------------------------------------------------
# solutions
# ----------------------------------------------------------------------
def solution_to_dict(solution: Solution) -> Dict[str, Any]:
    arch = solution.architecture
    return {
        "format": "solution",
        "version": FORMAT_VERSION,
        "application": solution.application.name,
        "architecture": arch.name,
        "software_orders": {
            p.name: list(solution.software_order(p.name))
            for p in arch.processors()
        },
        "contexts": {
            rc.name: [list(ctx) for ctx in solution.contexts(rc.name)]
            for rc in arch.reconfigurable_circuits()
        },
        "asic_tasks": {
            a.name: list(solution.asic_tasks(a.name)) for a in arch.asics()
        },
        "implementation_choices": {
            str(t): solution.implementation_choice(t)
            for t in sorted(solution.assigned_tasks())
            if solution.application.task(t).hardware_capable
        },
    }


def solution_from_dict(
    data: Dict[str, Any],
    application: Application,
    architecture: Architecture,
) -> Solution:
    _check_version(data, "solution")
    if data["application"] != application.name:
        raise MappingError(
            f"solution was saved for application {data['application']!r}, "
            f"not {application.name!r}"
        )
    solution = Solution(application, architecture)
    for task, choice in data.get("implementation_choices", {}).items():
        solution.set_implementation_choice(int(task), choice)
    for proc_name, order in data["software_orders"].items():
        for task in order:
            solution.assign_to_processor(task, proc_name)
    for rc_name, contexts in data["contexts"].items():
        for k, members in enumerate(contexts):
            for i, task in enumerate(members):
                if i == 0:
                    solution.spawn_context(task, rc_name, k)
                else:
                    solution.assign_to_context(task, rc_name, k)
    for asic_name, members in data.get("asic_tasks", {}).items():
        for task in members:
            solution.assign_to_asic(task, asic_name)
    solution.validate()
    return solution


def dump_solution(solution: Solution, indent: int = 2) -> str:
    return json.dumps(solution_to_dict(solution), indent=indent)


def load_solution(
    text: str, application: Application, architecture: Architecture
) -> Solution:
    return solution_from_dict(json.loads(text), application, architecture)
