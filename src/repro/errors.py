"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a task graph (duplicate node, bad edge...)."""


class CycleError(GraphError):
    """An operation would create (or encountered) a cycle in a DAG."""

    def __init__(self, message: str = "operation would create a cycle", cycle=None):
        super().__init__(message)
        #: Optional list of node identifiers forming the offending cycle.
        self.cycle = list(cycle) if cycle is not None else None


class ModelError(ReproError):
    """Invalid application-model data (negative time, missing impl...)."""


class ArchitectureError(ReproError):
    """Invalid architecture description or resource operation."""


class CapacityError(ArchitectureError):
    """A task does not fit the capacity of the targeted resource/context."""


class MappingError(ReproError):
    """Invalid solution state (unassigned task, inconsistent order...)."""


class MoveError(ReproError):
    """A simulated-annealing move could not be generated or applied."""


class InfeasibleMoveError(MoveError):
    """The selected move is infeasible (e.g. it would create a cycle).

    Infeasible moves are a *normal* event during annealing; the engine
    counts them and draws another move.
    """


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration for an algorithm."""


class TelemetryError(ReproError):
    """Malformed telemetry stream (bad JSONL, schema violation...)."""


class ServiceError(ReproError):
    """Exploration-service store/queue problem (missing record, corrupt
    row, claim on a key that is not pending...)."""
