"""Parallel multi-seed experiment runner.

The paper's headline result is statistical (Fig. 3 averages 100
annealing runs per device size), and its comparison with the GA flow is
a wall-clock argument — so the repository needs to run *batches* of
searches, and it needs to saturate the machine doing so.  This module
executes a list of :class:`SearchJob` — ``(strategy spec, instance,
seed)`` triples — either inline or across worker processes.

Design rules that make parallel results **bit-identical** to sequential
ones for fixed seeds:

* Job specs are plain picklable data (spawn-safe: no lambdas, no open
  handles); workers rebuild strategies from the spec registry.
* Every job runs against its own private object graph.  Worker
  processes get one by construction (pickling); the inline path pickles
  each job through :func:`_isolate` so a shared ``Application`` or
  ``Architecture`` can never leak state between jobs, in either mode.
* Jobs without an explicit seed get one derived from ``base_seed``
  through ``numpy.random.SeedSequence`` spawning (with a pure-Python
  fallback), so adding workers never re-deals the seeds.
* Outcomes are returned in submission order regardless of completion
  order.

``checkpoint_path`` appends one JSONL row per finished job (strategy
kind, seed, best cost, serialized best solution, history); re-running
with the same path skips the finished jobs and reloads their results,
so a multi-hour sweep survives interruption.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.arch.architecture import Architecture, epicure_architecture
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluation, Evaluator
from repro.mapping.solution import Solution
from repro.model.application import Application
from repro.search.strategy import SearchBudget, SearchResult, SearchStrategy

try:  # numpy is an optional dependency of the seed derivation only
    from numpy.random import SeedSequence as _SeedSequence
except ImportError:  # pragma: no cover - numpy is in the standard env
    _SeedSequence = None


# ----------------------------------------------------------------------
# seeds
# ----------------------------------------------------------------------
def derive_seeds(base_seed: int, n: int) -> List[int]:
    """``n`` statistically independent 32-bit seeds from one base seed.

    Uses ``numpy.random.SeedSequence.spawn`` (the recommended way to
    key parallel streams); falls back to splitmix64-style mixing when
    numpy is unavailable.  Deterministic in both cases.
    """
    if n < 0:
        raise ConfigurationError("cannot derive a negative number of seeds")
    if _SeedSequence is not None:
        children = _SeedSequence(base_seed).spawn(n)
        return [int(child.generate_state(1)[0]) for child in children]
    seeds = []
    state = (base_seed & 0xFFFFFFFFFFFFFFFF) or 0x9E3779B97F4A7C15
    for _ in range(n):
        state = (state + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        seeds.append((z ^ (z >> 31)) & 0xFFFFFFFF)
    return seeds


# ----------------------------------------------------------------------
# job specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StrategySpec:
    """Which searcher to run and how to configure it.

    ``kind`` keys into :data:`STRATEGY_KINDS`; ``options`` are the
    keyword knobs of that strategy's builder (all plain data, so the
    spec pickles across a ``spawn`` boundary).  Unknown option keys are
    rejected up front — a misspelled knob must fail loudly, not run a
    silently different experiment.
    """

    kind: str
    options: Dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in STRATEGY_KINDS:
            raise ConfigurationError(
                f"unknown strategy kind {self.kind!r}; "
                f"known: {sorted(STRATEGY_KINDS)}"
            )
        unknown = set(self.options) - KNOWN_OPTIONS[self.kind]
        if unknown:
            raise ConfigurationError(
                f"unknown option(s) for strategy {self.kind!r}: "
                f"{sorted(unknown)}; known: {sorted(KNOWN_OPTIONS[self.kind])}"
            )

    def fingerprint(self) -> str:
        """Stable identity of kind + options for checkpoint matching.

        Non-JSON option values (e.g. a resource catalog of callables)
        serialize via ``repr``, whose process-dependent addresses make
        such specs never match a checkpoint — recomputing is the safe
        direction.
        """
        return json.dumps(
            {"kind": self.kind, "options": self.options},
            sort_keys=True, default=repr,
        )


@dataclass(frozen=True)
class InstanceSpec:
    """The problem instance a job runs on.

    Either an explicit ``architecture`` or an ``n_clbs`` device size
    (the worker then builds the paper's EPICURE platform at that
    capacity — cheaper to ship than a full architecture object).
    """

    application: Application
    architecture: Optional[Architecture] = None
    n_clbs: Optional[int] = None

    def build(self) -> Tuple[Application, Architecture]:
        if self.architecture is not None:
            return self.application, self.architecture
        if self.n_clbs is None:
            raise ConfigurationError(
                "InstanceSpec needs an architecture or an n_clbs device size"
            )
        return self.application, epicure_architecture(n_clbs=self.n_clbs)


@dataclass(frozen=True)
class SearchJob:
    """One unit of work: strategy × instance × seed.

    ``tag`` is an opaque JSON-serializable label echoed back on the
    outcome (consumers use it to regroup results); ``initial`` is an
    optional starting solution (build it from the same ``application``
    / ``architecture`` objects as the spec so the pickled job stays one
    consistent object graph).  ``budget`` adds wall-clock / stall limits
    on top of the strategy's own iteration budget (note: the budget is
    not part of the checkpoint fingerprint — keep it out of
    checkpointed batches whose limits you intend to vary).

    ``telemetry`` is a plain-dict recorder config (see
    :meth:`repro.obs.telemetry.Telemetry.job_config`); when set, the
    worker builds a private recorder for its run and ships the exported
    event stream back inside ``result.extras["telemetry"]``.  Like the
    budget, it is not part of the checkpoint fingerprint.

    ``anytime`` is a plain-dict snapshot config
    (``{"interval_iterations": n}`` and/or ``{"interval_s": secs}``).
    Callbacks cannot cross the spawn boundary, so the worker builds the
    periodic incumbent recorder itself and ships the snapshots back
    inside ``result.extras["anytime"]``.  Also not part of the
    checkpoint fingerprint (checkpoint-restored results carry no
    snapshots).
    """

    strategy: StrategySpec
    instance: InstanceSpec
    seed: Optional[int] = None
    tag: Any = None
    initial: Optional[Solution] = None
    budget: Optional[SearchBudget] = None
    telemetry: Optional[Dict[str, Any]] = None
    anytime: Optional[Dict[str, Any]] = None


@dataclass
class JobOutcome:
    """A finished job, in submission order."""

    index: int
    tag: Any
    seed: Optional[int]
    result: SearchResult
    from_checkpoint: bool = False


# ----------------------------------------------------------------------
# strategy builders (top-level functions: spawn-safe)
# ----------------------------------------------------------------------
#: Accepted ``StrategySpec.options`` keys per kind (typos are rejected
#: by :meth:`StrategySpec.validate`).
KNOWN_OPTIONS: Dict[str, frozenset] = {
    "sa": frozenset({
        "iterations", "warmup_iterations", "schedule_name",
        "schedule_kwargs", "p_zero", "p_impl", "catalog", "bus_policy",
        "keep_trace", "stall_limit", "initial_hw_fraction", "engine",
        "cost_function", "batch_size",
    }),
    "hill_climber": frozenset({
        "iterations", "p_zero", "p_impl", "p_offload", "catalog",
        "bus_policy", "engine",
    }),
    "tabu": frozenset({
        "iterations", "candidates_per_iteration", "tabu_tenure",
        "p_zero", "p_impl", "p_offload", "catalog", "bus_policy", "engine",
    }),
    "ga": frozenset({
        "population_size", "generations", "crossover_rate",
        "mutation_rate", "tournament_size", "elitism", "bus_policy",
        "engine",
    }),
    "random": frozenset({"samples", "bus_policy", "engine"}),
    "tempering": frozenset({
        "chains", "iterations", "warmup_iterations", "swap_interval",
        "ladder_ratio", "schedule_name", "schedule_kwargs", "p_impl",
        "bus_policy", "keep_trace", "stall_limit", "initial_hw_fraction",
        "engine", "cost_function",
    }),
}


def _build_sa(application, architecture, seed, options) -> SearchStrategy:
    from repro.sa.explorer import DesignSpaceExplorer

    kwargs = dict(options)
    kwargs.setdefault("keep_trace", False)
    return DesignSpaceExplorer(application, architecture, seed=seed, **kwargs)


def _build_tempering(application, architecture, seed, options) -> SearchStrategy:
    from repro.sa.population import PopulationAnnealer

    kwargs = dict(options)
    kwargs.setdefault("keep_trace", False)
    return PopulationAnnealer(application, architecture, seed=seed, **kwargs)


def _move_generator(application, options):
    from repro.sa.moves import MoveGenerator

    kwargs = {
        k: options[k] for k in ("p_zero", "p_impl", "p_offload", "catalog")
        if k in options
    }
    return MoveGenerator(application, **kwargs)


def _evaluator(application, architecture, options) -> Evaluator:
    return Evaluator(
        application,
        architecture,
        options.get("bus_policy", "ordered"),
        engine=options.get("engine", "full"),
    )


def _build_hill(application, architecture, seed, options) -> SearchStrategy:
    from repro.baselines.hill_climber import HillClimber

    return HillClimber(
        _evaluator(application, architecture, options),
        _move_generator(application, options),
        iterations=options.get("iterations", 5000),
        seed=seed,
    )


def _build_tabu(application, architecture, seed, options) -> SearchStrategy:
    from repro.baselines.tabu import TabuConfig, TabuSearch

    config = TabuConfig(
        iterations=options.get("iterations", 2000),
        candidates_per_iteration=options.get("candidates_per_iteration", 8),
        tabu_tenure=options.get("tabu_tenure", 25),
        seed=seed,
    )
    return TabuSearch(
        _evaluator(application, architecture, options),
        _move_generator(application, options),
        config,
    )


def _build_ga(application, architecture, seed, options) -> SearchStrategy:
    from repro.baselines.ga import GeneticConfig, GeneticPartitioner

    config = GeneticConfig(
        population_size=options.get("population_size", 300),
        generations=options.get("generations", 40),
        crossover_rate=options.get("crossover_rate", 0.9),
        mutation_rate=options.get("mutation_rate", 0.03),
        tournament_size=options.get("tournament_size", 3),
        elitism=options.get("elitism", 2),
        seed=seed,
    )
    return GeneticPartitioner(
        application,
        architecture,
        config,
        bus_policy=options.get("bus_policy", "ordered"),
        engine=options.get("engine", "full"),
    )


def _build_random(application, architecture, seed, options) -> SearchStrategy:
    from repro.baselines.random_search import RandomSearch

    return RandomSearch(
        application,
        architecture,
        samples=options.get("samples", 200),
        seed=seed,
        bus_policy=options.get("bus_policy", "ordered"),
        engine=options.get("engine", "full"),
    )


#: Registry of strategy builders; each maps
#: ``(application, architecture, seed, options) -> SearchStrategy``.
STRATEGY_KINDS = {
    "sa": _build_sa,
    "hill_climber": _build_hill,
    "tabu": _build_tabu,
    "ga": _build_ga,
    "random": _build_random,
    "tempering": _build_tempering,
}


def build_strategy(
    spec: StrategySpec,
    application: Application,
    architecture: Architecture,
    seed: Optional[int] = None,
) -> SearchStrategy:
    """Instantiate the searcher a spec describes for one instance."""
    spec.validate()
    return STRATEGY_KINDS[spec.kind](application, architecture, seed, spec.options)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _anytime_recorder(config: Dict[str, Any]):
    """A periodic incumbent-snapshot ``on_step`` hook.

    Returns ``(snapshots, on_step)``; the hook appends
    ``{iteration, best_cost, current_cost, elapsed_s}`` whenever the
    iteration and/or wall-clock interval elapses.  The ``_s`` suffix
    keeps the wall-clock field inside the telemetry determinism
    contract (``strip_times`` drops ``*_s`` keys).
    """
    import time

    snapshots: List[Dict[str, Any]] = []
    interval_iterations = config.get("interval_iterations")
    interval_s = config.get("interval_s")
    started = time.perf_counter()
    state = {
        "next_iteration": interval_iterations or 0,
        "next_elapsed": interval_s or 0.0,
    }

    def on_step(step) -> None:
        due = interval_iterations is not None and (
            step.iteration >= state["next_iteration"]
        )
        elapsed = None
        if not due:
            if interval_s is None:
                return
            elapsed = time.perf_counter() - started
            if elapsed < state["next_elapsed"]:
                return
        if elapsed is None:
            elapsed = time.perf_counter() - started
        snapshots.append({
            "iteration": step.iteration,
            "best_cost": step.best_cost,
            "current_cost": step.current_cost,
            "elapsed_s": elapsed,
        })
        if interval_iterations is not None:
            state["next_iteration"] = step.iteration + interval_iterations
        if interval_s is not None:
            state["next_elapsed"] = elapsed + interval_s

    return snapshots, on_step


def _execute_job(payload: Tuple[int, SearchJob]) -> Tuple[int, SearchResult]:
    """Worker entry point (top-level, hence spawn-picklable).

    When the job carries a telemetry config, the worker runs with its
    own private recorder and ships the exported stream back inside
    ``result.extras["telemetry"]`` — the parent absorbs the streams in
    submission-index order, so the merged stream is deterministic no
    matter how many workers raced.  An ``anytime`` config likewise runs
    worker-side: the snapshots travel back in
    ``result.extras["anytime"]``.
    """
    index, job = payload
    application, architecture = job.instance.build()
    strategy = build_strategy(job.strategy, application, architecture, job.seed)
    recorder = None
    if job.telemetry is not None:
        from repro.obs.telemetry import Telemetry

        recorder = Telemetry(label=job.strategy.kind, **job.telemetry)
        strategy.telemetry = recorder
    on_step = None
    snapshots = None
    if job.anytime is not None:
        snapshots, on_step = _anytime_recorder(job.anytime)
    result = strategy.search(job.initial, budget=job.budget, on_step=on_step)
    if snapshots is not None:
        result.extras["anytime"] = {
            "snapshots": snapshots,
            "interval_iterations": job.anytime.get("interval_iterations"),
            "interval_s": job.anytime.get("interval_s"),
        }
        if snapshots and recorder is not None and recorder.enabled:
            recorder.count("anytime_snapshot", len(snapshots))
    if recorder is not None:
        result.extras["telemetry"] = recorder.export()
    return index, result


def _isolate(job: SearchJob) -> SearchJob:
    """A private copy of the job's whole object graph — exactly what a
    worker process would receive, so inline (``jobs=1``) execution and
    pooled execution see identical inputs."""
    return pickle.loads(pickle.dumps(job))


def best_evaluation_of(result: SearchResult) -> Evaluation:
    """Full evaluation of a result's best solution.

    Reuses the evaluation the strategy already computed
    (``extras["best_evaluation"]``) when present; otherwise — e.g. for
    checkpoint-resumed results, whose extras are not persisted —
    recomputes it from the solution's own application/architecture with
    the reference engine.  Both paths are bit-identical (engine parity
    is enforced bitwise by the test suite).
    """
    cached = result.best_evaluation
    if cached is not None:
        return cached
    solution = result.best_solution
    if solution is None:
        raise ConfigurationError("result carries no best solution")
    evaluator = Evaluator(
        solution.application, solution.architecture, engine="full"
    )
    return evaluator.evaluate(solution)


# ----------------------------------------------------------------------
# checkpointing
# ----------------------------------------------------------------------
def _checkpoint_row(index: int, job: SearchJob, result: SearchResult) -> str:
    from repro.io import solution_to_dict

    row = {
        "index": index,
        "kind": job.strategy.kind,
        "spec": job.strategy.fingerprint(),
        "seed": job.seed,
        "tag": job.tag,
        "strategy": result.strategy,
        "best_cost": result.best_cost,
        "final_cost": result.final_cost,
        "iterations_run": result.iterations_run,
        "runtime_s": result.runtime_s,
        "evaluations": result.evaluations,
        "history": result.history,
        "solution": solution_to_dict(result.best_solution),
    }
    return json.dumps(row)


def _load_checkpoint(path: str) -> Dict[int, Dict[str, Any]]:
    rows: Dict[int, Dict[str, Any]] = {}
    if not os.path.exists(path):
        return rows
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail write from an interrupted run
            rows[row["index"]] = row
    return rows


def _restore_result(row: Dict[str, Any], job: SearchJob) -> Optional[SearchResult]:
    """Rebuild a SearchResult from a checkpoint row, or ``None`` when
    the row does not match the job (stale checkpoint).

    A row matches only if kind, seed, the full strategy-options
    fingerprint AND the tag agree — re-running a batch with changed
    knobs (more iterations, a different lambda rate, ...) must
    recompute, never silently reuse old numbers."""
    from repro.io import solution_from_dict

    if (
        row.get("kind") != job.strategy.kind
        or row.get("seed") != job.seed
        or row.get("spec") != job.strategy.fingerprint()
        or row.get("tag") != json.loads(json.dumps(job.tag))
    ):
        return None
    try:
        application, architecture = _isolate(job).instance.build()
        solution = solution_from_dict(row["solution"], application, architecture)
    except Exception:
        return None
    return SearchResult(
        best_solution=solution,
        best_cost=row["best_cost"],
        strategy=row.get("strategy", job.strategy.kind),
        final_cost=row.get("final_cost", row["best_cost"]),
        iterations_run=row.get("iterations_run", 0),
        runtime_s=row.get("runtime_s", 0.0),
        seed=job.seed,
        evaluations=row.get("evaluations", 0),
        history=list(row.get("history", [])),
    )


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
def run_search_jobs(
    job_list: Sequence[SearchJob],
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
    base_seed: int = 0,
    start_method: str = "spawn",
    telemetry=None,
) -> List[JobOutcome]:
    """Execute a batch of search jobs, ``jobs`` processes at a time.

    Results come back in submission order and are bit-identical whether
    ``jobs`` is 1 (inline) or N (worker pool) — every job is seeded,
    isolated, and deterministic.  Jobs whose ``seed`` is ``None`` get a
    ``SeedSequence``-derived seed from ``base_seed`` and their position,
    so the seeding is also independent of ``jobs``.

    ``checkpoint_path`` (JSONL, append-only) makes the batch resumable:
    finished jobs found there are reloaded instead of re-run.

    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`) gives every
    job its own worker-side recorder; the per-job streams are merged
    into the given recorder in submission-index order once all jobs have
    finished, so the merged stream (minus timestamps) is byte-identical
    across ``jobs=N``.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    sealed: List[SearchJob] = []
    derived = derive_seeds(base_seed, len(job_list))
    job_telemetry = (
        telemetry.job_config() if telemetry is not None else None
    )
    for position, job in enumerate(job_list):
        job.strategy.validate()
        if job.seed is None:
            job = dataclasses.replace(job, seed=derived[position])
        if job_telemetry is not None and job.telemetry is None:
            job = dataclasses.replace(job, telemetry=job_telemetry)
        sealed.append(job)

    outcomes: Dict[int, JobOutcome] = {}
    pending: List[int] = []
    checkpoint_rows = (
        _load_checkpoint(checkpoint_path) if checkpoint_path else {}
    )
    for index, job in enumerate(sealed):
        row = checkpoint_rows.get(index)
        restored = _restore_result(row, job) if row is not None else None
        if restored is not None:
            outcomes[index] = JobOutcome(
                index=index, tag=job.tag, seed=job.seed,
                result=restored, from_checkpoint=True,
            )
        else:
            pending.append(index)

    checkpoint_handle = None
    if checkpoint_path and pending:
        checkpoint_handle = open(checkpoint_path, "a")

    def record(index: int, result: SearchResult) -> None:
        job = sealed[index]
        outcomes[index] = JobOutcome(
            index=index, tag=job.tag, seed=job.seed, result=result
        )
        if checkpoint_handle is not None:
            checkpoint_handle.write(_checkpoint_row(index, job, result) + "\n")
            checkpoint_handle.flush()

    try:
        if jobs == 1 or len(pending) <= 1:
            for index in pending:
                _, result = _execute_job((index, _isolate(sealed[index])))
                record(index, result)
        else:
            import multiprocessing

            context = multiprocessing.get_context(start_method)
            workers = min(jobs, len(pending))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            ) as pool:
                futures = {
                    pool.submit(_execute_job, (index, sealed[index]))
                    for index in pending
                }
                while futures:
                    done, futures = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, result = future.result()
                        record(index, result)
    finally:
        if checkpoint_handle is not None:
            checkpoint_handle.close()

    ordered = [outcomes[index] for index in range(len(sealed))]
    if telemetry is not None:
        # Deterministic merge: always in submission-index order, after
        # every job has finished, regardless of worker completion order.
        for outcome in ordered:
            payload = outcome.result.extras.pop("telemetry", None)
            if outcome.from_checkpoint and telemetry.enabled:
                telemetry.event(
                    "job_restored",
                    job=outcome.index,
                    tag=outcome.tag,
                    seed=outcome.seed,
                    kind=sealed[outcome.index].strategy.kind,
                )
            telemetry.absorb(outcome.index, outcome.tag, payload)
    return ordered
