"""Unified search subsystem: one strategy vocabulary, one runner.

Every optimizer in this library — the paper's adaptive simulated
annealing and the four baselines it is compared against — implements the
same :class:`~repro.search.strategy.SearchStrategy` protocol: give it an
(optional) initial solution, it returns a
:class:`~repro.search.strategy.SearchResult` with the best solution and
cost, a monotone best-so-far history, the iteration count, the runtime
and per-strategy extras.  Budgets (iterations / wall-clock / stall) are
expressed once through :class:`~repro.search.strategy.SearchBudget`, and
a step callback exposes every iteration to tracing tools.

On top of that sits :mod:`repro.search.runner`: a batch of
``(strategy-spec, instance, seed)`` jobs executed across worker
processes with spawn-safe job specs, ``SeedSequence``-derived per-job
seeds and an optional JSONL checkpoint so long sweeps can resume.
Parallel results are bit-identical to sequential ones for fixed seeds.
:mod:`repro.search.portfolio` races several strategies on one instance
and reports the winner.
"""

from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStep,
    SearchStrategy,
    SearchTracker,
)
from repro.search.runner import (
    InstanceSpec,
    JobOutcome,
    SearchJob,
    StrategySpec,
    STRATEGY_KINDS,
    best_evaluation_of,
    build_strategy,
    derive_seeds,
    run_search_jobs,
)
from repro.search.portfolio import PortfolioEntry, format_portfolio_table, run_portfolio

__all__ = [
    "SearchBudget",
    "SearchResult",
    "SearchStep",
    "SearchStrategy",
    "SearchTracker",
    "InstanceSpec",
    "JobOutcome",
    "SearchJob",
    "StrategySpec",
    "STRATEGY_KINDS",
    "best_evaluation_of",
    "build_strategy",
    "derive_seeds",
    "run_search_jobs",
    "PortfolioEntry",
    "format_portfolio_table",
    "run_portfolio",
]
