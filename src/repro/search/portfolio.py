"""Strategy portfolio: race every searcher on one instance.

The paper argues its adaptive annealer needs no tuning; the cheapest way
to test that claim on a *new* instance is to race every strategy kind
under one evaluation budget and look at the scoreboard.  The portfolio
gives each strategy a seed derived from one base seed, fans the runs out
through the parallel runner, and reports the winner.

Budgets are normalized by evaluation count, not loop iterations: tabu
probes ``candidates_per_iteration`` moves per iteration and the GA
scores whole populations, so their loop counts are scaled down to match
the annealer's single-evaluation iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.arch.architecture import Architecture
from repro.errors import ConfigurationError
from repro.mapping.evaluator import Evaluation
from repro.model.application import Application
from repro.search.runner import (
    InstanceSpec,
    SearchJob,
    StrategySpec,
    best_evaluation_of,
    derive_seeds,
    run_search_jobs,
)
from repro.search.strategy import SearchResult

#: Default racers, in scoreboard tie-break order.  New kinds append at
#: the end: seeds are dealt by position, so insertion in the middle
#: would re-deal every later strategy's seed.
PORTFOLIO_KINDS = ("sa", "tabu", "hill_climber", "ga", "random", "tempering")

_TABU_CANDIDATES = 6
_GA_POPULATION = 50
_RANDOM_FRACTION = 10  # evaluations per random sample vs per SA iteration
_TEMPERING_CHAINS = 4


@dataclass
class PortfolioEntry:
    """One strategy's run in the race."""

    kind: str
    seed: int
    result: SearchResult
    evaluation: Evaluation

    @property
    def best_cost(self) -> float:
        return self.result.best_cost


def _portfolio_specs(
    kinds: Sequence[str],
    iterations: int,
    engine: str,
    warmup_iterations: Optional[int] = None,
) -> List[StrategySpec]:
    from repro.sa.annealer import default_warmup

    if warmup_iterations is None:
        warmup_iterations = default_warmup(iterations)
    specs = []
    for kind in kinds:
        if kind == "sa":
            options = {
                "iterations": iterations,
                "warmup_iterations": min(
                    warmup_iterations, max(0, iterations - 1)
                ),
                "engine": engine,
            }
        elif kind == "tabu":
            options = {
                "iterations": max(1, iterations // _TABU_CANDIDATES),
                "candidates_per_iteration": _TABU_CANDIDATES,
                "engine": engine,
            }
        elif kind == "hill_climber":
            options = {"iterations": iterations, "engine": engine}
        elif kind == "ga":
            options = {
                "population_size": _GA_POPULATION,
                "generations": max(1, iterations // _GA_POPULATION),
                "engine": engine,
            }
        elif kind == "random":
            options = {
                "samples": max(1, iterations // _RANDOM_FRACTION),
                "engine": engine,
            }
        elif kind == "tempering":
            # K chains score K moves per round, so the round budget is
            # iterations / K to stay evaluation-normalized with SA.
            rounds = max(1, iterations // _TEMPERING_CHAINS)
            options = {
                "chains": _TEMPERING_CHAINS,
                "iterations": rounds,
                "warmup_iterations": min(
                    max(1, warmup_iterations // _TEMPERING_CHAINS),
                    max(0, rounds - 1),
                ),
                "engine": engine,
            }
        else:
            options = {"engine": engine}
        specs.append(StrategySpec(kind, options))
    return specs


def run_portfolio(
    application: Application,
    architecture: Optional[Architecture] = None,
    n_clbs: int = 2000,
    iterations: int = 8000,
    seed: int = 7,
    engine: str = "incremental",
    jobs: int = 1,
    kinds: Sequence[str] = PORTFOLIO_KINDS,
    checkpoint_path: Optional[str] = None,
    warmup_iterations: Optional[int] = None,
    telemetry=None,
) -> List[PortfolioEntry]:
    """Race ``kinds`` on one instance; entries sorted best-first.

    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`) collects
    every racer's event stream, merged deterministically by the runner.
    """
    if not kinds:
        raise ConfigurationError("portfolio needs at least one strategy kind")
    instance = InstanceSpec(
        application,
        architecture=architecture,
        n_clbs=None if architecture is not None else n_clbs,
    )
    specs = _portfolio_specs(kinds, iterations, engine, warmup_iterations)
    seeds = derive_seeds(seed, len(specs))
    job_list = [
        SearchJob(spec, instance, seed=s, tag=spec.kind)
        for spec, s in zip(specs, seeds)
    ]
    outcomes = run_search_jobs(
        job_list, jobs=jobs, checkpoint_path=checkpoint_path,
        telemetry=telemetry,
    )
    entries = [
        PortfolioEntry(
            kind=outcome.tag,
            seed=outcome.seed,
            result=outcome.result,
            evaluation=best_evaluation_of(outcome.result),
        )
        for outcome in outcomes
    ]
    order = {kind: rank for rank, kind in enumerate(kinds)}
    entries.sort(key=lambda e: (e.best_cost, order[e.kind]))
    return entries


def format_portfolio_table(
    entries: Sequence[PortfolioEntry], deadline_ms: Optional[float] = None
) -> str:
    lines = [
        "Strategy portfolio (one instance, evaluation-normalized budgets)",
        f"{'strategy':<14} {'best (ms)':>10} {'contexts':>9} {'evals':>8} "
        f"{'iters':>8} {'time (s)':>9}",
    ]
    for entry in entries:
        lines.append(
            f"{entry.kind:<14} {entry.best_cost:>10.2f} "
            f"{entry.evaluation.num_contexts:>9} {entry.result.evaluations:>8} "
            f"{entry.result.iterations_run:>8} {entry.result.runtime_s:>9.2f}"
        )
    winner = entries[0]
    lines.append(f"winner: {winner.kind} at {winner.best_cost:.2f} ms")
    if deadline_ms is not None:
        lines.append(
            f"deadline {deadline_ms:.0f} ms met: "
            f"{winner.best_cost <= deadline_ms}"
        )
    return "\n".join(lines)
