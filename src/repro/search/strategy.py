"""The strategy layer: one vocabulary for every searcher.

Before this module existed, the annealer, hill climber, tabu search,
genetic partitioner and random search each reimplemented the same
draw/evaluate/accept/track loop behind incompatible config and result
types.  Now they share:

* :class:`SearchBudget` — iteration, wall-clock and stall limits;
* :class:`SearchResult` — best solution + cost, monotone best-so-far
  ``history``, iteration count, runtime, and per-strategy ``extras``;
* :class:`SearchTracker` — the best/history/stall/wall-clock bookkeeping
  every loop needs, maintained in place so results stay *anytime*
  (interrupt the strategy and the tracker's result is consistent);
* :class:`SearchStrategy` — the protocol itself: ``search(initial)``.

The per-iteration step hook (:class:`SearchStep` passed to ``on_step``)
is how tracing and progress UIs observe a run without the strategy
knowing about them.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.mapping.solution import Solution
from repro.obs.telemetry import NULL


@dataclass(frozen=True)
class SearchBudget:
    """Uniform stopping criteria: whichever limit trips first wins.

    ``iterations`` counts the strategy's natural unit (move draws for
    the neighborhood searchers, generations for the GA, samples for
    random search).  ``time_limit_s`` is wall-clock; ``stall_limit``
    stops after that many consecutive non-improving steps.  ``None``
    disables a limit.
    """

    iterations: Optional[int] = None
    time_limit_s: Optional[float] = None
    stall_limit: Optional[int] = None

    def validate(self) -> None:
        if self.iterations is not None and self.iterations < 1:
            raise ConfigurationError("budget iterations must be >= 1")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ConfigurationError("budget time_limit_s must be > 0")
        if self.stall_limit is not None and self.stall_limit < 1:
            raise ConfigurationError("budget stall_limit must be >= 1")

    def resolve_iterations(self, default: int) -> int:
        """The iteration budget, falling back to a strategy default."""
        return default if self.iterations is None else self.iterations


@dataclass(frozen=True)
class SearchStep:
    """One iteration as seen by the step callback."""

    iteration: int
    current_cost: float
    best_cost: float
    accepted: bool
    move_name: str = ""


StepCallback = Callable[[SearchStep], None]


@dataclass
class SearchResult:
    """The single result vocabulary shared by every strategy.

    ``iterations_run`` counts the strategy's natural iteration unit
    (exposed through the :attr:`samples` / :attr:`generations_run`
    aliases for the strategies whose historical APIs used those names).
    ``history`` is the best-so-far cost after each iteration (monotone
    non-increasing); strategies may disable it for bulk sweeps.
    ``extras`` carries per-strategy payloads (SA's ``trace`` and
    ``move_stats`` mirror the dedicated fields; the GA stores its
    ``best_evaluation``).
    """

    best_solution: Optional[Solution] = None
    best_cost: float = math.inf
    strategy: str = ""
    final_cost: float = math.inf
    iterations_run: int = 0
    runtime_s: float = 0.0
    seed: Optional[int] = None
    evaluations: int = 0
    history: List[float] = field(default_factory=list)
    trace: List[Any] = field(default_factory=list)
    move_stats: Optional[Any] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- historical aliases -------------------------------------------
    @property
    def samples(self) -> int:
        """Random search's historical name for ``iterations_run``."""
        return self.iterations_run

    @property
    def generations_run(self) -> int:
        """The GA's historical name for ``iterations_run``."""
        return self.iterations_run

    @property
    def best_evaluation(self) -> Any:
        """Full :class:`~repro.mapping.engine.Evaluation` of the best
        solution, when the strategy computed one (``extras``)."""
        return self.extras.get("best_evaluation")

    @property
    def accept_ratio(self) -> float:
        """Accepted / proposed moves (0.0 without move statistics)."""
        stats = self.move_stats
        if stats is None:
            return 0.0
        accepted = sum(stats.accepted.values())
        proposed = sum(stats.proposed.values())
        return accepted / proposed if proposed else 0.0


class SearchTracker:
    """Shared loop bookkeeping: best/so-far, history, stall, wall clock.

    The tracker owns a :class:`SearchResult` that it updates *in place*
    on every :meth:`observe`, which is what makes every ported strategy
    anytime: interrupting the loop leaves ``tracker.result`` consistent
    (``best_solution`` is copied on improvement).
    """

    def __init__(
        self,
        strategy: str,
        budget: Optional[SearchBudget] = None,
        seed: Optional[int] = None,
        on_step: Optional[StepCallback] = None,
        keep_history: bool = True,
        telemetry=None,
    ) -> None:
        self.budget = budget if budget is not None else SearchBudget()
        self.budget.validate()
        self.on_step = on_step
        self.keep_history = keep_history
        #: Telemetry recorder (:data:`repro.obs.telemetry.NULL` when
        #: disabled).  Hot-path emissions are guarded by ``.enabled`` so
        #: the disabled case does no payload construction at all.
        self.telemetry = telemetry if telemetry is not None else NULL
        self.result = SearchResult(strategy=strategy, seed=seed)
        self.stall = 0
        self._started = time.perf_counter()

    # ------------------------------------------------------------------
    def begin(self, cost: Optional[float] = None,
              solution: Optional[Solution] = None) -> None:
        """Record the initial state (omit ``cost`` for strategies with
        no meaningful initial solution, e.g. random sampling).

        The wall clock starts at tracker *construction*, so work a
        strategy does before ``begin`` (e.g. scoring a GA's initial
        population) counts toward ``runtime_s``.
        """
        if cost is not None:
            self.result.best_cost = cost
            self.result.final_cost = cost
            if solution is not None:
                self.result.best_solution = solution.copy()
            if self.keep_history:
                self.result.history.append(cost)
        tele = self.telemetry
        if tele.enabled:
            tele.event(
                "search_begin",
                strategy=self.result.strategy,
                seed=self.result.seed,
                iterations=self.budget.iterations,
                initial_cost=cost,
            )

    def observe(
        self,
        iteration: int,
        cost: float,
        solution: Optional[Solution] = None,
        accepted: bool = True,
        move_name: str = "",
        copy: bool = True,
        stall_eligible: bool = True,
    ) -> bool:
        """Fold one iteration into the running result.

        Returns ``True`` when ``cost`` improves on the best so far (the
        solution, if given, is then captured — copied unless the caller
        hands over ownership with ``copy=False``).  ``stall_eligible``
        lets strategies exclude iterations that carry no progress
        information (SA's warmup and infeasible draws) from stall
        counting.
        """
        result = self.result
        result.iterations_run = iteration
        result.final_cost = cost
        result.runtime_s = time.perf_counter() - self._started
        improved = cost < result.best_cost
        if improved:
            result.best_cost = cost
            if solution is not None:
                result.best_solution = solution.copy() if copy else solution
            self.stall = 0
        elif stall_eligible:
            self.stall += 1
        if self.keep_history:
            result.history.append(result.best_cost)
        if self.on_step is not None:
            self.on_step(SearchStep(
                iteration=iteration,
                current_cost=cost,
                best_cost=result.best_cost,
                accepted=accepted,
                move_name=move_name,
            ))
        tele = self.telemetry
        if tele.enabled:
            tele.count("iterations")
            if accepted:
                tele.count("accepted_moves")
            if improved:
                tele.count("improvements")
            interval = tele.step_interval
            if interval and iteration % interval == 0:
                tele.event(
                    "step",
                    iteration=iteration,
                    cost=cost,
                    best_cost=result.best_cost,
                    accepted=accepted,
                    move=move_name,
                )
        return improved

    def exhausted(self) -> bool:
        """True once the wall-clock or stall budget has tripped (the
        iteration budget is the caller's loop range)."""
        budget = self.budget
        if budget.stall_limit is not None and self.stall >= budget.stall_limit:
            return True
        if (
            budget.time_limit_s is not None
            and time.perf_counter() - self._started >= budget.time_limit_s
        ):
            return True
        return False

    def finish(
        self,
        best_solution: Optional[Solution] = None,
        evaluations: Optional[int] = None,
        **extras: Any,
    ) -> SearchResult:
        """Seal the result (final runtime, optional late-bound fields)."""
        result = self.result
        result.runtime_s = time.perf_counter() - self._started
        if best_solution is not None:
            result.best_solution = best_solution
        if evaluations is not None:
            result.evaluations = evaluations
        result.extras.update(extras)
        tele = self.telemetry
        if tele.enabled:
            tele.count("evaluations", result.evaluations)
            tele.event(
                "search_end",
                strategy=result.strategy,
                seed=result.seed,
                best_cost=result.best_cost,
                final_cost=result.final_cost,
                iterations=result.iterations_run,
                evaluations=result.evaluations,
                runtime_s=result.runtime_s,
            )
        return result

    # ------------------------------------------------------------------
    def record_trace(self, record: Any) -> None:
        """Append one Fig. 2-style :class:`~repro.sa.trace.TraceRecord`
        to ``result.trace`` — the shared trace path used by both
        annealing strategies (``--trace-csv`` reads ``result.trace``)."""
        self.result.trace.append(record)

    def record_engine(self, source: Any) -> None:
        """Sample an engine's / evaluator's internal counters into the
        telemetry recorder (prefix ``engine.``); a no-op when telemetry
        is disabled or ``source`` exposes no counters."""
        tele = self.telemetry
        if not tele.enabled or source is None:
            return
        counters = getattr(source, "telemetry_counters", None)
        if counters is not None:
            tele.counts(counters(), prefix="engine.")


class SearchStrategy(abc.ABC):
    """The protocol every searcher implements.

    ``search(initial)`` runs the strategy to completion (or budget
    exhaustion) and returns a :class:`SearchResult`.  ``initial`` may be
    ``None``: neighborhood strategies then draw a seeded random initial
    solution; population/sampling strategies that generate their own
    starting points ignore it.
    """

    #: Stable identifier, also the ``StrategySpec.kind`` registry key.
    name: ClassVar[str] = "?"

    #: Telemetry recorder the strategy feeds (class default: the shared
    #: disabled singleton).  The runner assigns a per-job recorder on
    #: the built instance before calling :meth:`search`; strategies pass
    #: it to their :class:`SearchTracker`.
    telemetry = NULL

    @abc.abstractmethod
    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        """Run the search and return the unified result."""
