"""Shared communication medium between processor and hardware.

Paper section 3.2: processor and RC communicate through a shared memory
connected to each by a bus; the transfer time of edge ``e_ij`` is
estimated from the data size ``q_ij`` and the bus rate ``D``, and the
communications are "statically evaluated as ordered transactions" — the
solution fixes a total order of the transfers on the medium.
"""

from __future__ import annotations

from repro.errors import ArchitectureError


class Bus:
    """A shared bus with a fixed transfer rate and per-transfer latency.

    Parameters
    ----------
    rate_kbytes_per_ms:
        Sustained throughput ``D``.  The default (50 KB/ms = 50 MB/s)
        is representative of the AMBA AHB-class interconnect of the
        paper's ARM922 + Virtex-E platform.
    latency_ms:
        Fixed arbitration/setup latency added to every transaction.
    """

    def __init__(
        self,
        name: str = "shared_bus",
        rate_kbytes_per_ms: float = 50.0,
        latency_ms: float = 0.0,
    ) -> None:
        if not name:
            raise ArchitectureError("bus name must be non-empty")
        if rate_kbytes_per_ms <= 0:
            raise ArchitectureError("bus rate must be > 0")
        if latency_ms < 0:
            raise ArchitectureError("bus latency must be >= 0")
        self.name = name
        self.rate_kbytes_per_ms = rate_kbytes_per_ms
        self.latency_ms = latency_ms

    def transfer_time_ms(self, data_kbytes: float) -> float:
        """Time ``t_ij`` to move ``q_ij`` kilobytes over the bus."""
        if data_kbytes < 0:
            raise ArchitectureError("data_kbytes must be >= 0")
        if data_kbytes == 0:
            return 0.0
        return self.latency_ms + data_kbytes / self.rate_kbytes_per_ms

    def __repr__(self) -> str:
        return (
            f"Bus({self.name!r}, rate={self.rate_kbytes_per_ms} KB/ms, "
            f"latency={self.latency_ms} ms)"
        )
