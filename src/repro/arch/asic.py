"""Dedicated hardware (ASIC): maximal parallelism, partial order."""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

from repro.arch.resource import OrderKind, Resource
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapping.solution import Solution


class Asic(Resource):
    """An application-specific circuit dedicated to its assigned tasks.

    Paper section 3.3: "the computations for several tasks could be
    performed with maximal parallelism on an ASIC dedicated to these
    computations" — so an ASIC contributes **no** sequentialization
    edges; only the precedence graph orders its tasks.

    Tasks execute with their selected hardware implementation's time
    (an ASIC is modelled as hard-wired FPGA logic without the
    reconfiguration cost).  The monetary cost should reflect NRE, which
    is why architecture exploration rarely picks ASICs for small gains.
    """

    @property
    def order_kind(self) -> OrderKind:
        return OrderKind.PARTIAL

    def execution_time_ms(self, solution: "Solution", task_index: int) -> float:
        task = solution.application.task(task_index)
        if not task.hardware_capable:
            raise ModelError(
                f"task {task.name!r} has no hardware implementation; "
                f"it cannot run on ASIC {self.name!r}"
            )
        return task.implementation(solution.implementation_choice(task_index)).time_ms

    def sequentialization_edges(
        self, solution: "Solution"
    ) -> List[Tuple[object, object, float]]:
        """An ASIC imposes no order beyond the precedence graph."""
        return []
