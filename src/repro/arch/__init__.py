"""Architecture model: resources, the reconfigurable circuit, the bus.

Mirrors the paper's object model (section 3.3): an abstract, polymorphic
``Resource`` class whose subclasses impose different execution orders on
the tasks assigned to them —

* :class:`Processor` — **total** order (sequential software execution);
* :class:`Asic` — **partial** order (maximal parallelism);
* :class:`ReconfigurableCircuit` — **globally total, locally partial**
  (GTLP) order: an ordered list of contexts, each context executing its
  tasks with the parallelism permitted by the precedence graph.

Each subclass contributes its sequentialization edges to the search
graph through :meth:`Resource.sequentialization_edges` — the library's
rendition of the paper's abstract ``PE.schedule(Vs, Vd)`` method.
"""

from repro.arch.resource import Resource, OrderKind
from repro.arch.processor import Processor
from repro.arch.asic import Asic
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.arch.bus import Bus
from repro.arch.architecture import Architecture, epicure_architecture

__all__ = [
    "Resource",
    "OrderKind",
    "Processor",
    "Asic",
    "ReconfigurableCircuit",
    "Bus",
    "Architecture",
    "epicure_architecture",
]
