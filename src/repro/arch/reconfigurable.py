"""Dynamically reconfigurable logic circuit (DRLC) and its contexts.

Paper section 3.3: an object of Reconfigurable type contains the ordered
list of its contexts ``Lc = [C1 .. Ck]``, the reconfiguration time per
CLB ``tR`` and the total CLB capacity ``NCLB``.  A context is itself a
resource; it knows its initial nodes (all immediate predecessors outside
the context), terminal nodes (all immediate successors outside), and the
number of CLBs it uses.

The DRLC imposes a *globally total, locally partial* (GTLP) order:
contexts execute strictly one after another — separated by a partial
reconfiguration whose duration is ``tR * nCLB(next context)`` — while
tasks inside a context run with full precedence-graph parallelism.

Because an actual context's membership is part of a candidate solution,
the context *objects* live in :class:`repro.mapping.solution.Solution`;
this module provides their behavior.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TYPE_CHECKING

from repro.arch.resource import OrderKind, Resource
from repro.errors import ArchitectureError, ModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapping.solution import Solution

#: Virtual search-graph node representing the initial configuration of
#: the first context of RC ``name``:  ``(CONFIG_NODE, name)``.
CONFIG_NODE = "__config__"


class ReconfigurableCircuit(Resource):
    """A partially reconfigurable FPGA-like device.

    Parameters
    ----------
    n_clbs:
        Device capacity ``NCLB`` in combinational logic blocks.
    reconfig_ms_per_clb:
        Partial reconfiguration time ``tR`` per CLB, in milliseconds
        (the paper's Virtex-E figure is 22.5 us = 0.0225 ms).
    partial_reconfiguration:
        True (default, the paper's model): loading a context costs
        ``tR × nCLB(context)``.  False models a full-reconfiguration
        device (as assumed by e.g. Chatha & Vemuri [5], discussed in
        the paper's related work): *every* context switch reprograms
        the whole fabric, ``tR × NCLB`` — the ablation in
        ``benchmarks/bench_ablation_reconfig.py`` quantifies the gap.
    """

    def __init__(
        self,
        name: str,
        n_clbs: int,
        reconfig_ms_per_clb: float = 0.0225,
        monetary_cost: float = 2.0,
        partial_reconfiguration: bool = True,
    ) -> None:
        super().__init__(name, monetary_cost)
        if n_clbs <= 0:
            raise ArchitectureError(f"DRLC {name!r}: n_clbs must be > 0")
        if reconfig_ms_per_clb < 0:
            raise ArchitectureError(f"DRLC {name!r}: tR must be >= 0")
        self.n_clbs = n_clbs
        self.reconfig_ms_per_clb = reconfig_ms_per_clb
        self.partial_reconfiguration = partial_reconfiguration

    @property
    def order_kind(self) -> OrderKind:
        return OrderKind.GTLP

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def execution_time_ms(self, solution: "Solution", task_index: int) -> float:
        task = solution.application.task(task_index)
        if not task.hardware_capable:
            raise ModelError(
                f"task {task.name!r} has no hardware implementation; "
                f"it cannot run on DRLC {self.name!r}"
            )
        return task.implementation(solution.implementation_choice(task_index)).time_ms

    def reconfiguration_time_ms(self, n_clbs_used: int) -> float:
        """Time to load a context using ``n_clbs_used`` CLBs.

        Partial devices pay per configured CLB; full-reconfiguration
        devices pay the whole fabric on every switch.
        """
        if n_clbs_used < 0:
            raise ArchitectureError("n_clbs_used must be >= 0")
        if not self.partial_reconfiguration and n_clbs_used > 0:
            return self.reconfig_ms_per_clb * self.n_clbs
        return self.reconfig_ms_per_clb * n_clbs_used

    def fits(self, n_clbs_used: int, extra_clbs: int) -> bool:
        """Capacity test used by move realization (section 4.3): a new
        context is spawned when ``nCLB(context) + C(vs) > NCLB``."""
        return n_clbs_used + extra_clbs <= self.n_clbs

    # ------------------------------------------------------------------
    # search-graph contribution
    # ------------------------------------------------------------------
    def config_node(self) -> Tuple[str, str]:
        """Virtual node carrying the initial configuration delay."""
        return (CONFIG_NODE, self.name)

    def virtual_nodes(self, solution: "Solution") -> List[Tuple[object, float]]:
        """Virtual nodes (id, duration) this resource adds to the graph.

        One node: the initial configuration of the first context, with
        duration ``tR * nCLB(C1)`` — the "initial reconfiguration time"
        plotted in the paper's Fig. 3.  No node when the DRLC is unused.
        """
        contexts = solution.contexts(self.name)
        if not contexts:
            return []
        first_clbs = solution.context_clbs(self.name, 0)
        return [(self.config_node(), self.reconfiguration_time_ms(first_clbs))]

    def sequentialization_edges(
        self, solution: "Solution"
    ) -> List[Tuple[object, object, float]]:
        """Context sequentialization edges ``Ehw`` plus the initial
        configuration edges.

        * ``config -> i`` for each initial node ``i`` of C1 (weight 0;
          the delay sits on the virtual node's duration);
        * ``t -> i`` for each terminal node ``t`` of context ``k`` and
          initial node ``i`` of context ``k+1``, weighted
          ``tR * nCLB(C_{k+1})`` (paper: the weight depends linearly on
          the number of CLBs reconfigured for the *following* context).
        """
        contexts = solution.contexts(self.name)
        if not contexts:
            return []
        edges: List[Tuple[object, object, float]] = []
        config = self.config_node()
        for node in solution.context_initial_nodes(self.name, 0):
            edges.append((config, node, 0.0))
        for k in range(len(contexts) - 1):
            terminals = solution.context_terminal_nodes(self.name, k)
            initials = solution.context_initial_nodes(self.name, k + 1)
            weight = self.reconfiguration_time_ms(
                solution.context_clbs(self.name, k + 1)
            )
            for t in terminals:
                for i in initials:
                    edges.append((t, i, weight))
        return edges

    # ------------------------------------------------------------------
    # reporting helpers (Fig. 3 decomposition)
    # ------------------------------------------------------------------
    def initial_reconfiguration_ms(self, solution: "Solution") -> float:
        contexts = solution.contexts(self.name)
        if not contexts:
            return 0.0
        return self.reconfiguration_time_ms(solution.context_clbs(self.name, 0))

    def dynamic_reconfiguration_ms(self, solution: "Solution") -> float:
        contexts = solution.contexts(self.name)
        return sum(
            self.reconfiguration_time_ms(solution.context_clbs(self.name, k))
            for k in range(1, len(contexts))
        )
