"""The target architecture: a set of resources plus the shared bus.

The paper's experiments fix the architecture to one ARM922-class
processor and one Virtex-E-class reconfigurable circuit (section 3.2),
but the method itself explores resource sets through moves m3/m4; this
container therefore supports adding and removing resources at run time,
and carries a catalog of resource *templates* the creation move can
instantiate.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.arch.resource import Resource
from repro.errors import ArchitectureError

ResourceFactory = Callable[[str], Resource]


class Architecture:
    """A mutable set of named resources communicating over one bus."""

    def __init__(self, name: str, bus: Optional[Bus] = None) -> None:
        if not name:
            raise ArchitectureError("architecture name must be non-empty")
        self.name = name
        self.bus = bus if bus is not None else Bus()
        self._resources: Dict[str, Resource] = {}
        #: Templates instantiable by the resource-creation move (m4).
        self.catalog: List[ResourceFactory] = []
        self._fresh_counter = 0

    # ------------------------------------------------------------------
    # resource management
    # ------------------------------------------------------------------
    def add_resource(self, resource: Resource) -> Resource:
        if resource.name in self._resources:
            raise ArchitectureError(f"duplicate resource name {resource.name!r}")
        self._resources[resource.name] = resource
        return resource

    def remove_resource(self, name: str) -> Resource:
        try:
            return self._resources.pop(name)
        except KeyError:
            raise ArchitectureError(f"no resource named {name!r}") from None

    def resource(self, name: str) -> Resource:
        try:
            return self._resources[name]
        except KeyError:
            raise ArchitectureError(f"no resource named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._resources

    def __len__(self) -> int:
        return len(self._resources)

    def resources(self) -> Iterator[Resource]:
        return iter(self._resources.values())

    def resource_names(self) -> List[str]:
        return list(self._resources)

    def processors(self) -> List[Processor]:
        return [r for r in self._resources.values() if isinstance(r, Processor)]

    def reconfigurable_circuits(self) -> List[ReconfigurableCircuit]:
        return [
            r for r in self._resources.values()
            if isinstance(r, ReconfigurableCircuit)
        ]

    def asics(self) -> List[Asic]:
        return [r for r in self._resources.values() if isinstance(r, Asic)]

    def fresh_name(self, prefix: str) -> str:
        """A resource name not currently in use (for move m4)."""
        while True:
            self._fresh_counter += 1
            candidate = f"{prefix}_{self._fresh_counter}"
            if candidate not in self._resources:
                return candidate

    def restore_resource_order(self, names: Sequence[str]) -> None:
        """Reorder the resource table to ``names`` (a permutation of the
        current resource names).

        Resource enumeration order is observable state: move proposal
        draws iterate it, so a move's undo must restore it exactly —
        ``remove_resource`` + ``add_resource`` alone would re-append the
        restored resource at the end.
        """
        resources = self._resources
        if set(names) != set(resources) or len(names) != len(resources):
            raise ArchitectureError(
                "restore_resource_order needs a permutation of the "
                "current resource names"
            )
        self._resources = {name: resources[name] for name in names}

    # ------------------------------------------------------------------
    # objective helpers
    # ------------------------------------------------------------------
    def snapshot(self) -> "Architecture":
        """Shallow copy: same bus and resource *objects*, independent
        resource set.  Solutions snapshot the architecture so a saved
        best mapping stays valid while m3/m4 moves keep mutating the
        live resource set."""
        clone = Architecture(self.name, bus=self.bus)
        clone._resources = dict(self._resources)
        clone.catalog = list(self.catalog)
        clone._fresh_counter = self._fresh_counter
        return clone

    def total_monetary_cost(self) -> float:
        """Sum of resource costs (architecture-exploration objective)."""
        return sum(r.monetary_cost for r in self._resources.values())

    def validate(self) -> None:
        if not self.processors():
            raise ArchitectureError(
                f"architecture {self.name!r} needs at least one processor "
                "(software-only tasks must be executable)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ", ".join(
            f"{type(r).__name__}:{r.name}" for r in self._resources.values()
        )
        return f"Architecture({self.name!r}, [{kinds}])"


def epicure_architecture(
    n_clbs: int = 2000,
    reconfig_ms_per_clb: float = 0.0225,
    bus_rate_kbytes_per_ms: float = 50.0,
) -> Architecture:
    """The paper's experimental platform: ARM922 + Virtex-E class DRLC.

    ``n_clbs`` defaults to the 2000-CLB device of the Fig. 2 run; the
    Fig. 3 sweep rebuilds this architecture for sizes 100..10000.
    """
    arch = Architecture(
        "epicure",
        bus=Bus(rate_kbytes_per_ms=bus_rate_kbytes_per_ms),
    )
    arch.add_resource(Processor("arm922", speed_factor=1.0, monetary_cost=1.0))
    arch.add_resource(
        ReconfigurableCircuit(
            "virtex",
            n_clbs=n_clbs,
            reconfig_ms_per_clb=reconfig_ms_per_clb,
            monetary_cost=2.0,
        )
    )
    arch.validate()
    return arch
