"""Abstract processing resource.

Paper section 3.3: "Class Processing Element belongs to the Resource
class of the system, which is abstract and polymorphic.  When several
tasks are assigned to the same resource, their execution order on that
resource depends on the resource type."

A resource here is a *descriptor plus behavior*: it knows its kind of
execution order and how to emit the sequentialization edges that impose
that order on a search graph.  Assignment state itself lives in
:class:`repro.mapping.solution.Solution`, so resources can be shared by
many candidate solutions without copying.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ArchitectureError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapping.solution import Solution


class OrderKind(enum.Enum):
    """The kind of execution order a resource imposes on its tasks."""

    #: Sequential execution: one total order (programmable processors).
    TOTAL = "total"
    #: Maximal parallelism: the precedence graph's order only (ASICs).
    PARTIAL = "partial"
    #: Globally total over contexts, locally partial within each (DRLCs).
    GTLP = "gtlp"


class Resource(ABC):
    """A processing element of the target architecture."""

    def __init__(self, name: str, monetary_cost: float = 0.0) -> None:
        if not name:
            raise ArchitectureError("resource name must be non-empty")
        if monetary_cost < 0:
            raise ArchitectureError(f"resource {name!r}: cost must be >= 0")
        self.name = name
        #: Relative cost used by the architecture-exploration objective
        #: (moves m3/m4); ignored when the architecture is fixed.
        self.monetary_cost = monetary_cost

    @property
    @abstractmethod
    def order_kind(self) -> OrderKind:
        """Which execution order this resource imposes."""

    @abstractmethod
    def execution_time_ms(self, solution: "Solution", task_index: int) -> float:
        """Execution time of ``task_index`` under ``solution`` on this
        resource (implementation-choice dependent for hardware)."""

    @abstractmethod
    def sequentialization_edges(
        self, solution: "Solution"
    ) -> List[Tuple[object, object, float]]:
        """Weighted edges this resource adds to the search graph.

        This is the library's concrete counterpart of the paper's
        abstract ``PE.schedule(Vs, Vd)``: the returned ``(src, dst,
        weight)`` triples impose the resource's execution order (``Esw``
        for processors, ``Ehw`` context edges for DRLCs; nothing for
        ASICs).  Node identifiers are task indices or virtual node
        tuples understood by :mod:`repro.mapping.search_graph`.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    # Resources are identified by name within an architecture; equality
    # follows identity so distinct instances never alias accidentally.
