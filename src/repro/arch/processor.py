"""Programmable processor: sequential execution, total order."""

from __future__ import annotations

from typing import List, Tuple, TYPE_CHECKING

from repro.arch.resource import OrderKind, Resource
from repro.errors import ArchitectureError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapping.solution import Solution


class Processor(Resource):
    """A programmable processor (e.g. the paper's ARM922).

    At the coarse granularity considered, software execution is purely
    sequential, so the processor imposes a **total order**: zero-weight
    sequentialization edges (the paper's ``Esw``) chain consecutive
    tasks of the solution's software schedule.

    ``speed_factor`` scales task software times; 1.0 reproduces the
    reference ARM922 estimates, other values model faster/slower cores
    during architecture exploration (moves m3/m4).
    """

    def __init__(
        self,
        name: str,
        speed_factor: float = 1.0,
        monetary_cost: float = 1.0,
    ) -> None:
        super().__init__(name, monetary_cost)
        if speed_factor <= 0:
            raise ArchitectureError(f"processor {name!r}: speed_factor must be > 0")
        self.speed_factor = speed_factor

    @property
    def order_kind(self) -> OrderKind:
        return OrderKind.TOTAL

    def execution_time_ms(self, solution: "Solution", task_index: int) -> float:
        task = solution.application.task(task_index)
        return task.sw_time_ms / self.speed_factor

    def sequentialization_edges(
        self, solution: "Solution"
    ) -> List[Tuple[object, object, float]]:
        """Zero-weight edges between consecutive software tasks (Esw)."""
        order = solution.software_order(self.name)
        return [(a, b, 0.0) for a, b in zip(order, order[1:])]
