"""Dependency-free ASCII plotting for traces and sweeps.

The paper's figures are line plots; this renders their equivalents in a
terminal so the benches and examples can show the curves without
matplotlib (nothing to install, output lands in logs and EXPERIMENTS
records verbatim).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

Point = Tuple[float, float]


def ascii_plot(
    series: Sequence[Tuple[str, Sequence[Point]]],
    width: int = 70,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot one or more named series as an ASCII chart.

    Each series is drawn with its own glyph (``*``, ``o``, ``+``, …).
    Axes are linear; ranges span all finite points.
    """
    if width < 10 or height < 4:
        raise ConfigurationError("plot needs width >= 10 and height >= 4")
    points = [
        (x, y)
        for _, data in series
        for x, y in data
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    glyphs = "*o+x#@%&"
    grid = [[" "] * width for _ in range(height)]
    for k, (_, data) in enumerate(series):
        glyph = glyphs[k % len(glyphs)]
        for x, y in data:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for i, row in enumerate(grid):
        if i == 0:
            margin = f"{y_hi:>9.6g} |"
        elif i == height - 1:
            margin = f"{y_lo:>9.6g} |"
        else:
            margin = " " * 10 + "|"
        lines.append(margin + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_lo:<12.6g}" + " " * max(0, width - 24) + f"{x_hi:>12.6g}"
    )
    if x_label:
        lines.append(" " * 11 + x_label)
    legend = "   ".join(
        f"{glyphs[k % len(glyphs)]} {name}" for k, (name, _) in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def plot_trace(trace, width: int = 70, height: int = 16) -> str:
    """Fig. 2-style plot of a :class:`TraceRecord` list: execution time
    and context count (scaled) vs iteration."""
    if not trace:
        return "(empty trace)"
    cost_series = [(float(r.iteration), r.current_cost) for r in trace]
    max_cost = max(c for _, c in cost_series)
    max_ctx = max(r.num_contexts for r in trace) or 1
    # contexts are rescaled onto the cost axis like the paper's dual axis
    ctx_series = [
        (float(r.iteration), r.num_contexts * max_cost / (2 * max_ctx))
        for r in trace
    ]
    return ascii_plot(
        [
            ("execution time (ms)", cost_series),
            (f"contexts (x{max_cost / (2 * max_ctx):.1f} ms/ctx)", ctx_series),
        ],
        width=width,
        height=height,
        x_label="iteration",
    )


def plot_sweep(rows, width: int = 70, height: int = 16) -> str:
    """Fig. 3-style plot of :class:`DeviceSweepRow` results."""
    if not rows:
        return "(empty sweep)"
    exec_series = [(float(r.n_clbs), r.execution_ms) for r in rows]
    reconf_series = [(float(r.n_clbs), r.reconfig_ms) for r in rows]
    max_exec = max(e for _, e in exec_series)
    max_ctx = max(r.num_contexts for r in rows) or 1.0
    ctx_series = [
        (float(r.n_clbs), r.num_contexts * max_exec / (2 * max_ctx))
        for r in rows
    ]
    return ascii_plot(
        [
            ("execution time (ms)", exec_series),
            ("reconfiguration (ms)", reconf_series),
            (f"contexts (x{max_exec / (2 * max_ctx):.1f} ms/ctx)", ctx_series),
        ],
        width=width,
        height=height,
        x_label="device size (CLBs)",
    )
