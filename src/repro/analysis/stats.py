"""Small statistics helpers for experiment aggregation.

Only what the experiment harness needs — means, spreads, medians and a
normal-approximation confidence interval — with explicit handling of
empty and single-sample inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ConfigurationError("mean of empty sample set")
    return sum(samples) / len(samples)


def std(samples: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for a single sample."""
    if not samples:
        raise ConfigurationError("std of empty sample set")
    if len(samples) == 1:
        return 0.0
    m = mean(samples)
    return math.sqrt(sum((x - m) ** 2 for x in samples) / (len(samples) - 1))


def median(samples: Sequence[float]) -> float:
    if not samples:
        raise ConfigurationError("median of empty sample set")
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def confidence_interval95(samples: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI of the mean."""
    m = mean(samples)
    if len(samples) == 1:
        return (m, m)
    half = 1.96 * std(samples) / math.sqrt(len(samples))
    return (m - half, m + half)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric across runs."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def format(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"mean={self.mean:.2f}{suffix} std={self.std:.2f} "
            f"min={self.minimum:.2f} med={self.median:.2f} "
            f"max={self.maximum:.2f} (n={self.n})"
        )


def summarize(samples: Sequence[float]) -> Summary:
    if not samples:
        raise ConfigurationError("summarize of empty sample set")
    return Summary(
        n=len(samples),
        mean=mean(samples),
        std=std(samples),
        minimum=min(samples),
        median=median(samples),
        maximum=max(samples),
    )
