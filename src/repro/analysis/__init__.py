"""Analysis utilities: solution-space counting, sweeps, statistics."""

from repro.analysis.combinatorics import (
    count_linear_extensions,
    chain_interleavings,
    context_placements,
    solution_space_report,
    SolutionSpaceReport,
)
from repro.analysis.stats import mean, std, median, confidence_interval95, Summary, summarize
from repro.analysis.sweep import DeviceSweepRow, run_device_sweep
from repro.analysis.plot import ascii_plot, plot_sweep, plot_trace

__all__ = [
    "count_linear_extensions",
    "chain_interleavings",
    "context_placements",
    "solution_space_report",
    "SolutionSpaceReport",
    "mean",
    "std",
    "median",
    "confidence_interval95",
    "Summary",
    "summarize",
    "DeviceSweepRow",
    "run_device_sweep",
    "ascii_plot",
    "plot_sweep",
    "plot_trace",
]
