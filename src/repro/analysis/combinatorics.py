"""Solution-space counting (paper section 5, last two paragraphs).

The paper sizes the search space of the 28-task example by counting

* the number of **total orders** (linear extensions) of the precedence
  graph — 1716 for the first 20 nodes, 3 for the 2-chain-vs-1-node
  fork, 3·C(21,7) = 348 840 in total; and
* the number of **context placements**: for a chain of N nodes, k
  changes of context give C(N, k) combinations (378 for k = 2,
  376 740 for k = 6 with N = 28);

multiplying to 131 861 520 combinations for 2 context changes and
7 142 499 000 for 4.  This module reproduces all of those numbers
exactly (``benchmarks/bench_combinatorics.py`` prints the table), and
provides a general linear-extension counter usable on any application.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb, factorial
from typing import Dict, FrozenSet, Hashable, List, Sequence, Tuple

from repro.errors import GraphError
from repro.graph.dag import Dag


def count_linear_extensions(dag: Dag, limit_nodes: int = 40) -> int:
    """Exact number of linear extensions (total orders) of a DAG.

    Dynamic programming over down-sets: ``f(done) = sum over minimal
    next choices``.  Exponential in the antichain width, so the node
    count is guarded (the paper's graphs are chain bundles of width
    <= 3, where this is instantaneous).
    """
    nodes = list(dag.nodes())
    if len(nodes) > limit_nodes:
        raise GraphError(
            f"refusing linear-extension count on {len(nodes)} nodes "
            f"(limit {limit_nodes}); the DP is exponential in width"
        )
    dag.check_acyclic()
    preds: Dict[Hashable, FrozenSet[Hashable]] = {
        n: frozenset(dag.predecessors(n)) for n in nodes
    }
    all_nodes = frozenset(nodes)

    cache: Dict[FrozenSet[Hashable], int] = {}

    def extensions(done: FrozenSet[Hashable]) -> int:
        if done == all_nodes:
            return 1
        hit = cache.get(done)
        if hit is not None:
            return hit
        total = 0
        for node in all_nodes - done:
            if preds[node] <= done:
                total += extensions(done | {node})
        cache[done] = total
        return total

    return extensions(frozenset())


def chain_interleavings(chain_lengths: Sequence[int]) -> int:
    """Linear extensions of disjoint parallel chains: the multinomial
    ``(sum n_i)! / prod(n_i!)``."""
    if any(length < 0 for length in chain_lengths):
        raise GraphError("chain lengths must be >= 0")
    total = sum(chain_lengths)
    result = factorial(total)
    for length in chain_lengths:
        result //= factorial(length)
    return result


def context_placements(num_nodes: int, context_changes: int) -> int:
    """Number of ways to place ``context_changes`` context switches on a
    chain of ``num_nodes`` nodes — the paper's C(N, k) (it counts 378
    for N = 28, k = 2 and 376 740 for k = 6, i.e. C(28, k))."""
    if num_nodes < 0 or context_changes < 0:
        raise GraphError("arguments must be >= 0")
    return comb(num_nodes, context_changes)


class SolutionSpaceReport:
    """The paper's section-5 counting table for one application."""

    def __init__(
        self,
        total_orders: int,
        placements: Dict[int, int],
        combinations: Dict[int, int],
    ) -> None:
        #: Number of total orders (linear extensions) of the task graph.
        self.total_orders = total_orders
        #: context_changes -> C(N, k) placements.
        self.placements = placements
        #: context_changes -> total_orders * placements.
        self.combinations = combinations

    def rows(self) -> List[Tuple[int, int, int]]:
        return [
            (k, self.placements[k], self.combinations[k])
            for k in sorted(self.placements)
        ]

    def format_table(self) -> str:
        lines = [
            f"total orders (linear extensions): {self.total_orders:,}",
            f"{'k changes':>10} {'placements C(N,k)':>20} {'combinations':>18}",
        ]
        for k, placement, combo in self.rows():
            lines.append(f"{k:>10} {placement:>20,} {combo:>18,}")
        return "\n".join(lines)


def solution_space_report(
    application,
    context_changes: Sequence[int] = (2, 4, 6),
) -> SolutionSpaceReport:
    """Reproduce the paper's solution-space estimate for an application.

    Counts the linear extensions of the precedence graph and, for each
    requested number of context changes ``k``, the C(N, k) context
    placements and the product — the count of (total order, temporal
    partitioning) combinations assuming all processing on the RC, which
    is exactly the paper's accounting.
    """
    total_orders = count_linear_extensions(application.dag)
    n = len(application)
    placements = {k: context_placements(n, k) for k in context_changes}
    combinations = {k: total_orders * placements[k] for k in context_changes}
    return SolutionSpaceReport(total_orders, placements, combinations)
