"""Device-size sweep machinery (the paper's Fig. 3 experiment).

For each FPGA capacity, run the explorer ``runs`` times with different
seeds and average execution time, initial/dynamic reconfiguration time
and number of contexts — exactly the three curves of Fig. 3 (the paper
averages 100 runs per size).

Since the ``repro.api`` redesign this module is a thin spec builder: it
assembles a sweep-shaped :class:`~repro.api.specs.ExplorationRequest`
and executes it through :func:`repro.api.facade.explore` (the one
resolution pipeline).  ``jobs=N`` fans the ``sizes × runs`` grid across
N worker processes, and ``checkpoint_path`` makes a long sweep
resumable.  Rows are bit-identical for any ``jobs`` because every run
is independently seeded and the aggregation order is fixed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.errors import ConfigurationError
from repro.model.application import Application
from repro.sa.explorer import DesignSpaceExplorer


@dataclass(frozen=True)
class DeviceSweepRow:
    """Averaged results for one device size."""

    n_clbs: int
    runs: int
    execution_ms: float
    execution_std_ms: float
    initial_reconfig_ms: float
    dynamic_reconfig_ms: float
    num_contexts: float
    hw_tasks: float
    feasible_fraction: float

    @property
    def reconfig_ms(self) -> float:
        return self.initial_reconfig_ms + self.dynamic_reconfig_ms

    def format_row(self) -> str:
        return (
            f"{self.n_clbs:>6} {self.execution_ms:>9.2f} {self.execution_std_ms:>7.2f} "
            f"{self.initial_reconfig_ms:>9.2f} {self.dynamic_reconfig_ms:>9.2f} "
            f"{self.num_contexts:>8.2f} {self.hw_tasks:>7.2f} "
            f"{self.feasible_fraction:>8.2f}"
        )


SWEEP_HEADER = (
    f"{'NCLB':>6} {'exec(ms)':>9} {'std':>7} {'init_rc':>9} {'dyn_rc':>9} "
    f"{'ctx':>8} {'hw':>7} {'<=40ms':>8}"
)


def run_device_sweep(
    application: Application,
    sizes: Sequence[int],
    runs: int = 10,
    iterations: int = 8000,
    warmup_iterations: int = 1200,
    deadline_ms: float = 40.0,
    seed0: int = 1,
    explorer_factory: Optional[Callable[[int, int], DesignSpaceExplorer]] = None,
    engine: str = "full",
    jobs: int = 1,
    checkpoint_path: Optional[str] = None,
) -> List[DeviceSweepRow]:
    """Run the Fig. 3 sweep and return one averaged row per size.

    ``jobs=N`` executes the ``sizes × runs`` grid across N worker
    processes; rows are bit-identical to ``jobs=1`` for the same seeds.
    ``checkpoint_path`` (JSONL) lets an interrupted sweep resume.
    ``explorer_factory(n_clbs, seed)`` may be supplied to customize the
    optimizer (this legacy hook runs sequentially and supports neither
    ``jobs`` nor checkpoints); the default builds the paper's EPICURE
    platform with the requested capacity.  ``engine`` selects the
    evaluation engine (``"full"`` or ``"incremental"``).
    """
    if runs < 1:
        raise ConfigurationError("runs must be >= 1")
    if explorer_factory is not None:
        warnings.warn(
            "explorer_factory is deprecated: ad-hoc constructor wiring "
            "cannot cross a process boundary or serialize; express the "
            "optimizer as an ExplorationRequest strategy/budget spec "
            "(repro.api) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if jobs != 1 or checkpoint_path is not None:
            raise ConfigurationError(
                "explorer_factory is a sequential legacy hook: parallel "
                "jobs and checkpoints need spec-based jobs (it cannot "
                "cross a process boundary)"
            )
        evaluations = {
            (n_clbs, r): explorer_factory(
                n_clbs, seed0 + 1000 * r + n_clbs
            ).run().best_evaluation
            for n_clbs in sizes for r in range(runs)
        }
        return _aggregate_rows(sizes, runs, evaluations, deadline_ms)

    from repro.api.facade import explore
    from repro.api.specs import (
        ApplicationSpec,
        BudgetSpec,
        EngineSpec,
        ExplorationRequest,
        StrategySpec,
    )
    from repro.io import application_to_dict

    request = ExplorationRequest(
        kind="sweep",
        application=ApplicationSpec(
            kind="inline", document=application_to_dict(application)
        ),
        strategy=StrategySpec("sa", {"keep_trace": False}),
        budget=BudgetSpec(
            iterations=iterations, warmup_iterations=warmup_iterations
        ),
        engine=EngineSpec(engine),
        seed=seed0,
        runs=runs,
        sizes=tuple(sizes),
        deadline_ms=deadline_ms,
    )
    response = explore(request, jobs=jobs, checkpoint_path=checkpoint_path)
    return list(response.rows)


def _aggregate_rows(
    sizes: Sequence[int],
    runs: int,
    evaluations: Dict[Tuple[int, int], object],
    deadline_ms: float,
) -> List[DeviceSweepRow]:
    """Fold per-run evaluations into one averaged row per size, in a
    fixed (size-major, run-minor) order so results are reproducible."""
    rows: List[DeviceSweepRow] = []
    for n_clbs in sizes:
        makespans: List[float] = []
        initials: List[float] = []
        dynamics: List[float] = []
        contexts: List[float] = []
        hw_counts: List[float] = []
        met = 0
        for r in range(runs):
            ev = evaluations[(n_clbs, r)]
            makespans.append(ev.makespan_ms)
            initials.append(ev.initial_reconfig_ms)
            dynamics.append(ev.dynamic_reconfig_ms)
            contexts.append(float(ev.num_contexts))
            hw_counts.append(float(ev.hw_tasks))
            if ev.meets(deadline_ms):
                met += 1
        summary = summarize(makespans)
        rows.append(
            DeviceSweepRow(
                n_clbs=n_clbs,
                runs=runs,
                execution_ms=summary.mean,
                execution_std_ms=summary.std,
                initial_reconfig_ms=sum(initials) / runs,
                dynamic_reconfig_ms=sum(dynamics) / runs,
                num_contexts=sum(contexts) / runs,
                hw_tasks=sum(hw_counts) / runs,
                feasible_fraction=met / runs,
            )
        )
    return rows


def smallest_feasible_device(
    rows: Sequence[DeviceSweepRow], deadline_ms: float = 40.0
) -> Optional[int]:
    """The byproduct the paper highlights: the smallest device whose
    *average* execution time meets the constraint."""
    feasible = [row.n_clbs for row in rows if row.execution_ms <= deadline_ms]
    return min(feasible) if feasible else None
