"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``explore``    run an exploration request (annealer by default, or any
               spec file via ``--spec``)
``sweep``      Fig. 3-style device-size sweep (``--jobs N`` parallel)
``compare``    adaptive SA vs the GA baseline (``--jobs N`` parallel)
``portfolio``  race all search strategies on one instance
``info``       describe an application (tasks, structure, solution space)
``bench``      scenario-corpus benchmark suites: ``bench run`` writes a
               machine-readable ``BENCH_<suite>.json``, ``bench list``
               shows cases + scenarios, ``bench compare`` is the
               regression gate (non-zero exit on slowdown/drift)
``telemetry``  inspect telemetry streams: ``telemetry summarize`` loads
               a ``--telemetry`` JSONL file, validates it against the
               event schema and prints the per-job scoreboard
``serve``      exploration service over a content-addressed result
               store: ``serve submit`` is cache-first (identical
               requests dedupe to one computation), ``serve
               run-workers`` drains the queue with N crash-safe worker
               processes, ``serve status|result|stats|gc`` inspect and
               prune the store

``explore``, ``sweep`` and ``portfolio`` accept ``--telemetry PATH``:
the run records structured events (per-phase timings, engine internals,
per-iteration samples) into a run-scoped recorder and writes the stream
as JSONL.  Apart from timestamps the stream is deterministic: a fixed
seed produces the same events whether the run is inline or fanned out
with ``--jobs N``.

The exploration commands are thin spec builders over the declarative
public API (:mod:`repro.api`): flags assemble an
:class:`~repro.api.specs.ExplorationRequest`, ``--spec FILE`` loads one
instead, ``--dump-spec [PATH]`` writes the assembled request without
running it, and every run goes through
:func:`repro.api.facade.explore`.  ``--json`` prints the serializable
:class:`~repro.api.facade.ExplorationResponse` envelope (or the
command's own JSON document) instead of tables.  Validation errors
print to stderr and exit with status 2; ``bench compare`` keeps exit
status 1 for a detected regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.analysis.combinatorics import solution_space_report
from repro.analysis.plot import plot_sweep, plot_trace
from repro.api.facade import ExplorationResponse, explore
from repro.api.specs import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
    load_request,
)
from repro.errors import ReproError
from repro.experiments.comparison import run_comparison
from repro.obs.telemetry import (
    Telemetry,
    format_summary_table,
    load_events,
    summarize_events,
    validate_events,
)
from repro.experiments.fig3 import format_fig3_table
from repro.io import dump_solution
from repro.mapping.evaluator import Evaluator
from repro.mapping.schedule import extract_schedule
from repro.mapping.gantt import render_gantt
from repro.sa.trace import write_csv
from repro.search.portfolio import format_portfolio_table


# ----------------------------------------------------------------------
# flag -> spec assembly
# ----------------------------------------------------------------------
def _application_spec(path: Optional[str]) -> ApplicationSpec:
    """A spec for ``--application``: the builtin benchmark by default;
    a file is read once, sniffed (plain application document vs bundled
    instance) and embedded, so the resulting spec — and anything
    ``--dump-spec`` writes — is self-contained."""
    if path is None:
        return ApplicationSpec(kind="builtin", name="motion")
    from repro.api.resolve import load_json_document

    document = load_json_document(path, "application")
    kind = "bundled" if document.get("format") == "instance" else "inline"
    return ApplicationSpec(kind=kind, document=document)


def _architecture_spec(
    path: Optional[str], n_clbs: int
) -> Optional[ArchitectureSpec]:
    if path is None:
        return ArchitectureSpec(kind="builtin", n_clbs=n_clbs)
    return ArchitectureSpec(kind="inline", path=path)


def _budget_spec(args: argparse.Namespace) -> BudgetSpec:
    """Explicit ``--warmup`` or the shared budget-scaled default
    (applied by the resolution pipeline when warmup is left unset)."""
    return BudgetSpec(
        iterations=args.iterations,
        warmup_iterations=args.warmup,
        time_limit_s=getattr(args, "time_limit_s", None),
        stall_limit=getattr(args, "stall_limit", None),
    )


def _engine_spec(args: argparse.Namespace) -> EngineSpec:
    """``--engine`` plus the optional ``--dispatch`` tuning knob, folded
    into the spec-layer options (key-minimal: absent unless given)."""
    options = {}
    dispatch = getattr(args, "dispatch", None)
    if dispatch is not None:
        options["dispatch"] = dispatch
    return EngineSpec(args.engine, options)


def _explore_request(args: argparse.Namespace) -> ExplorationRequest:
    keep_trace = bool(args.plot or args.trace_csv)
    kind = getattr(args, "strategy", "sa")
    options = {
        "schedule_name": args.schedule,
        "keep_trace": keep_trace,
    }
    if kind == "tempering":
        options["chains"] = args.chains
    return ExplorationRequest(
        kind="single",
        application=_application_spec(args.application),
        architecture=_architecture_spec(args.architecture, args.clbs),
        strategy=StrategySpec(kind, options),
        budget=_budget_spec(args),
        engine=_engine_spec(args),
        seed=args.seed,
    )


def _sweep_request(args: argparse.Namespace) -> ExplorationRequest:
    return ExplorationRequest(
        kind="sweep",
        application=_application_spec(args.application),
        strategy=StrategySpec("sa", {"keep_trace": False}),
        budget=_budget_spec(args),
        engine=_engine_spec(args),
        seed=args.seed,
        runs=args.runs,
        sizes=tuple(int(s) for s in args.sizes.split(",")),
    )


def _portfolio_request(args: argparse.Namespace) -> ExplorationRequest:
    return ExplorationRequest(
        kind="portfolio",
        application=_application_spec(args.application),
        architecture=_architecture_spec(args.architecture, args.clbs),
        budget=_budget_spec(args),
        engine=_engine_spec(args),
        seed=args.seed,
    )


def _request_for(args: argparse.Namespace, builder) -> ExplorationRequest:
    if getattr(args, "spec", None):
        return load_request(args.spec)
    return builder(args)


def _dump_spec(args: argparse.Namespace, request: ExplorationRequest) -> bool:
    """Handle ``--dump-spec``: write (or print) the request, skip the run."""
    target = getattr(args, "dump_spec", None)
    if target is None:
        return False
    text = request.to_json()
    if target == "-":
        print(text)
    else:
        with open(target, "w") as handle:
            handle.write(text + "\n")
        print(f"spec written to {target}", file=sys.stderr)
    return True


def _telemetry_for(args: argparse.Namespace) -> Optional[Telemetry]:
    """A run-scoped recorder when ``--telemetry PATH`` was given."""
    if getattr(args, "telemetry", None) is None:
        return None
    return Telemetry(label=args.command)


def _write_telemetry(
    telemetry: Optional[Telemetry], args: argparse.Namespace
) -> None:
    if telemetry is None:
        return
    records = telemetry.write_jsonl_path(args.telemetry)
    if not args.json:
        print(f"telemetry written to {args.telemetry} "
              f"({records} records)")


# ----------------------------------------------------------------------
# response rendering
# ----------------------------------------------------------------------
def _render_single(response: ExplorationResponse) -> None:
    record = response.results[response.best["index"]]
    ev = response.best["evaluation"]
    print(f"best mapping: {ev['makespan_ms']:.2f} ms, "
          f"{ev['num_contexts']} contexts, "
          f"{ev['hw_tasks']} hw / {ev['sw_tasks']} sw tasks "
          f"({record['runtime_s']:.1f} s)")
    print(f"reconfiguration: {ev['initial_reconfig_ms']:.2f} + "
          f"{ev['dynamic_reconfig_ms']:.2f} ms; "
          f"bus: {ev['comm_ms']:.2f} ms")


def _render_batch(response: ExplorationResponse) -> None:
    print(f"{'seed':>12} {'best (ms)':>10} {'iters':>8} {'time (s)':>9}")
    for record in response.results:
        print(f"{record['seed']:>12} {record['best_cost']:>10.2f} "
              f"{record['iterations_run']:>8} {record['runtime_s']:>9.2f}")
    summary = response.summary
    print(f"batch of {summary['runs']}: "
          f"mean {summary['best_cost_mean']:.2f} ms, "
          f"std {summary['best_cost_std']:.2f}, "
          f"best {summary['best_cost_min']:.2f} ms")


def _render_sweep(response: ExplorationResponse, plot: bool = False) -> None:
    print(format_fig3_table(response.rows))
    if plot:
        print()
        print(plot_sweep(response.rows))


def _render_portfolio(response: ExplorationResponse) -> None:
    deadline = response.summary.get("deadline_ms")
    print(format_portfolio_table(response.entries, deadline_ms=deadline))


def _render_response(response: ExplorationResponse,
                     args: argparse.Namespace) -> None:
    if response.kind == "single":
        _render_single(response)
    elif response.kind == "batch":
        _render_batch(response)
    elif response.kind == "sweep":
        _render_sweep(response, plot=getattr(args, "plot", False))
    else:
        _render_portfolio(response)


def _emit(response: ExplorationResponse, args: argparse.Namespace) -> None:
    if args.json:
        print(response.to_json())
    else:
        _render_response(response, args)


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------
def cmd_explore(args: argparse.Namespace) -> int:
    request = _request_for(args, _explore_request)
    if _dump_spec(args, request):
        return 0
    telemetry = _telemetry_for(args)
    response = explore(request, telemetry=telemetry)
    _emit(response, args)
    _write_telemetry(telemetry, args)
    if response.kind != "single":
        return 0
    result = response.best_result
    if args.trace_csv:
        with open(args.trace_csv, "w") as handle:
            write_csv(result.trace, handle)
        if not args.json:
            print(f"trace saved to {args.trace_csv} "
                  f"({len(result.trace)} records)")
    if args.plot and result.trace and not args.json:
        print()
        print(plot_trace(result.trace))
    if args.gantt and not args.json:
        solution = result.best_solution
        evaluator = Evaluator(solution.application, solution.architecture)
        schedule = extract_schedule(solution, evaluator.realize(solution))
        print()
        print(render_gantt(schedule))
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(dump_solution(result.best_solution))
        if not args.json:
            print(f"solution saved to {args.save}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    request = _request_for(args, _sweep_request)
    if _dump_spec(args, request):
        return 0
    telemetry = _telemetry_for(args)
    response = explore(
        request, jobs=args.jobs, checkpoint_path=args.checkpoint,
        telemetry=telemetry,
    )
    _emit(response, args)
    _write_telemetry(telemetry, args)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    result = run_comparison(
        n_clbs=args.clbs,
        sa_iterations=args.iterations,
        sa_warmup=args.warmup,
        ga_population=args.population,
        ga_generations=args.generations,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.format_table())
    return 0


def cmd_portfolio(args: argparse.Namespace) -> int:
    request = _request_for(args, _portfolio_request)
    if _dump_spec(args, request):
        return 0
    telemetry = _telemetry_for(args)
    response = explore(request, jobs=args.jobs, telemetry=telemetry)
    _emit(response, args)
    _write_telemetry(telemetry, args)
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import (
        context_for_suite,
        format_results_table,
        results_document,
        run_suite,
        write_results,
    )

    context = context_for_suite(
        args.suite,
        jobs=args.jobs,
        repeats=args.repeats,
        warmup=args.bench_warmup,
        evals=args.evals,
        iterations=args.iterations,
        runs=args.runs,
        seed=args.seed,
    )
    progress = None if args.json else print
    suite_run = run_suite(
        args.suite, context, pattern=args.filter, progress=progress,
        profile=args.profile,
    )
    document = results_document(suite_run)
    out_path = args.out or f"BENCH_{args.suite}.json"
    write_results(document, out_path)
    if args.profile:
        profile_path = out_path.rsplit(".json", 1)[0] + ".profile.txt"
        with open(profile_path, "w") as handle:
            for result in suite_run.results:
                if result.profile:
                    handle.write(f"=== {result.name}\n")
                    handle.write(result.profile)
                    handle.write("\n")
        if not args.json:
            print(f"cProfile dumps written to {profile_path}")
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    print()
    print(format_results_table(document))
    print()
    print(f"results written to {out_path} "
          f"({len(document['cases'])} cases, "
          f"{len(document['scenarios'])} scenarios)")
    if args.verbose:
        for result in suite_run.results:
            if result.report:
                print()
                print(f"--- {result.name}")
                print(result.report)
    return 0


def cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import CORPUS, corpus_table, list_cases

    suite = None if args.suite == "all" else args.suite
    cases = list_cases(suite=suite, pattern=args.filter)
    if args.json:
        print(json.dumps({
            "cases": [
                {"name": case.name, "suites": list(case.suites)}
                for case in cases
            ],
            "scenarios": {
                name: {
                    "family": entry.family,
                    "seed": entry.seed,
                    "params": entry.param_dict,
                    "tags": list(entry.tags),
                }
                for name, entry in CORPUS.items()
            },
        }, indent=2))
        return 0
    print(f"bench cases ({len(cases)}):")
    for case in cases:
        print(f"  {case.name:<42} suites={','.join(case.suites)}")
    print()
    print(f"scenario corpus ({len(CORPUS)}):")
    print(corpus_table())
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare, format_comparison, load_results

    comparison = compare(
        load_results(args.old),
        load_results(args.new),
        threshold=args.threshold,
        min_delta_s=args.min_delta,
    )
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        print(format_comparison(comparison))
    return 0 if comparison.ok else 1


def cmd_telemetry_summarize(args: argparse.Namespace) -> int:
    events = load_events(args.path)
    validate_events(events)
    summary = summarize_events(events)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(format_summary_table(summary))
    return 0


def _serve_request(args: argparse.Namespace) -> ExplorationRequest:
    """The default ``serve submit`` workload: one annealer run.  Richer
    shapes (batch, portfolio, sweep) come in through ``--spec``."""
    return ExplorationRequest(
        kind="single",
        application=_application_spec(args.application),
        architecture=_architecture_spec(args.architecture, args.clbs),
        strategy=StrategySpec("sa", {"keep_trace": False}),
        budget=_budget_spec(args),
        engine=_engine_spec(args),
        seed=args.seed,
    )


def _serve_service(args: argparse.Namespace, telemetry=None, create=True):
    # Only ``serve submit`` creates the store; the inspection commands
    # open it read-style so a mistyped --store path is an error, not a
    # silently minted empty store.
    from repro.service import ExplorationService

    if telemetry is None:
        return ExplorationService(args.store, create=create)
    return ExplorationService(args.store, telemetry=telemetry, create=create)


def _print_record(record) -> None:
    print(f"key:      {record.key}")
    print(f"status:   {record.status}")
    print(f"attempts: {record.attempts}   hits: {record.hits}")
    if record.worker:
        print(f"worker:   {record.worker}")
    if record.error:
        print(f"error:    {record.error}")
    print("history:")
    for entry in record.history:
        line = f"  {entry['status']}"
        if "worker" in entry:
            line += f" by {entry['worker']}"
        if "error" in entry:
            line += f" ({entry['error']})"
        print(line)


def cmd_serve_submit(args: argparse.Namespace) -> int:
    request = _request_for(args, _serve_request)
    if _dump_spec(args, request):
        return 0
    telemetry = _telemetry_for(args)
    service = _serve_service(args, telemetry)
    deadline_s = getattr(args, "deadline_s", None)
    if deadline_s is not None:
        outcome = service.submit_anytime(request, deadline_s=deadline_s)
    else:
        outcome = service.submit(request)
    if args.json:
        document: Dict[str, Any] = {
            "key": outcome.key,
            "status": outcome.status,
            "record_status": outcome.record.status,
            "attempts": outcome.record.attempts,
            "hits": outcome.record.hits,
        }
        if outcome.response is not None and outcome.response_text is None:
            # anytime partials are live-only: never persisted to the cache
            document["response"] = outcome.response.to_dict()
        elif outcome.response_text is not None:
            document["response"] = json.loads(outcome.response_text)
        print(json.dumps(document, indent=2))
    else:
        print(f"{outcome.status}: {outcome.key}")
        if outcome.status in ("hit", "partial"):
            best = (outcome.response.best if outcome.response else {}) or {}
            cost = best.get("cost")
            if cost is not None:
                label = "cached" if outcome.status == "hit" else "partial"
                print(f"{label} best: {cost:.2f} ms "
                      f"(seed {best.get('seed')})")
        elif outcome.status in ("queued", "resubmitted"):
            print("run 'repro serve run-workers' to execute it")
    _write_telemetry(telemetry, args)
    return 0


def cmd_serve_status(args: argparse.Namespace) -> int:
    service = _serve_service(args, create=False)
    record = service.status(args.key)
    if args.json:
        print(json.dumps(record.to_dict(), indent=2))
        return 0
    _print_record(record)
    return 0


def cmd_serve_result(args: argparse.Namespace) -> int:
    service = _serve_service(args, create=False)
    service.result(args.key)  # raises ServiceError while unfinished
    text = service.store.response_text(args.key)
    if args.json:
        # the exact persisted bytes — what cache hits serve
        print(text)
        return 0
    response = ExplorationResponse.from_json(text)
    best = response.best or {}
    print(f"kind: {response.kind}   runs: {len(response.results)}")
    if best.get("cost") is not None:
        print(f"best: {best['cost']:.2f} ms (seed {best.get('seed')})")
    for name, value in sorted(response.summary.items()):
        if not isinstance(value, (list, dict)):
            print(f"  {name}: {value}")
    return 0


def cmd_serve_run_workers(args: argparse.Namespace) -> int:
    from repro.service import run_workers

    telemetry = _telemetry_for(args)
    kwargs: Dict[str, Any] = {}
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    executed = run_workers(
        args.store,
        workers=args.workers,
        stale_after_s=args.stale_after,
        jobs=args.jobs,
        max_jobs=args.max_jobs,
        **kwargs,
    )
    if args.json:
        print(json.dumps(
            {"executed": executed, "workers": args.workers}, indent=2
        ))
    else:
        print(f"executed {executed} job(s) with {args.workers} worker(s)")
    _write_telemetry(telemetry, args)
    return 0


def cmd_serve_stats(args: argparse.Namespace) -> int:
    service = _serve_service(args, create=False)
    stats = service.stats()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    records = stats["records"]
    print(f"store: {stats['root']}")
    print(f"records: {records['total']} "
          f"(pending {records['pending']}, running {records['running']}, "
          f"done {records['done']}, failed {records['failed']})")
    print(f"queue: {stats['queue']['queued']} queued, "
          f"{stats['queue']['claimed']} claimed")
    print(f"executions: {stats['executions']}   "
          f"cache hits: {stats['hits']}")
    return 0


def cmd_serve_gc(args: argparse.Namespace) -> int:
    service = _serve_service(args, create=False)
    removed = service.gc(
        failed=not args.keep_failed,
        done_older_than_s=args.done_older_than,
    )
    if args.json:
        print(json.dumps(removed, indent=2))
        return 0
    print(f"removed: {removed['failed']} failed, {removed['done']} done, "
          f"{removed['orphan_tickets']} orphan ticket(s), "
          f"{removed['orphan_results']} orphan result(s)")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from repro.api.resolve import resolve_application

    problem = resolve_application(_application_spec(args.application))
    application = problem.application
    sources = [application.task(t).name for t in application.sources()]
    sinks = [application.task(t).name for t in application.sinks()]
    if args.json:
        document: Dict[str, Any] = {
            "name": application.name,
            "tasks": len(application),
            "hardware_capable_tasks":
                len(application.hardware_capable_tasks()),
            "dependencies": application.dag.num_edges(),
            "total_sw_time_ms": application.total_sw_time_ms(),
            "sources": sources,
            "sinks": sinks,
        }
        if problem.deadline_ms is not None:
            document["deadline_ms"] = problem.deadline_ms
        print(json.dumps(document, indent=2))
        return 0
    print(f"application: {application.name}")
    print(f"  tasks: {len(application)} "
          f"({len(application.hardware_capable_tasks())} hardware-capable)")
    print(f"  dependencies: {application.dag.num_edges()}")
    print(f"  all-software time: {application.total_sw_time_ms():.2f} ms")
    print(f"  sources: {sources}")
    print(f"  sinks:   {sinks}")
    if len(application) <= 40:
        report = solution_space_report(application)
        print()
        print(report.format_table())
    return 0


# ----------------------------------------------------------------------
# the parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Design-space exploration for dynamically "
                    "reconfigurable architectures (DATE'05 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, iterations=8000):
        p.add_argument("--application", help="application JSON (default: motion detection)")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--iterations", type=int, default=iterations)
        p.add_argument("--warmup", type=int, default=None,
                       help="warmup iterations at infinite temperature "
                            "(default: min(1200, iterations/4))")
        p.add_argument("--time-limit-s", type=float, default=None,
                       metavar="SECONDS", dest="time_limit_s",
                       help="wall-clock budget: stop the search once "
                            "this many seconds have elapsed (the "
                            "iteration budget still applies)")
        p.add_argument("--stall-limit", type=int, default=None,
                       metavar="N", dest="stall_limit",
                       help="stop after N consecutive iterations "
                            "without improving the best cost")
        p.add_argument("--engine", default="incremental",
                       choices=["full", "incremental", "array"],
                       help="evaluation engine (array = compiled NumPy "
                            "struct-of-arrays engine, incremental = "
                            "delta-patching fast path, full = reference "
                            "rebuild; makespans are bit-identical)")
        p.add_argument("--dispatch", default=None,
                       choices=["auto", "kernel", "scalar"],
                       help="array-engine batch dispatch: auto picks "
                            "from the compiled graph's level stats, "
                            "kernel forces the fused NumPy lanes, "
                            "scalar forces the persistent delta path "
                            "(results are bit-identical)")
        p.add_argument("--json", action="store_true",
                       help="print the machine-readable response envelope")

    def spec_flags(p):
        p.add_argument("--spec", metavar="FILE",
                       help="run this ExplorationRequest spec file "
                            "(other request flags are ignored)")
        p.add_argument("--dump-spec", metavar="PATH", nargs="?", const="-",
                       help="write the assembled request spec (stdout "
                            "with no PATH) instead of running it")

    def parallel(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (results are bit-identical "
                            "to --jobs 1 for the same seeds)")

    def telemetry_flag(p):
        p.add_argument("--telemetry", metavar="PATH",
                       help="record structured run events (per-phase "
                            "timings, engine internals, iteration "
                            "samples) and write them as JSONL; "
                            "deterministic modulo timestamps, inspect "
                            "with 'repro telemetry summarize'")

    p = sub.add_parser("explore", help="run an exploration request")
    common(p)
    spec_flags(p)
    p.add_argument("--architecture", help="architecture JSON (default: EPICURE)")
    p.add_argument("--clbs", type=int, default=2000, help="device size for the default architecture")
    p.add_argument("--schedule", default="lam",
                   choices=["lam", "modified_lam", "geometric"])
    p.add_argument("--strategy", default="sa",
                   choices=["sa", "tempering"],
                   help="searcher: sa = single-chain annealer, tempering "
                        "= population annealing with replica exchange "
                        "(K chains batch-evaluated per round)")
    p.add_argument("--chains", type=int, default=8,
                   help="chain count for --strategy tempering")
    p.add_argument("--plot", action="store_true", help="ASCII Fig.2-style trace plot")
    p.add_argument("--gantt", action="store_true", help="ASCII Gantt chart")
    p.add_argument("--save", help="write the best solution JSON here")
    p.add_argument("--trace-csv", metavar="PATH",
                   help="write the per-iteration trace (Fig. 2 data) as CSV")
    telemetry_flag(p)
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("sweep", help="device-size sweep (Fig. 3)")
    common(p)
    spec_flags(p)
    parallel(p)
    p.add_argument("--sizes", default="200,400,800,2000,5000",
                   help="comma-separated CLB counts")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--plot", action="store_true")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="JSONL checkpoint: finished runs are reloaded, "
                        "so an interrupted sweep resumes here")
    telemetry_flag(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("compare", help="SA vs GA baseline")
    common(p)
    parallel(p)
    p.add_argument("--clbs", type=int, default=2000)
    p.add_argument("--population", type=int, default=300)
    p.add_argument("--generations", type=int, default=40)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "portfolio",
        help="race all search strategies on one instance",
    )
    common(p)
    spec_flags(p)
    parallel(p)
    p.add_argument("--architecture", help="architecture JSON (default: EPICURE)")
    p.add_argument("--clbs", type=int, default=2000)
    telemetry_flag(p)
    p.set_defaults(func=cmd_portfolio)

    p = sub.add_parser(
        "bench",
        help="scenario-corpus benchmark suites (run | list | compare)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    p = bench_sub.add_parser(
        "run", help="run a suite, write BENCH_<suite>.json"
    )
    p.add_argument("--suite", default="quick", choices=["quick", "full"])
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for multi-seed cases")
    p.add_argument("--filter", metavar="SUBSTR",
                   help="only run cases whose name contains SUBSTR")
    p.add_argument("--out", metavar="PATH",
                   help="results path (default: BENCH_<suite>.json)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed repetitions per case (suite default)")
    p.add_argument("--bench-warmup", type=int, default=None,
                   help="untimed warmup runs per case (suite default)")
    p.add_argument("--evals", type=int, default=None,
                   help="evaluations per throughput measurement")
    p.add_argument("--iterations", type=int, default=None,
                   help="search iterations for search-shaped cases")
    p.add_argument("--runs", type=int, default=None,
                   help="seeds per multi-seed case")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--profile", action="store_true",
                   help="cProfile one extra run per case and write the "
                        "top-N cumulative dumps next to the report "
                        "(<out>.profile.txt) — reproducible hotspot "
                        "attribution")
    p.add_argument("--verbose", action="store_true",
                   help="print each case's full report")
    p.add_argument("--json", action="store_true",
                   help="print the results document to stdout")
    p.set_defaults(func=cmd_bench_run)

    p = bench_sub.add_parser(
        "list", help="list registered cases and the scenario corpus"
    )
    p.add_argument("--suite", default="all", choices=["quick", "full", "all"])
    p.add_argument("--filter", metavar="SUBSTR")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_bench_list)

    p = bench_sub.add_parser(
        "compare",
        help="regression gate: exits non-zero on slowdown or "
             "scenario drift",
    )
    p.add_argument("old", help="baseline BENCH_*.json")
    p.add_argument("new", help="candidate BENCH_*.json")
    p.add_argument("--threshold", type=float, default=1.3,
                   help="tolerated slowdown factor (default 1.3)")
    p.add_argument("--min-delta", type=float, default=0.05,
                   help="absolute noise floor in seconds: slowdowns "
                        "smaller than this never count (default 0.05)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser(
        "telemetry",
        help="inspect telemetry streams (summarize)",
    )
    tele_sub = p.add_subparsers(dest="telemetry_command", required=True)

    p = tele_sub.add_parser(
        "summarize",
        help="validate a telemetry JSONL stream and print the "
             "per-job scoreboard",
    )
    p.add_argument("path", help="telemetry JSONL written by --telemetry")
    p.add_argument("--json", action="store_true",
                   help="print the summary document instead of the table")
    p.set_defaults(func=cmd_telemetry_summarize)

    p = sub.add_parser(
        "serve",
        help="exploration service: content-addressed result cache + "
             "crash-safe worker pool",
    )
    serve_sub = p.add_subparsers(dest="serve_command", required=True)

    def store_flag(p):
        p.add_argument("--store", default=".repro-store", metavar="DIR",
                       help="result-store directory "
                            "(default: .repro-store)")

    p = serve_sub.add_parser(
        "submit",
        help="cache-first submit: serve the cached envelope, attach to "
             "an in-flight computation, or enqueue the job",
    )
    store_flag(p)
    common(p)
    spec_flags(p)
    p.add_argument("--architecture", help="architecture JSON (default: EPICURE)")
    p.add_argument("--clbs", type=int, default=2000,
                   help="device size for the default architecture")
    p.add_argument("--deadline-s", type=float, default=None,
                   metavar="SECONDS", dest="deadline_s",
                   help="anytime serving: answer within this many "
                        "seconds — cache hits are served instantly, "
                        "otherwise the job runs inline with the "
                        "deadline as its wall-clock budget and the "
                        "best-so-far envelope is returned (marked "
                        "partial; the record stays pending so workers "
                        "can still finish the full run)")
    telemetry_flag(p)
    p.set_defaults(func=cmd_serve_submit)

    p = serve_sub.add_parser("status", help="show one record row")
    store_flag(p)
    p.add_argument("key", help="cache key printed by 'serve submit'")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_serve_status)

    p = serve_sub.add_parser(
        "result", help="print a completed job's result envelope"
    )
    store_flag(p)
    p.add_argument("key", help="cache key printed by 'serve submit'")
    p.add_argument("--json", action="store_true",
                   help="print the exact persisted envelope bytes")
    p.set_defaults(func=cmd_serve_result)

    p = serve_sub.add_parser(
        "run-workers",
        help="drain the queue with N worker processes (requeues stale "
             "claims first — crash recovery)",
    )
    store_flag(p)
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (1 = inline, no pool)")
    p.add_argument("--stale-after", type=float, default=600.0,
                   metavar="SECONDS",
                   help="age after which a running claim counts as "
                        "abandoned and is requeued (default 600)")
    p.add_argument("--jobs", type=int, default=1,
                   help="runner processes per job (passed to explore)")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="stop each worker after this many jobs")
    p.add_argument("--json", action="store_true")
    telemetry_flag(p)
    p.set_defaults(func=cmd_serve_run_workers)

    p = serve_sub.add_parser("stats", help="summarize the store")
    store_flag(p)
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_serve_stats)

    p = serve_sub.add_parser(
        "gc", help="prune failed/aged records and orphaned files"
    )
    store_flag(p)
    p.add_argument("--keep-failed", action="store_true",
                   help="do not remove failed records")
    p.add_argument("--done-older-than", type=float, default=None,
                   metavar="SECONDS",
                   help="also remove done records (and their envelopes) "
                        "older than this")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_serve_gc)

    p = sub.add_parser("info", help="describe an application")
    p.add_argument("--application")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
