"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``explore``    run the annealing explorer on an application/architecture
               (built-in benchmark by default, or JSON files)
``sweep``      Fig. 3-style device-size sweep (``--jobs N`` parallel)
``compare``    adaptive SA vs the GA baseline (``--jobs N`` parallel)
``portfolio``  race all search strategies on one instance
``info``       describe an application (tasks, structure, solution space)
``bench``      scenario-corpus benchmark suites: ``bench run`` writes a
               machine-readable ``BENCH_<suite>.json``, ``bench list``
               shows cases + scenarios, ``bench compare`` is the
               regression gate (non-zero exit on slowdown/drift)

Every command accepts ``--seed`` for reproducibility and prints plain
text; machine-readable output goes through ``--save`` (JSON).  Batch
commands accept ``--jobs N`` (worker processes; results are
bit-identical to ``--jobs 1``) and ``sweep`` additionally
``--checkpoint PATH`` to resume interrupted runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.combinatorics import solution_space_report
from repro.analysis.plot import plot_sweep, plot_trace
from repro.arch.architecture import epicure_architecture
from repro.experiments.comparison import run_comparison
from repro.experiments.fig3 import format_fig3_table
from repro.analysis.sweep import run_device_sweep
from repro.io import (
    dump_solution,
    load_application,
    load_architecture,
)
from repro.mapping.schedule import extract_schedule
from repro.mapping.gantt import render_gantt
from repro.model.motion import MOTION_DEADLINE_MS, motion_detection_application
from repro.sa.annealer import default_warmup
from repro.sa.explorer import DesignSpaceExplorer
from repro.sa.trace import write_csv
from repro.search.portfolio import format_portfolio_table, run_portfolio


def _load_app(path: Optional[str]):
    if path is None:
        return motion_detection_application()
    with open(path) as handle:
        return load_application(handle.read())


def _load_arch(path: Optional[str], n_clbs: int):
    if path is None:
        return epicure_architecture(n_clbs=n_clbs)
    with open(path) as handle:
        return load_architecture(handle.read())


def _warmup(args: argparse.Namespace) -> int:
    """Explicit ``--warmup``, else the shared budget-scaled default."""
    if args.warmup is not None:
        return args.warmup
    return default_warmup(args.iterations)


def cmd_explore(args: argparse.Namespace) -> int:
    application = _load_app(args.application)
    architecture = _load_arch(args.architecture, args.clbs)
    explorer = DesignSpaceExplorer(
        application,
        architecture,
        iterations=args.iterations,
        warmup_iterations=_warmup(args),
        seed=args.seed,
        schedule_name=args.schedule,
        engine=args.engine,
    )
    result = explorer.run()
    ev = result.best_evaluation
    print(f"best mapping: {ev.makespan_ms:.2f} ms, {ev.num_contexts} contexts, "
          f"{ev.hw_tasks} hw / {ev.sw_tasks} sw tasks "
          f"({result.runtime_s:.1f} s)")
    print(f"reconfiguration: {ev.initial_reconfig_ms:.2f} + "
          f"{ev.dynamic_reconfig_ms:.2f} ms; bus: {ev.comm_ms:.2f} ms")
    if args.trace_csv:
        with open(args.trace_csv, "w") as handle:
            write_csv(result.trace, handle)
        print(f"trace saved to {args.trace_csv} "
              f"({len(result.trace)} records)")
    if args.plot and result.trace:
        print()
        print(plot_trace(result.trace))
    if args.gantt:
        schedule = extract_schedule(
            result.best_solution, explorer.evaluator.realize(result.best_solution)
        )
        print()
        print(render_gantt(schedule))
    if args.save:
        with open(args.save, "w") as handle:
            handle.write(dump_solution(result.best_solution))
        print(f"solution saved to {args.save}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    application = _load_app(args.application)
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = run_device_sweep(
        application,
        sizes=sizes,
        runs=args.runs,
        iterations=args.iterations,
        warmup_iterations=_warmup(args),
        seed0=args.seed if args.seed is not None else 1,
        engine=args.engine,
        jobs=args.jobs,
        checkpoint_path=args.checkpoint,
    )
    print(format_fig3_table(rows))
    if args.plot:
        print()
        print(plot_sweep(rows))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    result = run_comparison(
        n_clbs=args.clbs,
        sa_iterations=args.iterations,
        sa_warmup=_warmup(args),
        ga_population=args.population,
        ga_generations=args.generations,
        seed=args.seed if args.seed is not None else 11,
        engine=args.engine,
        jobs=args.jobs,
    )
    print(result.format_table())
    return 0


def cmd_portfolio(args: argparse.Namespace) -> int:
    application = _load_app(args.application)
    entries = run_portfolio(
        application,
        architecture=_load_arch(args.architecture, args.clbs),
        iterations=args.iterations,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
        warmup_iterations=args.warmup,
    )
    deadline = (
        MOTION_DEADLINE_MS if args.application is None else None
    )
    print(format_portfolio_table(entries, deadline_ms=deadline))
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import (
        context_for_suite,
        format_results_table,
        results_document,
        run_suite,
        write_results,
    )

    context = context_for_suite(
        args.suite,
        jobs=args.jobs,
        repeats=args.repeats,
        warmup=args.bench_warmup,
        evals=args.evals,
        iterations=args.iterations,
        runs=args.runs,
        seed=args.seed,
    )
    suite_run = run_suite(
        args.suite, context, pattern=args.filter, progress=print
    )
    document = results_document(suite_run)
    out_path = args.out or f"BENCH_{args.suite}.json"
    write_results(document, out_path)
    print()
    print(format_results_table(document))
    print()
    print(f"results written to {out_path} "
          f"({len(document['cases'])} cases, "
          f"{len(document['scenarios'])} scenarios)")
    if args.verbose:
        for result in suite_run.results:
            if result.report:
                print()
                print(f"--- {result.name}")
                print(result.report)
    return 0


def cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import CORPUS, corpus_table, list_cases

    suite = None if args.suite == "all" else args.suite
    cases = list_cases(suite=suite, pattern=args.filter)
    print(f"bench cases ({len(cases)}):")
    for case in cases:
        print(f"  {case.name:<42} suites={','.join(case.suites)}")
    print()
    print(f"scenario corpus ({len(CORPUS)}):")
    print(corpus_table())
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare, format_comparison, load_results

    comparison = compare(
        load_results(args.old),
        load_results(args.new),
        threshold=args.threshold,
        min_delta_s=args.min_delta,
    )
    print(format_comparison(comparison))
    return 0 if comparison.ok else 1


def cmd_info(args: argparse.Namespace) -> int:
    application = _load_app(args.application)
    print(f"application: {application.name}")
    print(f"  tasks: {len(application)} "
          f"({len(application.hardware_capable_tasks())} hardware-capable)")
    print(f"  dependencies: {application.dag.num_edges()}")
    print(f"  all-software time: {application.total_sw_time_ms():.2f} ms")
    sources = [application.task(t).name for t in application.sources()]
    sinks = [application.task(t).name for t in application.sinks()]
    print(f"  sources: {sources}")
    print(f"  sinks:   {sinks}")
    if len(application) <= 40:
        report = solution_space_report(application)
        print()
        print(report.format_table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Design-space exploration for dynamically "
                    "reconfigurable architectures (DATE'05 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, iterations=8000):
        p.add_argument("--application", help="application JSON (default: motion detection)")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--iterations", type=int, default=iterations)
        p.add_argument("--warmup", type=int, default=None,
                       help="warmup iterations at infinite temperature "
                            "(default: min(1200, iterations/4))")
        p.add_argument("--engine", default="incremental",
                       choices=["full", "incremental"],
                       help="evaluation engine (incremental = array-based "
                            "fast path, full = reference rebuild)")

    def parallel(p):
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (results are bit-identical "
                            "to --jobs 1 for the same seeds)")

    p = sub.add_parser("explore", help="run the annealing explorer")
    common(p)
    p.add_argument("--architecture", help="architecture JSON (default: EPICURE)")
    p.add_argument("--clbs", type=int, default=2000, help="device size for the default architecture")
    p.add_argument("--schedule", default="lam",
                   choices=["lam", "modified_lam", "geometric"])
    p.add_argument("--plot", action="store_true", help="ASCII Fig.2-style trace plot")
    p.add_argument("--gantt", action="store_true", help="ASCII Gantt chart")
    p.add_argument("--save", help="write the best solution JSON here")
    p.add_argument("--trace-csv", metavar="PATH",
                   help="write the per-iteration trace (Fig. 2 data) as CSV")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("sweep", help="device-size sweep (Fig. 3)")
    common(p)
    parallel(p)
    p.add_argument("--sizes", default="200,400,800,2000,5000",
                   help="comma-separated CLB counts")
    p.add_argument("--runs", type=int, default=3)
    p.add_argument("--plot", action="store_true")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="JSONL checkpoint: finished runs are reloaded, "
                        "so an interrupted sweep resumes here")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("compare", help="SA vs GA baseline")
    common(p)
    parallel(p)
    p.add_argument("--clbs", type=int, default=2000)
    p.add_argument("--population", type=int, default=300)
    p.add_argument("--generations", type=int, default=40)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "portfolio",
        help="race all search strategies on one instance",
    )
    common(p)
    parallel(p)
    p.add_argument("--architecture", help="architecture JSON (default: EPICURE)")
    p.add_argument("--clbs", type=int, default=2000)
    p.set_defaults(func=cmd_portfolio)

    p = sub.add_parser(
        "bench",
        help="scenario-corpus benchmark suites (run | list | compare)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    p = bench_sub.add_parser(
        "run", help="run a suite, write BENCH_<suite>.json"
    )
    p.add_argument("--suite", default="quick", choices=["quick", "full"])
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for multi-seed cases")
    p.add_argument("--filter", metavar="SUBSTR",
                   help="only run cases whose name contains SUBSTR")
    p.add_argument("--out", metavar="PATH",
                   help="results path (default: BENCH_<suite>.json)")
    p.add_argument("--repeats", type=int, default=None,
                   help="timed repetitions per case (suite default)")
    p.add_argument("--bench-warmup", type=int, default=None,
                   help="untimed warmup runs per case (suite default)")
    p.add_argument("--evals", type=int, default=None,
                   help="evaluations per throughput measurement")
    p.add_argument("--iterations", type=int, default=None,
                   help="search iterations for search-shaped cases")
    p.add_argument("--runs", type=int, default=None,
                   help="seeds per multi-seed case")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--verbose", action="store_true",
                   help="print each case's full report")
    p.set_defaults(func=cmd_bench_run)

    p = bench_sub.add_parser(
        "list", help="list registered cases and the scenario corpus"
    )
    p.add_argument("--suite", default="all", choices=["quick", "full", "all"])
    p.add_argument("--filter", metavar="SUBSTR")
    p.set_defaults(func=cmd_bench_list)

    p = bench_sub.add_parser(
        "compare",
        help="regression gate: exits non-zero on slowdown or "
             "scenario drift",
    )
    p.add_argument("old", help="baseline BENCH_*.json")
    p.add_argument("new", help="candidate BENCH_*.json")
    p.add_argument("--threshold", type=float, default=1.3,
                   help="tolerated slowdown factor (default 1.3)")
    p.add_argument("--min-delta", type=float, default=0.05,
                   help="absolute noise floor in seconds: slowdowns "
                        "smaller than this never count (default 0.05)")
    p.set_defaults(func=cmd_bench_compare)

    p = sub.add_parser("info", help="describe an application")
    p.add_argument("--application")
    p.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
