"""Population annealing / parallel tempering over K cross-batched chains.

K independent annealing chains, each with its own current solution and
its own permanently-bound evaluation engine, propose one move per round
and score it through
:meth:`repro.mapping.engine.CrossChainEvaluator.propose_moves`.  The
measured finding of PRs 5/6 drives the hot path: the paper's task
graphs anneal hundreds of topological levels deep, so per-chain
*persistent delta evaluation* (apply → delta-sync → read the makespan,
commit-on-accept, lazy O(delta) re-diff on reject) outruns the fused
K-lane NumPy kernels at paper scale.  A depth-aware dispatcher
(``EngineSpec.options["dispatch"]``, default ``"auto"``) consults the
compile pass's level statistics and only routes rounds through the
fused :func:`repro.graph.kernels.batched_longest_path` pass when the
graph is shallow/wide enough to amortize per-level kernel dispatch.

On top of the throughput win the population buys parallel tempering's
quality gains: chains occupy the rungs of a temperature ladder
(slot ``s`` anneals at ``schedule.temperature * ladder_ratio**s``), and
on a deterministic schedule adjacent rungs attempt a replica-exchange
swap with the standard acceptance probability
``min(1, exp((E_i - E_j) * (1/T_i - 1/T_j)))``.  A swap exchanges the
chains' *slot assignment* (their temperatures), never their solutions:
each chain's solution stays permanently bound to its per-chain engine,
so the incremental mirrors never re-sync across solutions mid-search.

Determinism contract (pinned by ``tests/sa/test_population.py``):

* ``chains=1`` with no exchange reproduces the ``"sa"`` strategy
  (:class:`~repro.sa.explorer.DesignSpaceExplorer`) bit-for-bit — same
  seed, same history, same trace, same best solution.
* Any fixed ``(seed, chains, ladder)`` is reproducible across runs,
  engines, ``PYTHONHASHSEED`` values and ``jobs=N`` worker fan-out:
  every random draw derives from the seed through per-chain
  splitmix-keyed streams (:func:`repro.sa.annealer._stream_seed`), and
  exchange rounds own private streams of the same family.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.arch.architecture import Architecture
from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.cost import CostFunction, MakespanCost
from repro.mapping.engine import CrossChainEvaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.annealer import AnnealerConfig, _stream_seed
from repro.sa.moves import MoveGenerator, MoveStats
from repro.sa.schedules import make_schedule
from repro.sa.trace import TraceRecord
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTracker,
    StepCallback,
)


class PopulationAnnealer(SearchStrategy):
    """K cross-batched SA chains with optional replica exchange.

    Parameters mirror :class:`~repro.sa.explorer.DesignSpaceExplorer`
    where they mean the same thing; the population-specific knobs are:

    chains:
        Number of independent chains K.  ``iterations`` counts *rounds*
        (one proposed move per chain per round), so the evaluation
        budget is ``chains * iterations``.
    swap_interval:
        Attempt replica-exchange swaps between adjacent temperature
        slots every this many rounds once cooling has started
        (``None``/``0`` disables exchange).  Swap rounds alternate
        even/odd adjacent pairings, and each draws from a private
        seed-derived stream — the schedule is deterministic.
    ladder_ratio:
        Geometric temperature ladder: slot ``s`` runs at
        ``ladder_ratio ** s`` times its adaptive schedule's
        temperature.  Slot 0 (factor 1.0) is the cold rung — with
        ``chains=1`` it *is* plain adaptive SA.
    engine:
        Per-chain evaluation engine kind (every chain gets its own
        engine over one shared compile pass).  ``"array"`` routes each
        round through the fused K-lane kernel pass; the scalar engines
        fall back per chain, bit-identically.

    Architecture-exploration moves (``p_zero`` / catalog) are not
    supported: the K chains share one ``Architecture`` object, which
    m3/m4 would mutate under every other chain's feet.
    """

    name = "tempering"

    def __init__(
        self,
        application,
        architecture: Architecture,
        chains: int = 8,
        iterations: int = 5000,
        warmup_iterations: int = 1200,
        seed: Optional[int] = None,
        schedule_name: str = "lam",
        schedule_kwargs: Optional[dict] = None,
        cost_function: Optional[CostFunction] = None,
        p_impl: float = 0.15,
        bus_policy: str = "ordered",
        keep_trace: bool = True,
        stall_limit: Optional[int] = None,
        initial_hw_fraction: Optional[float] = None,
        swap_interval: Optional[int] = 25,
        ladder_ratio: float = 1.5,
        engine="array",
    ) -> None:
        application.validate()
        architecture.validate()
        if chains < 1:
            raise ConfigurationError(f"chains must be >= 1, got {chains!r}")
        if swap_interval is not None and swap_interval < 0:
            raise ConfigurationError(
                f"swap_interval must be >= 0 or None, got {swap_interval!r}"
            )
        if not ladder_ratio > 0:
            raise ConfigurationError(
                f"ladder_ratio must be > 0, got {ladder_ratio!r}"
            )
        self.application = application
        self.architecture = architecture
        self.chains = chains
        self.seed = seed
        self.swap_interval = swap_interval or None
        self.ladder_ratio = ladder_ratio
        self.schedule_name = schedule_name
        self.schedule_kwargs = dict(schedule_kwargs or {})
        self.initial_hw_fraction = initial_hw_fraction
        self.cost_function = (
            cost_function if cost_function is not None else MakespanCost()
        )
        self.config = AnnealerConfig(
            iterations=iterations,
            warmup_iterations=warmup_iterations,
            seed=seed,
            keep_trace=keep_trace,
            stall_limit=stall_limit,
        )
        self.config.validate()
        # The same schedule horizon the explorer derives (bit-identity
        # at chains=1 depends on it).
        self._horizon = max(1, iterations - warmup_iterations)
        self.evaluator = CrossChainEvaluator(
            application, architecture, chains, engine=engine,
            bus_policy=bus_policy,
        )
        self.move_generator = MoveGenerator(
            application, p_zero=0.0, p_impl=p_impl, catalog=None
        )

    # ------------------------------------------------------------------
    def _initials(
        self, initial: Optional[Solution], init_base: int
    ) -> List[Solution]:
        """Per-chain starting solutions.  Chain 0 draws exactly like the
        explorer (``random.Random(seed)``) so chains=1 is bit-identical
        to the ``"sa"`` strategy; chains 1.. draw from splitmix-keyed
        streams of the same seed."""
        solutions: List[Solution] = []
        for c in range(self.chains):
            if c == 0 and initial is not None:
                solutions.append(initial)
                continue
            rng = random.Random(
                self.seed if c == 0 else _stream_seed(init_base, c)
            )
            solutions.append(
                random_initial_solution(
                    self.application,
                    self.architecture,
                    rng,
                    hw_fraction=self.initial_hw_fraction,
                )
            )
        return solutions

    @staticmethod
    def _metropolis(
        current: float,
        candidate: float,
        cooling: bool,
        rng: random.Random,
        temperature: float,
    ) -> bool:
        """The annealer's Metropolis rule with the slot's effective
        temperature (``temperature`` is only read once cooling has
        begun — callers pass ``inf`` during warmup, when schedules
        expose no temperature yet)."""
        if not math.isfinite(candidate):
            return False  # cyclic realization: always reject
        delta = candidate - current
        if delta <= 0:
            return True
        if not cooling:
            return True  # infinite-temperature warmup accepts everything
        if temperature <= 0:
            return False
        return rng.random() < math.exp(-delta / temperature)

    # ------------------------------------------------------------------
    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        config = self.config.with_budget(budget)
        config.validate()
        K = self.chains
        evaluator = self.evaluator
        cost_function = self.cost_function

        # Seed plan: chain 0's loop RNG is exactly the sequential
        # annealer's ``random.Random(seed)``; every auxiliary stream
        # (other chains' loops and initials, exchange draws) is keyed by
        # splitmix mixing, which is PYTHONHASHSEED- and process-stable.
        aux = random.Random(config.seed)
        chain_base = aux.getrandbits(64)
        init_base = aux.getrandbits(64)
        exchange_base = aux.getrandbits(64)
        rngs = [
            random.Random(
                config.seed if c == 0 else _stream_seed(chain_base, c)
            )
            for c in range(K)
        ]
        solutions = self._initials(initial, init_base)
        tele = self.telemetry

        evaluations_before = evaluator.evaluations
        with tele.phase("init"):
            initial_evaluations = [
                evaluator.evaluate(c, solutions[c]) for c in range(K)
            ]
            current = [
                cost_function(solutions[c], initial_evaluations[c])
                for c in range(K)
            ]
        if not all(math.isfinite(cost) for cost in current):
            raise ConfigurationError("initial solution must be feasible")

        stats = MoveStats()
        tracker = SearchTracker(
            self.name,
            budget=SearchBudget(
                iterations=config.iterations,
                time_limit_s=(
                    budget.time_limit_s if budget is not None else None
                ),
                stall_limit=config.stall_limit,
            ),
            seed=config.seed,
            on_step=on_step,
            keep_history=config.keep_trace,
            telemetry=tele,
        )
        result = tracker.result
        result.move_stats = stats
        lead = min(range(K), key=lambda c: (current[c], c))
        tracker.begin(current[lead], solutions[lead])

        # Temperature slots: chain c starts in slot c; exchange swaps
        # the assignment, never the solutions.
        slot_of_chain = list(range(K))
        chain_in_slot = list(range(K))
        factors = [self.ladder_ratio ** s for s in range(K)]
        schedules = [
            make_schedule(
                self.schedule_name, horizon=self._horizon,
                **self.schedule_kwargs,
            )
            for _ in range(K)
        ]
        warmup_costs = [[current[c]] for c in range(K)]
        cooling = False
        swap_attempts = 0
        swap_accepts = 0

        for iteration in range(1, config.iterations + 1):
            if not cooling and iteration > config.warmup_iterations:
                # No exchange happens before cooling, so slot s is still
                # occupied by chain s: each rung's adaptive schedule
                # begins from its own chain's warmup statistics.
                for s in range(K):
                    schedules[s].begin(warmup_costs[chain_in_slot[s]])
                cooling = True

            moves = []
            names = []
            with tele.phase("propose"):
                for c in range(K):
                    move = None
                    move_name = "none"
                    try:
                        move = self.move_generator.propose(
                            solutions[c], rngs[c]
                        )
                        move_name = move.name
                        stats.record_proposed(move_name)
                    except InfeasibleMoveError:
                        move = None
                    moves.append(move)
                    names.append(move_name)

            with tele.phase("evaluate"):
                outcomes = evaluator.propose_moves(
                    solutions, moves, cost_function
                )

            accepted = [False] * K
            feasible = [False] * K
            with tele.phase("accept"):
                for c in range(K):
                    outcome = outcomes[c]
                    if outcome is None:
                        # Null draw or infeasible application: the round
                        # counts, but carries no thermal information for
                        # this chain (and no transaction is open).
                        stats.record_infeasible(names[c])
                        continue
                    _evaluation, new_cost = outcome
                    feasible[c] = True
                    s = slot_of_chain[c]
                    accept = self._metropolis(
                        current[c], new_cost, cooling, rngs[c],
                        schedules[s].temperature * factors[s]
                        if cooling else math.inf,
                    )
                    # Commit-on-accept: on the persistent path an
                    # accepted move is already applied with its engine
                    # synced (no undo/re-apply/re-diff); a reject undoes
                    # the move and the engine's next delta-sync absorbs
                    # the reverse patch.
                    evaluator.resolve(c, solutions[c], moves[c], accept)
                    if accept:
                        current[c] = new_cost
                        stats.record_accepted(names[c])
                    else:
                        stats.record_rejected(names[c])
                    accepted[c] = accept

            lead = min(range(K), key=lambda c: (current[c], c))
            tracker.observe(
                iteration, current[lead], solutions[lead],
                accepted=accepted[lead], move_name=names[lead],
                stall_eligible=cooling and feasible[lead],
            )

            for c in range(K):
                if not feasible[c]:
                    continue
                if not cooling:
                    warmup_costs[c].append(current[c])
                else:
                    schedules[slot_of_chain[c]].record(
                        current[c], accepted[c]
                    )

            if config.keep_trace:
                cold = chain_in_slot[0]
                tracker.record_trace(
                    TraceRecord(
                        iteration=iteration,
                        temperature=(
                            schedules[0].temperature * factors[0]
                            if cooling
                            else math.inf
                        ),
                        current_cost=current[cold],
                        best_cost=result.best_cost,
                        num_contexts=solutions[cold].num_contexts(),
                        accepted=accepted[cold],
                        move_name=names[cold],
                    )
                )

            if tracker.exhausted():
                break

            if (
                K > 1
                and self.swap_interval
                and cooling
                and iteration % self.swap_interval == 0
            ):
                swap_round = iteration // self.swap_interval
                exchange_rng = random.Random(
                    _stream_seed(exchange_base, swap_round)
                )
                # Alternate even/odd adjacent pairings round by round so
                # replicas can traverse the whole ladder.
                for s in range(swap_round % 2, K - 1, 2):
                    t_cold = schedules[s].temperature * factors[s]
                    t_hot = schedules[s + 1].temperature * factors[s + 1]
                    if not (
                        math.isfinite(t_cold) and math.isfinite(t_hot)
                        and t_cold > 0 and t_hot > 0 and t_cold != t_hot
                    ):
                        continue
                    swap_attempts += 1
                    c_cold = chain_in_slot[s]
                    c_hot = chain_in_slot[s + 1]
                    exponent = (current[c_cold] - current[c_hot]) * (
                        1.0 / t_cold - 1.0 / t_hot
                    )
                    if (
                        exponent >= 0
                        or exchange_rng.random() < math.exp(exponent)
                    ):
                        swap_accepts += 1
                        chain_in_slot[s] = c_hot
                        chain_in_slot[s + 1] = c_cold
                        slot_of_chain[c_hot] = s
                        slot_of_chain[c_cold] = s + 1

        evaluations = evaluator.evaluations - evaluations_before
        best_evaluation = (
            evaluator.engines[0].evaluate(result.best_solution)
            if result.best_solution is not None
            else None
        )
        lead = min(range(K), key=lambda c: (current[c], c))
        if tele.enabled:
            tele.count("swap_attempts", swap_attempts)
            tele.count("swap_accepts", swap_accepts)
        tracker.record_engine(evaluator)
        return tracker.finish(
            evaluations=evaluations,
            best_evaluation=best_evaluation,
            initial_evaluation=initial_evaluations[0],
            chains=K,
            swap_attempts=swap_attempts,
            swap_accepts=swap_accepts,
            chain_costs=list(current),
            slot_of_chain=list(slot_of_chain),
        )
