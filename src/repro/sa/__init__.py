"""Simulated annealing: adaptive schedules, moves, and the explorer.

The paper's optimizer (section 4) is an adaptive variant of simulated
annealing following Lam's statistically controlled cooling: the cost is
treated as the energy of a dynamical system kept in quasi-equilibrium
while the temperature falls as fast as that constraint allows.  The
exploration starts from a random solution, spends a warmup phase at
infinite temperature (Fig. 2 runs 1200 such iterations), then cools
adaptively; it is anytime — interrupt it and the best solution so far is
returned.
"""

from repro.sa.schedules import (
    CoolingSchedule,
    GeometricSchedule,
    LamDelosmeSchedule,
    ModifiedLamSchedule,
    make_schedule,
)
from repro.sa.moves import MoveGenerator, MoveStats
from repro.sa.annealer import AnnealerConfig, AnnealingResult, SimulatedAnnealing
from repro.sa.explorer import DesignSpaceExplorer, ExplorationResult
from repro.sa.trace import TraceRecord

__all__ = [
    "CoolingSchedule",
    "GeometricSchedule",
    "LamDelosmeSchedule",
    "ModifiedLamSchedule",
    "make_schedule",
    "MoveGenerator",
    "MoveStats",
    "AnnealerConfig",
    "AnnealingResult",
    "SimulatedAnnealing",
    "DesignSpaceExplorer",
    "ExplorationResult",
    "TraceRecord",
]
