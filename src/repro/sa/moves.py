"""The paper's annealing moves (section 4.2) and their realization (4.3).

A move is selected by drawing a source index and a destination index in
``[0, N]``; 0 requests a resource creation/removal, anything else names
a task.  Four move types result:

* **m1** — source and destination on the same *processor*: modify the
  total software order (move the source right before the destination,
  clamped to the precedence-feasible window).
* **m2** — different resources (contexts of a DRLC count as resources):
  reassign the source task to the destination's resource; when the
  destination context cannot fit the task, a new context is spawned
  right after it.
* **m3** — source draw is 0: remove a resource hosting a single task,
  reassigning that task to the destination's resource.
* **m4** — destination draw is 0: create a new resource from the
  architecture catalog and move the source task onto it.

We add two moves beyond the paper's numbered four:

* **mImpl** — the paper's experimental section states the annealer
  "chooses for each node implemented in hardware one of its
  implementations", so this move re-draws the area/time variant of a
  hardware task.
* **mOffload** — moves a hardware-capable task onto a DRLC even when
  the device is *empty*.  This is strictly necessary for ergodicity
  with a fixed architecture: m2 can only target resources that already
  host a task, so once a random walk empties the FPGA the paper's move
  set (with the m4 creation move disabled, as in the paper's
  experiments) could never repopulate it.  The paper's general mode
  repairs this through m4; with the architecture pinned we keep a small
  probability of direct offloading instead.  See DESIGN.md.

Moves mutate the solution in place; every move snapshots the mapping
state before mutating and can restore it exactly (undo), so the
annealing loop never deep-copies solutions.

Feasibility: obviously precedence-violating realizations are rejected
*before* mutation using the application's static transitive closure
(O(1) per pair — the paper's closure-matrix test); cross-resource cycles
that survive the precheck are caught by the evaluator's topological sort
and reported as infeasible moves.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arch.asic import Asic
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit
from repro.arch.resource import Resource
from repro.errors import CapacityError, ConfigurationError, InfeasibleMoveError
from repro.mapping.solution import Solution
from repro.model.application import Application

Snapshot = Tuple[
    Dict[int, str],
    Dict[str, List[int]],
    Dict[str, List[List[int]]],
    Dict[str, List[int]],
    Dict[int, int],
    Dict[str, int],
]


def snapshot_solution(solution: Solution) -> Snapshot:
    return (
        dict(solution._resource_of),
        {k: list(v) for k, v in solution._sw_orders.items()},
        {k: [list(c) for c in v] for k, v in solution._contexts.items()},
        {k: list(v) for k, v in solution._asic_tasks.items()},
        dict(solution._impl_choice),
        dict(solution._res_rev),
    )


def restore_solution(solution: Solution, snapshot: Snapshot) -> None:
    resource_of, sw_orders, contexts, asic_tasks, impl_choice, res_rev = snapshot
    solution._resource_of = dict(resource_of)
    solution._sw_orders = {k: list(v) for k, v in sw_orders.items()}
    solution._contexts = {k: [list(c) for c in v] for k, v in contexts.items()}
    solution._asic_tasks = {k: list(v) for k, v in asic_tasks.items()}
    solution._impl_choice = dict(impl_choice)
    # Restoring the revision stamps with the content keeps the stamp ->
    # content correspondence exact, so the incremental evaluation engine
    # sees an undone move as "nothing changed" for untouched resources.
    solution._res_rev = dict(res_rev)


class Move(ABC):
    """A reversible in-place mutation of a solution."""

    name: str = "abstract"

    def __init__(self) -> None:
        self._snapshot: Optional[Snapshot] = None

    def apply(self, solution: Solution) -> None:
        """Perform the move; raises :class:`InfeasibleMoveError` (leaving
        the solution unchanged) when the realization is impossible."""
        self._snapshot = snapshot_solution(solution)
        try:
            self._realize(solution)
        except (InfeasibleMoveError, CapacityError):
            restore_solution(solution, self._snapshot)
            self._snapshot = None
            raise

    def undo(self, solution: Solution) -> None:
        if self._snapshot is None:
            raise InfeasibleMoveError("nothing to undo: move was not applied")
        restore_solution(solution, self._snapshot)
        self._snapshot = None

    @abstractmethod
    def _realize(self, solution: Solution) -> None:
        ...


# ----------------------------------------------------------------------
# shared realization helpers
# ----------------------------------------------------------------------
def _feasible_insert_position(
    application: Application,
    order: Sequence[int],
    task: int,
    target: int,
) -> int:
    """Clamp ``target`` into the precedence-feasible insertion window.

    ``order`` must not contain ``task``.  Position ``p`` is feasible when
    every predecessor of ``task`` sits before ``p`` and every successor
    at or after ``p``.
    """
    lo, hi = 0, len(order)
    for pos, other in enumerate(order):
        if application.precedes(other, task):
            lo = max(lo, pos + 1)
        elif application.precedes(task, other):
            hi = min(hi, pos)
    if lo > hi:
        raise InfeasibleMoveError(
            f"task {task} has no feasible position in the software order"
        )
    return min(max(target, lo), hi)


def _context_precedence_ok(
    solution: Solution, rc_name: str, context_index: int, task: int
) -> bool:
    """True when placing ``task`` into context ``context_index`` keeps the
    DRLC's context order consistent with the precedence graph.

    Uses the static closure: contexts before the target must hold no
    descendant of the task, contexts after it no ancestor (section 3.3:
    every node of a context precedes every node of the following ones).
    """
    app = solution.application
    contexts = solution.contexts(rc_name)
    for j, members in enumerate(contexts):
        if j < context_index:
            if any(app.precedes(task, m) for m in members):
                return False
        elif j > context_index:
            if any(app.precedes(m, task) for m in members):
                return False
    return True


def _place_on_destination(
    solution: Solution, task: int, dest_task: int, rng: random.Random
) -> str:
    """Reassign ``task`` to the resource currently hosting ``dest_task``.

    Shared by m2 and m3.  The task is detached first so all indices are
    computed on the post-removal layout.  Returns a short realization
    tag for statistics.
    """
    app = solution.application
    dest_resource_name = solution.resource_name_of(dest_task)
    dest_resource = solution.architecture.resource(dest_resource_name)

    if isinstance(dest_resource, Processor):
        solution.unassign(task)
        order = solution.software_order(dest_resource_name)
        target = order.index(dest_task)
        position = _feasible_insert_position(app, order, task, target)
        solution.assign_to_processor(task, dest_resource_name, position)
        return "to_sw"

    if isinstance(dest_resource, ReconfigurableCircuit):
        if not app.task(task).hardware_capable:
            raise InfeasibleMoveError(
                f"task {task} has no hardware implementation"
            )
        solution.unassign(task)
        where = solution.context_of(dest_task)
        assert where is not None, "destination task must sit in a context"
        _, k = where
        clbs = solution.task_clbs(task)
        used = solution.context_clbs(dest_resource_name, k)
        if dest_resource.fits(used, clbs):
            if not _context_precedence_ok(solution, dest_resource_name, k, task):
                raise InfeasibleMoveError(
                    f"task {task} cannot join context {k}: order violation"
                )
            solution.assign_to_context(task, dest_resource_name, k)
            return "to_ctx"
        # Section 4.3: spawn a new context when the destination context
        # cannot host the task; it is inserted right after it.
        if not dest_resource.fits(0, clbs):
            raise InfeasibleMoveError(
                f"task {task} does not fit device {dest_resource_name!r}"
            )
        spawn_at = k + 1
        if not _context_precedence_ok_for_new(
            solution, dest_resource_name, spawn_at, task
        ):
            raise InfeasibleMoveError(
                f"task {task} cannot spawn a context at {spawn_at}: order violation"
            )
        solution.spawn_context(task, dest_resource_name, spawn_at)
        return "spawn_ctx"

    if isinstance(dest_resource, Asic):
        if not app.task(task).hardware_capable:
            raise InfeasibleMoveError(
                f"task {task} has no hardware implementation"
            )
        solution.unassign(task)
        solution.assign_to_asic(task, dest_resource_name)
        return "to_asic"

    raise InfeasibleMoveError(
        f"unsupported destination resource {dest_resource_name!r}"
    )


def _context_precedence_ok_for_new(
    solution: Solution, rc_name: str, position: int, task: int
) -> bool:
    """Precedence test for spawning a fresh context at ``position``."""
    app = solution.application
    contexts = solution.contexts(rc_name)
    for j, members in enumerate(contexts):
        if j < position:
            if any(app.precedes(task, m) for m in members):
                return False
        else:
            if any(app.precedes(m, task) for m in members):
                return False
    return True


# ----------------------------------------------------------------------
# concrete moves
# ----------------------------------------------------------------------
class ReorderMove(Move):
    """m1: move a software task right before the destination task."""

    name = "m1_reorder"

    def __init__(self, task: int, dest_task: int) -> None:
        super().__init__()
        self.task = task
        self.dest_task = dest_task

    def _realize(self, solution: Solution) -> None:
        proc_name = solution.resource_name_of(self.task)
        if solution.resource_name_of(self.dest_task) != proc_name:
            raise InfeasibleMoveError("m1 requires both tasks on one processor")
        order = solution.software_order(proc_name)
        current = order.index(self.task)
        reduced = order[:current] + order[current + 1:]
        target = reduced.index(self.dest_task)
        position = _feasible_insert_position(
            solution.application, reduced, self.task, target
        )
        if position == current:
            # The clamp landed back on the current position: take the
            # nearest feasible different one instead, so chain-heavy
            # graphs do not waste most m1 draws.
            app = solution.application
            lo = _feasible_insert_position(app, reduced, self.task, 0)
            hi = _feasible_insert_position(app, reduced, self.task, len(reduced))
            if lo == hi:
                raise InfeasibleMoveError(
                    "m1: the precedence window admits a single position"
                )
            position = current + 1 if current + 1 <= hi else current - 1
        solution.assign_to_processor(self.task, proc_name, position)


class ReassignMove(Move):
    """m2: move the source task to the destination task's resource."""

    name = "m2_reassign"

    def __init__(self, task: int, dest_task: int, rng: random.Random) -> None:
        super().__init__()
        self.task = task
        self.dest_task = dest_task
        self._rng = rng

    def _realize(self, solution: Solution) -> None:
        src = solution.resource_name_of(self.task)
        dst = solution.resource_name_of(self.dest_task)
        src_ctx = solution.context_of(self.task)
        dst_ctx = solution.context_of(self.dest_task)
        if src == dst and src_ctx == dst_ctx:
            raise InfeasibleMoveError("m2 requires different (context) resources")
        _place_on_destination(solution, self.task, self.dest_task, self._rng)


class ImplementationMove(Move):
    """mImpl: re-draw the area/time variant of a hardware task."""

    name = "m_impl"

    def __init__(self, task: int, new_choice: int) -> None:
        super().__init__()
        self.task = task
        self.new_choice = new_choice

    def _realize(self, solution: Solution) -> None:
        where = solution.context_of(self.task)
        on_asic = isinstance(solution.resource_of(self.task), Asic)
        if where is None and not on_asic:
            raise InfeasibleMoveError("mImpl applies to hardware tasks only")
        if solution.implementation_choice(self.task) == self.new_choice:
            raise InfeasibleMoveError("mImpl drew the current implementation")
        task = solution.application.task(self.task)
        new_impl = task.implementation(self.new_choice)
        if where is not None:
            rc_name, k = where
            rc = solution.architecture.resource(rc_name)
            others = solution.context_clbs(rc_name, k) - solution.task_clbs(self.task)
            if not rc.fits(others, new_impl.clbs):
                raise InfeasibleMoveError(
                    f"implementation {new_impl.name!r} overflows context {k}"
                )
        solution.set_implementation_choice(self.task, self.new_choice)


class OffloadMove(Move):
    """mOffload: place a hardware-capable task on a DRLC directly.

    Joins a random existing context (capacity and precedence allowing)
    or spawns a new context at a random precedence-feasible position.
    Keeps the hardware side reachable even when it is empty.
    """

    name = "m_offload"

    def __init__(self, task: int, rc_name: str, rng: random.Random) -> None:
        super().__init__()
        self.task = task
        self.rc_name = rc_name
        self._rng = rng
        # Decision cached on first realization so apply/undo/apply
        # replays the exact same mutation (needed by tabu search).
        self._decision: Optional[Tuple[str, int]] = None

    def _realize(self, solution: Solution) -> None:
        app = solution.application
        if not app.task(self.task).hardware_capable:
            raise InfeasibleMoveError(f"task {self.task} cannot run in hardware")
        rc = solution.architecture.resource(self.rc_name)
        if not isinstance(rc, ReconfigurableCircuit):
            raise InfeasibleMoveError(f"{self.rc_name!r} is not a DRLC")
        solution.unassign(self.task)
        if self._decision is None:
            self._decision = self._decide(solution, rc)
        action, index = self._decision
        if action == "join":
            solution.assign_to_context(self.task, self.rc_name, index)
        else:
            solution.spawn_context(self.task, self.rc_name, index)

    def _decide(
        self, solution: Solution, rc: ReconfigurableCircuit
    ) -> Tuple[str, int]:
        """Pick join-vs-spawn and the target index (post-unassign state)."""
        clbs = solution.task_clbs(self.task)
        contexts = solution.contexts(self.rc_name)
        join_candidates = [
            k
            for k in range(len(contexts))
            if rc.fits(solution.context_clbs(self.rc_name, k), clbs)
            and _context_precedence_ok(solution, self.rc_name, k, self.task)
        ]
        if join_candidates and self._rng.random() < 0.5:
            return ("join", join_candidates[self._rng.randrange(len(join_candidates))])
        if rc.fits(0, clbs):
            spawn_candidates = [
                p
                for p in range(len(contexts) + 1)
                if _context_precedence_ok_for_new(
                    solution, self.rc_name, p, self.task
                )
            ]
            if spawn_candidates:
                return (
                    "spawn",
                    spawn_candidates[self._rng.randrange(len(spawn_candidates))],
                )
        if join_candidates:
            return ("join", join_candidates[self._rng.randrange(len(join_candidates))])
        raise InfeasibleMoveError(
            f"no feasible context position for task {self.task}"
        )


class RemoveResourceMove(Move):
    """m3: drop a single-task resource, rehoming its task."""

    name = "m3_remove_resource"

    def __init__(self, dest_task: int, rng: random.Random) -> None:
        super().__init__()
        self.dest_task = dest_task
        self._rng = rng
        self._removed: Optional[Resource] = None
        self._picked: Optional[Tuple[str, int]] = None  # replay determinism
        self._arch_order: Optional[List[str]] = None

    def _singleton_resources(
        self, solution: Solution
    ) -> List[Tuple[str, Optional[int]]]:
        """Removable resources: hosting exactly one task (paired with
        that task) or none at all (paired with ``None``).  Empty
        resources are removable directly — without this, a resource
        drained by m2 moves could never leave the system and
        architecture exploration would only ever grow."""
        arch = solution.architecture
        found: List[Tuple[str, Optional[int]]] = []
        keep_processor = len(arch.processors()) <= 1
        for proc in arch.processors():
            order = solution.software_order(proc.name)
            if len(order) == 0 and not keep_processor:
                found.append((proc.name, None))
            elif len(order) == 1 and not keep_processor:
                found.append((proc.name, order[0]))
        for rc in arch.reconfigurable_circuits():
            tasks = [t for ctx in solution.contexts(rc.name) for t in ctx]
            if len(tasks) == 0:
                found.append((rc.name, None))
            elif len(tasks) == 1:
                found.append((rc.name, tasks[0]))
        for asic in arch.asics():
            tasks = solution.asic_tasks(asic.name)
            if len(tasks) == 0:
                found.append((asic.name, None))
            elif len(tasks) == 1:
                found.append((asic.name, tasks[0]))
        return found

    def _realize(self, solution: Solution) -> None:
        candidates = self._singleton_resources(solution)
        candidates = [
            (name, task)
            for name, task in candidates
            if solution.resource_name_of(self.dest_task) != name
        ]
        if not candidates:
            raise InfeasibleMoveError("m3 found no removable resource")
        if self._picked is None or self._picked not in candidates:
            self._picked = candidates[self._rng.randrange(len(candidates))]
        name, task = self._picked
        self._arch_order = solution.architecture.resource_names()
        if task is not None:
            _place_on_destination(solution, task, self.dest_task, self._rng)
        self._removed = solution.detach_resource(name)

    def undo(self, solution: Solution) -> None:
        if self._removed is not None:
            solution.architecture.add_resource(self._removed)
            self._removed = None
            # Resource enumeration order is observable (proposal draws
            # iterate it): put the restored resource back where it was,
            # so apply + undo is side-effect-free — speculative batched
            # evaluation relies on that.
            if self._arch_order is not None:
                solution.architecture.restore_resource_order(self._arch_order)
        super().undo(solution)


class CreateResourceMove(Move):
    """m4: instantiate a catalog resource and move the task onto it.

    The new resource's name is drawn from the move's own RNG on first
    realization and cached, so apply/undo/apply replays the exact same
    mutation (tabu and the batched annealer rely on that) and a
    rejected or speculatively-evaluated creation leaves **no trace** in
    the architecture — unlike a shared counter, whose advance by
    discarded candidates would make trajectories depend on the batch
    size.  Names stay unique across a run (different moves draw
    different tokens), which the delta-patching engines' caches assume.
    Without an RNG the move falls back to the architecture's
    counter-based ``fresh_name``.
    """

    name = "m4_create_resource"

    def __init__(
        self,
        task: int,
        factory: Callable[[str], Resource],
        prefix: str = "res",
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__()
        self.task = task
        self.factory = factory
        self.prefix = prefix
        self._rng = rng
        self._name: Optional[str] = None
        self._created: Optional[str] = None

    def _pick_name(self, solution: Solution) -> str:
        arch = solution.architecture
        if self._name is not None and self._name not in arch:
            return self._name
        if self._rng is None:
            self._name = arch.fresh_name(self.prefix)
            return self._name
        while True:
            candidate = f"{self.prefix}_{self._rng.getrandbits(48):012x}"
            if candidate not in arch:
                self._name = candidate
                return candidate

    def _realize(self, solution: Solution) -> None:
        arch = solution.architecture
        resource = self.factory(self._pick_name(solution))
        task = solution.application.task(self.task)
        if not isinstance(resource, Processor) and not task.hardware_capable:
            raise InfeasibleMoveError(
                f"task {task.name!r} cannot run on hardware resource"
            )
        solution.attach_resource(resource)
        self._created = resource.name
        if isinstance(resource, Processor):
            solution.unassign(self.task)
            solution.assign_to_processor(self.task, resource.name)
        elif isinstance(resource, ReconfigurableCircuit):
            if not resource.fits(0, solution.task_clbs(self.task)):
                raise InfeasibleMoveError(
                    f"task {task.name!r} does not fit new device {resource.name!r}"
                )
            solution.unassign(self.task)
            solution.spawn_context(self.task, resource.name)
        elif isinstance(resource, Asic):
            solution.unassign(self.task)
            solution.assign_to_asic(self.task, resource.name)
        else:  # pragma: no cover - defensive
            raise InfeasibleMoveError(
                f"catalog produced unsupported resource {type(resource).__name__}"
            )

    def apply(self, solution: Solution) -> None:
        try:
            super().apply(solution)
        except (InfeasibleMoveError, CapacityError):
            # The snapshot restore does not undo the architecture change.
            if self._created is not None and self._created in solution.architecture:
                solution.architecture.remove_resource(self._created)
            self._created = None
            raise

    def undo(self, solution: Solution) -> None:
        super().undo(solution)
        if self._created is not None:
            solution.architecture.remove_resource(self._created)
            self._created = None


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
class MoveStats:
    """Per-move-type proposal/acceptance counters."""

    def __init__(self) -> None:
        self.proposed: Dict[str, int] = {}
        self.infeasible: Dict[str, int] = {}
        self.accepted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}

    def _bump(self, table: Dict[str, int], name: str) -> None:
        table[name] = table.get(name, 0) + 1

    def record_proposed(self, name: str) -> None:
        self._bump(self.proposed, name)

    def record_infeasible(self, name: str) -> None:
        self._bump(self.infeasible, name)

    def record_accepted(self, name: str) -> None:
        self._bump(self.accepted, name)

    def record_rejected(self, name: str) -> None:
        self._bump(self.rejected, name)

    def summary(self) -> str:
        names = sorted(
            set(self.proposed) | set(self.infeasible)
            | set(self.accepted) | set(self.rejected)
        )
        parts = []
        for name in names:
            parts.append(
                f"{name}: proposed={self.proposed.get(name, 0)} "
                f"infeasible={self.infeasible.get(name, 0)} "
                f"accepted={self.accepted.get(name, 0)} "
                f"rejected={self.rejected.get(name, 0)}"
            )
        return "\n".join(parts)


class MoveGenerator:
    """Draws moves following the paper's selection rule.

    ``p_zero`` is the probability of drawing the special index 0 for
    the source (m3) or destination (m4); the paper sets it to 0 when the
    architecture is fixed.  ``p_impl`` is the probability of proposing
    an implementation re-draw instead of a task move.
    """

    def __init__(
        self,
        application: Application,
        p_zero: float = 0.0,
        p_impl: float = 0.15,
        p_offload: float = 0.10,
        catalog: Optional[Sequence[Callable[[str], Resource]]] = None,
    ) -> None:
        if not 0.0 <= p_zero < 1.0:
            raise ConfigurationError("p_zero must lie in [0, 1)")
        if not 0.0 <= p_impl < 1.0:
            raise ConfigurationError("p_impl must lie in [0, 1)")
        if not 0.0 <= p_offload < 1.0:
            raise ConfigurationError("p_offload must lie in [0, 1)")
        if p_zero > 0.0 and not catalog:
            raise ConfigurationError(
                "architecture moves (p_zero > 0) need a resource catalog"
            )
        self.application = application
        self.p_zero = p_zero
        self.p_impl = p_impl
        self.p_offload = p_offload
        self.catalog = list(catalog) if catalog else []
        self._tasks = sorted(application.task_indices())
        self._hw_capable = [
            t.index for t in application.tasks() if t.hardware_capable
        ]

    # ------------------------------------------------------------------
    def propose(self, solution: Solution, rng: random.Random) -> Move:
        """Draw one move; raises :class:`InfeasibleMoveError` when the
        draw denotes "no move" (e.g. both tasks in one context)."""
        special = rng.random()
        if special < self.p_impl:
            return self._propose_impl(solution, rng)
        if special < self.p_impl + self.p_offload:
            return self._propose_offload(solution, rng)

        source = 0 if rng.random() < self.p_zero else self._draw_task(rng)
        dest = 0 if rng.random() < self.p_zero else self._draw_task(rng)

        if source == 0 and dest == 0:
            raise InfeasibleMoveError("drew 0 for both source and destination")
        if source == 0:
            return RemoveResourceMove(dest_task=dest - 1, rng=rng)
        if dest == 0:
            factory = self.catalog[rng.randrange(len(self.catalog))]
            return CreateResourceMove(task=source - 1, factory=factory, rng=rng)

        vs, vd = source - 1, dest - 1
        if vs == vd:
            raise InfeasibleMoveError("source equals destination")
        src_name = solution.resource_name_of(vs)
        dst_name = solution.resource_name_of(vd)
        if src_name == dst_name:
            src_ctx = solution.context_of(vs)
            if src_ctx is None and isinstance(
                solution.architecture.resource(src_name), Processor
            ):
                return ReorderMove(task=vs, dest_task=vd)
            if src_ctx is not None and src_ctx != solution.context_of(vd):
                return ReassignMove(task=vs, dest_task=vd, rng=rng)
            # Same context or same ASIC: the paper performs no move.
            raise InfeasibleMoveError("tasks share a partial-order resource")
        return ReassignMove(task=vs, dest_task=vd, rng=rng)

    def _draw_task(self, rng: random.Random) -> int:
        """1-based task draw (0 is reserved for resource moves)."""
        return 1 + self._tasks[rng.randrange(len(self._tasks))]

    def _propose_offload(self, solution: Solution, rng: random.Random) -> Move:
        rcs = solution.architecture.reconfigurable_circuits()
        if not rcs or not self._hw_capable:
            raise InfeasibleMoveError("no DRLC or no hardware-capable task")
        task = self._hw_capable[rng.randrange(len(self._hw_capable))]
        rc = rcs[rng.randrange(len(rcs))]
        return OffloadMove(task=task, rc_name=rc.name, rng=rng)

    def _propose_impl(self, solution: Solution, rng: random.Random) -> Move:
        hw_tasks = [
            t for t in self._hw_capable
            if solution.context_of(t) is not None
            or isinstance(solution.resource_of(t), Asic)
        ]
        if not hw_tasks:
            raise InfeasibleMoveError("no hardware task for mImpl")
        task_index = hw_tasks[rng.randrange(len(hw_tasks))]
        task = self.application.task(task_index)
        if task.num_implementations < 2:
            raise InfeasibleMoveError("task has a single implementation")
        current = solution.implementation_choice(task_index)
        choice = rng.randrange(task.num_implementations - 1)
        if choice >= current:
            choice += 1
        return ImplementationMove(task=task_index, new_choice=choice)
