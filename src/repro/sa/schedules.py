"""Cooling schedules, including the adaptive Lam-style schedule.

The paper (section 4.1) builds on Lam's thesis: an adaptive cooling
schedule "expressed in terms of statistical quantities (mean, variance,
correlation) of the system's cost function", obtained by maximizing the
cooling speed subject to quasi-equilibrium.  Lam's analysis also showed
cooling speed is maximized when the move acceptance ratio stays near
0.44.

Neither Lam's thesis nor the authors' refinements [11] are published in
accessible form, so this module provides two faithful-behavior
implementations (see DESIGN.md section 3):

* :class:`LamDelosmeSchedule` — the statistical form: the inverse
  temperature ``S`` grows at a rate proportional to ``λ / σ(S)``
  (quasi-equilibrium permits temperature steps of the order of the cost
  standard deviation) modulated by Lam's acceptance-ratio factor
  ``ρ(α) = 4α(1-α)²/(2-α)²``, which peaks near α ≈ 0.44 — cooling slows
  automatically when acceptance drifts away from the optimum.
* :class:`ModifiedLamSchedule` — the widely used trajectory form
  (Swartz/Boyan/Cicirello): track a target acceptance-rate trajectory
  (warm start, 0.44 plateau for the middle half, exponential tail) by
  multiplicative temperature adjustment.  Needs the planned horizon.

A plain :class:`GeometricSchedule` is included as the ablation baseline
(``benchmarks/bench_ablation_schedules.py``); the paper's pitch is
precisely that the adaptive schedule needs no per-problem tuning while
geometric cooling does.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError


def lam_quality_factor(acceptance: float) -> float:
    """Lam's move-quality factor ``ρ(α) = 4α(1-α)²/(2-α)²``.

    Zero at α ∈ {0, 1}, maximal near the famous α ≈ 0.44.
    """
    if not 0.0 <= acceptance <= 1.0:
        raise ConfigurationError("acceptance ratio must lie in [0, 1]")
    return 4.0 * acceptance * (1.0 - acceptance) ** 2 / (2.0 - acceptance) ** 2


class CoolingSchedule(ABC):
    """Temperature controller driven by per-iteration feedback."""

    @abstractmethod
    def begin(self, warmup_costs: Sequence[float]) -> None:
        """Initialize from the costs sampled during the infinite-
        temperature warmup phase."""

    @abstractmethod
    def record(self, cost: float, accepted: bool) -> None:
        """Feed back the cost reached and whether the move was accepted;
        the schedule updates its temperature."""

    @property
    @abstractmethod
    def temperature(self) -> float:
        """Current temperature (may be ``inf`` before :meth:`begin`)."""

    def frozen(self) -> bool:
        """Heuristic freeze indicator (used only for reporting)."""
        return False


def _spread(samples: Sequence[float]) -> float:
    """Standard deviation of the finite samples (>= tiny positive)."""
    finite = [c for c in samples if math.isfinite(c)]
    if len(finite) < 2:
        return 1.0
    mean = sum(finite) / len(finite)
    var = sum((c - mean) ** 2 for c in finite) / (len(finite) - 1)
    return max(math.sqrt(var), 1e-12)


class LamDelosmeSchedule(CoolingSchedule):
    """Statistically controlled adaptive cooling (inverse-temperature form).

    Per iteration the inverse temperature is raised by
    ``λ · ρ(α̂) / σ̂`` where α̂ and σ̂ are exponentially smoothed
    estimates of the acceptance ratio and of the cost standard
    deviation.  Dividing by σ̂ is the quasi-equilibrium condition (the
    temperature may only move by a fraction of the cost spread per
    step); ρ throttles cooling whenever acceptance leaves the efficient
    region around 0.44.

    ``lambda_rate`` is the single quality/speed knob the paper exposes
    to the designer ("lets the designer select the quality of the
    optimization, hence its computing time").
    """

    def __init__(
        self,
        lambda_rate: float = 0.05,
        smoothing: float = 0.02,
        initial_acceptance: float = 0.95,
    ) -> None:
        if lambda_rate <= 0:
            raise ConfigurationError("lambda_rate must be > 0")
        if not 0 < smoothing <= 1:
            raise ConfigurationError("smoothing must lie in (0, 1]")
        if not 0 < initial_acceptance < 1:
            raise ConfigurationError("initial_acceptance must lie in (0, 1)")
        self.lambda_rate = lambda_rate
        self.smoothing = smoothing
        self._alpha = initial_acceptance
        self._sigma = 1.0
        self._sigma_floor = 1e-9
        self._mean = 0.0
        self._inverse_temperature = 0.0  # S = 0 <=> T = inf

    def begin(self, warmup_costs: Sequence[float]) -> None:
        self._sigma = _spread(warmup_costs)
        # Quasi-equilibrium needs sigma bounded away from zero: when the
        # walk stalls on one cost value the smoothed deviation collapses
        # and an unfloored rate would quench the system instantly.
        self._sigma_floor = max(1e-9, 1e-3 * self._sigma)
        finite = [c for c in warmup_costs if math.isfinite(c)]
        self._mean = sum(finite) / len(finite) if finite else 0.0
        # Start near-infinite: acceptance starts at ~1 and the adaptive
        # rate takes over immediately.
        self._inverse_temperature = 1.0 / (50.0 * self._sigma)

    def record(self, cost: float, accepted: bool) -> None:
        if self._inverse_temperature == 0.0:
            raise ConfigurationError("record() called before begin()")
        w = self.smoothing
        if math.isfinite(cost):
            self._mean = (1 - w) * self._mean + w * cost
            deviation = abs(cost - self._mean)
            self._sigma = max((1 - w) * self._sigma + w * deviation, self._sigma_floor)
        self._alpha = (1 - w) * self._alpha + w * (1.0 if accepted else 0.0)
        rate = self.lambda_rate * lam_quality_factor(self._alpha) / self._sigma
        self._inverse_temperature += rate

    @property
    def temperature(self) -> float:
        if self._inverse_temperature == 0.0:
            return math.inf
        return 1.0 / self._inverse_temperature

    @property
    def acceptance_estimate(self) -> float:
        return self._alpha

    @property
    def sigma_estimate(self) -> float:
        return self._sigma

    def frozen(self) -> bool:
        return self._alpha < 0.01


class ModifiedLamSchedule(CoolingSchedule):
    """Acceptance-rate trajectory tracking (Swartz/Boyan formulation).

    The target acceptance rate over a horizon of ``n`` post-warmup
    iterations is::

        i/n < 0.15 : 0.44 + 0.56 * 560^(-i / (0.15 n))
        i/n < 0.65 : 0.44
        else       : 0.44 * 440^(-(i/n - 0.65) / 0.35)

    and the temperature is multiplied (divided) by ``adjust`` whenever
    the measured acceptance rate is above (below) target.
    """

    def __init__(self, horizon: int, adjust: float = 0.999, smoothing: float = 0.02) -> None:
        if horizon < 1:
            raise ConfigurationError("horizon must be >= 1")
        if not 0 < adjust < 1:
            raise ConfigurationError("adjust must lie in (0, 1)")
        if not 0 < smoothing <= 1:
            raise ConfigurationError("smoothing must lie in (0, 1]")
        self.horizon = horizon
        self.adjust = adjust
        self.smoothing = smoothing
        self._iteration = 0
        self._alpha = 0.5
        self._temperature = math.inf

    def target_acceptance(self, iteration: int) -> float:
        frac = min(iteration / self.horizon, 1.0)
        if frac < 0.15:
            return 0.44 + 0.56 * 560.0 ** (-frac / 0.15)
        if frac < 0.65:
            return 0.44
        return 0.44 * 440.0 ** (-(frac - 0.65) / 0.35)

    def begin(self, warmup_costs: Sequence[float]) -> None:
        # Classic rule of thumb: T0 such that a typical uphill move is
        # accepted with high probability -> a multiple of the cost spread.
        self._temperature = 10.0 * _spread(warmup_costs)
        self._iteration = 0

    def record(self, cost: float, accepted: bool) -> None:
        if math.isinf(self._temperature):
            raise ConfigurationError("record() called before begin()")
        w = self.smoothing
        self._alpha = (1 - w) * self._alpha + w * (1.0 if accepted else 0.0)
        target = self.target_acceptance(self._iteration)
        if self._alpha > target:
            self._temperature *= self.adjust
        else:
            self._temperature /= self.adjust
        self._iteration += 1

    @property
    def temperature(self) -> float:
        return self._temperature

    def frozen(self) -> bool:
        return self._iteration >= self.horizon and self._alpha < 0.01


class GeometricSchedule(CoolingSchedule):
    """Classic tuned schedule: ``T = T0 * alpha^(iteration / plateau)``.

    Included as the ablation baseline; unlike the adaptive schedules it
    exposes exactly the tuning burden the paper argues against.
    """

    def __init__(
        self,
        alpha: float = 0.95,
        plateau: int = 50,
        t0: Optional[float] = None,
    ) -> None:
        if not 0 < alpha < 1:
            raise ConfigurationError("alpha must lie in (0, 1)")
        if plateau < 1:
            raise ConfigurationError("plateau must be >= 1")
        if t0 is not None and t0 <= 0:
            raise ConfigurationError("t0 must be > 0")
        self.alpha = alpha
        self.plateau = plateau
        self._t0 = t0
        self._iteration = 0
        self._temperature = math.inf

    def begin(self, warmup_costs: Sequence[float]) -> None:
        self._temperature = self._t0 if self._t0 is not None else 10.0 * _spread(warmup_costs)
        self._iteration = 0

    def record(self, cost: float, accepted: bool) -> None:
        if math.isinf(self._temperature):
            raise ConfigurationError("record() called before begin()")
        self._iteration += 1
        if self._iteration % self.plateau == 0:
            self._temperature *= self.alpha

    @property
    def temperature(self) -> float:
        return self._temperature

    def frozen(self) -> bool:
        return self._temperature < 1e-9


def make_schedule(name: str, horizon: int = 5000, **kwargs) -> CoolingSchedule:
    """Factory used by configuration files and the CLI-ish examples.

    ``name`` is one of ``"lam"`` (adaptive statistical, the paper's),
    ``"modified_lam"`` (trajectory form) or ``"geometric"``.
    """
    lowered = name.lower()
    if lowered in ("lam", "lam_delosme", "adaptive"):
        return LamDelosmeSchedule(**kwargs)
    if lowered in ("modified_lam", "trajectory"):
        return ModifiedLamSchedule(horizon=horizon, **kwargs)
    if lowered == "geometric":
        return GeometricSchedule(**kwargs)
    raise ConfigurationError(f"unknown schedule {name!r}")
