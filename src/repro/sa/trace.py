"""Iteration traces: the raw data behind the paper's Fig. 2."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, TextIO


@dataclass(frozen=True)
class TraceRecord:
    """State of the annealer after one iteration."""

    iteration: int
    temperature: float
    current_cost: float
    best_cost: float
    num_contexts: int
    accepted: bool
    move_name: str

    def as_csv_row(self) -> str:
        temp = "inf" if math.isinf(self.temperature) else f"{self.temperature:.6g}"
        return (
            f"{self.iteration},{temp},{self.current_cost:.6g},"
            f"{self.best_cost:.6g},{self.num_contexts},"
            f"{int(self.accepted)},{self.move_name}"
        )


CSV_HEADER = "iteration,temperature,current_cost,best_cost,num_contexts,accepted,move"


def write_csv(records: Sequence[TraceRecord], stream: TextIO) -> None:
    stream.write(CSV_HEADER + "\n")
    for record in records:
        stream.write(record.as_csv_row() + "\n")


def downsample(records: Sequence[TraceRecord], every: int) -> List[TraceRecord]:
    """Keep one record in ``every`` (plus the last one) for plotting."""
    if every < 1:
        raise ValueError("every must be >= 1")
    kept = [r for i, r in enumerate(records) if i % every == 0]
    if records and (not kept or kept[-1] is not records[-1]):
        kept.append(records[-1])
    return kept
