"""The annealing engine (paper section 4.1).

The loop is deliberately plain: draw a move, realize it, score the new
solution by longest path, accept by the Metropolis criterion at the
schedule's current temperature, feed the outcome back to the adaptive
schedule.  The first ``warmup_iterations`` run at infinite temperature
(every feasible move is accepted) while cost statistics accumulate —
exactly the first 1200 iterations of the paper's Fig. 2 — after which
adaptive cooling starts.

The engine is *anytime*: iteration is exposed as a generator, so callers
can stop whenever they wish and keep the best solution so far (section
4: "it can be interrupted by the user at any time and will then return
the current solution").

Since the search-layer refactor, :class:`SimulatedAnnealing` implements
the :class:`~repro.search.strategy.SearchStrategy` protocol and returns
the shared :class:`~repro.search.strategy.SearchResult`; the
best/history/stall/runtime bookkeeping lives in the shared
:class:`~repro.search.strategy.SearchTracker`.  Only the genuinely
annealing-specific parts remain here: the Metropolis rule, the adaptive
schedule, the warmup phase, and Fig. 2's per-iteration trace.

The whole move-evaluate-undo loop routes through the pluggable
evaluation-engine layer (:mod:`repro.mapping.engine`): ``evaluator`` may
be an :class:`~repro.mapping.evaluator.Evaluator` facade or any
:class:`~repro.mapping.engine.EvaluationEngine`.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.cost import CostFunction, MakespanCost
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.moves import MoveGenerator, MoveStats
from repro.sa.schedules import CoolingSchedule, LamDelosmeSchedule
from repro.sa.trace import TraceRecord
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTracker,
    StepCallback,
)

#: Deprecated alias — the annealer returns the unified
#: :class:`~repro.search.strategy.SearchResult` since the search-layer
#: refactor.  Import :class:`SearchResult` directly in new code.
AnnealingResult = SearchResult


def default_warmup(iterations: int) -> int:
    """The paper's 1200 warmup iterations (Fig. 2), scaled down so
    small ``iterations`` budgets keep ``warmup < iterations``.  The one
    formula shared by the CLI and the portfolio."""
    return max(0, min(1200, iterations // 4))


def _stream_seed(base: int, iteration: int) -> int:
    """SplitMix64-style mix of ``(base, iteration)`` into a 64-bit seed.

    Batched annealing gives every iteration index its own private RNG
    stream so that speculative candidates discarded after an acceptance
    can be re-proposed deterministically — the resulting trajectory is
    independent of the batch size.  The mix is pure integer arithmetic:
    stable across processes, platforms and ``PYTHONHASHSEED``.
    """
    mask = 0xFFFFFFFFFFFFFFFF
    z = (base + 0x9E3779B97F4A7C15 * iteration) & mask
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
    return (z ^ (z >> 31)) & mask


@dataclass
class AnnealerConfig:
    """Knobs of one annealing run.

    ``iterations`` counts every move draw (including infeasible ones),
    matching the x-axis of the paper's Fig. 2.  ``keep_trace`` disables
    per-iteration records for the 100-run sweeps of Fig. 3.

    ``batch_size`` opts into *batched neighborhood evaluation*: K
    candidate moves are proposed from the current state and scored
    through ``evaluator.evaluate_batch`` in one call (one vectorized
    kernel pass with the array engine), then processed sequentially
    under the Metropolis rule; an acceptance discards the not-yet-
    processed candidates, whose iterations are simply re-proposed from
    the new state.  To keep that re-proposal deterministic, batched mode
    derives one private RNG stream per iteration index from the seed —
    so the trajectory is **identical for every batch_size >= 1** but
    differs from the historical sequential RNG discipline.  The default
    ``None`` keeps the historical loop bit-for-bit.
    """

    iterations: int = 5000
    warmup_iterations: int = 1200
    seed: Optional[int] = None
    keep_trace: bool = True
    #: Stop early when the best cost has not improved for this many
    #: iterations after cooling started (None = run the full budget).
    stall_limit: Optional[int] = None
    #: Candidates per batched-evaluation call (None = historical
    #: sequential loop; any value >= 1 switches to the batch-invariant
    #: per-iteration RNG discipline).
    batch_size: Optional[int] = None

    def validate(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if not 0 <= self.warmup_iterations < self.iterations:
            raise ConfigurationError(
                "warmup_iterations must lie in [0, iterations)"
            )
        if self.stall_limit is not None and self.stall_limit < 1:
            raise ConfigurationError("stall_limit must be >= 1 or None")
        if self.batch_size is not None and self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1 or None")

    def with_budget(self, budget: Optional[SearchBudget]) -> "AnnealerConfig":
        """A copy with the budget's limits folded in (warmup clamped so
        the invariant ``warmup < iterations`` survives small budgets)."""
        if budget is None:
            return self
        budget.validate()
        iterations = budget.resolve_iterations(self.iterations)
        stall = (
            budget.stall_limit
            if budget.stall_limit is not None
            else self.stall_limit
        )
        warmup = min(self.warmup_iterations, iterations - 1)
        return dataclasses.replace(
            self, iterations=iterations, warmup_iterations=warmup,
            stall_limit=stall,
        )


class SimulatedAnnealing(SearchStrategy):
    """Adaptive simulated annealing over mapping solutions."""

    name = "sa"

    def __init__(
        self,
        evaluator: Evaluator,
        move_generator: MoveGenerator,
        schedule: Optional[CoolingSchedule] = None,
        cost_function: Optional[CostFunction] = None,
        config: Optional[AnnealerConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.move_generator = move_generator
        self.schedule = schedule if schedule is not None else LamDelosmeSchedule()
        self.cost_function = cost_function if cost_function is not None else MakespanCost()
        self.config = config if config is not None else AnnealerConfig()
        self.config.validate()

    # ------------------------------------------------------------------
    def run(self, initial_solution: Solution) -> SearchResult:
        """Anneal to completion (or stall) and return the best solution."""
        return self.search(initial_solution)

    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        """:class:`SearchStrategy` entry point (seeded random initial
        solution when none is given)."""
        if initial is None:
            initial = random_initial_solution(
                self.evaluator.application,
                self.evaluator.architecture,
                random.Random(self.config.seed),
            )
        result: Optional[SearchResult] = None
        for result in self.iterate(initial, budget=budget, on_step=on_step):
            pass
        assert result is not None
        return result

    def iterate(
        self,
        initial_solution: Solution,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> Iterator[SearchResult]:
        """Generator form: yields a running result every iteration.

        The yielded object is updated in place except for ``trace`` and
        ``best_solution`` (copied on improvement), so interrupting the
        loop at any point leaves a consistent best-so-far result.
        """
        config = self.config.with_budget(budget)
        config.validate()
        if config.batch_size is not None:
            yield from self._iterate_batched(
                initial_solution, config, budget, on_step
            )
            return
        rng = random.Random(config.seed)
        solution = initial_solution
        tele = self.telemetry
        evaluations_before = self.evaluator.evaluations
        with tele.phase("init"):
            evaluation = self.evaluator.evaluate(solution)
            current_cost = self.cost_function(solution, evaluation)
        if not math.isfinite(current_cost):
            raise ConfigurationError("initial solution must be feasible")

        stats = MoveStats()
        tracker = SearchTracker(
            self.name,
            budget=SearchBudget(
                iterations=config.iterations,
                time_limit_s=budget.time_limit_s if budget is not None else None,
                stall_limit=config.stall_limit,
            ),
            seed=config.seed,
            on_step=on_step,
            keep_history=config.keep_trace,
            telemetry=tele,
        )
        result = tracker.result
        result.move_stats = stats
        tracker.begin(current_cost, solution)

        warmup_costs = [current_cost]
        cooling = False

        for iteration in range(1, config.iterations + 1):
            if not cooling and iteration > config.warmup_iterations:
                self.schedule.begin(warmup_costs)
                cooling = True

            accepted = False
            move_name = "none"
            try:
                with tele.phase("propose"):
                    move = self.move_generator.propose(solution, rng)
                    move_name = move.name
                    stats.record_proposed(move_name)
                    move.apply(solution)
            except InfeasibleMoveError:
                # Infeasible draws consume an iteration (the paper's
                # Fig. 2 x-axis counts them) but carry no thermal
                # information, so they feed neither the schedule nor the
                # stall counter.
                stats.record_infeasible(move_name)
                tracker.observe(
                    iteration, current_cost, solution,
                    accepted=False, move_name=move_name, stall_eligible=False,
                )
                self._record_trace(tracker, config, iteration, current_cost,
                                   result.best_cost, solution, False,
                                   move_name, cooling)
                yield result
                if tracker.exhausted():
                    break
                continue

            with tele.phase("evaluate"):
                evaluation = self.evaluator.evaluate(solution)
                new_cost = self.cost_function(solution, evaluation)

            with tele.phase("accept"):
                accepted = self._metropolis(current_cost, new_cost, cooling, rng)
                if accepted:
                    current_cost = new_cost
                    stats.record_accepted(move_name)
                else:
                    move.undo(solution)
                    stats.record_rejected(move_name)

            tracker.observe(
                iteration, current_cost, solution,
                accepted=accepted, move_name=move_name,
                stall_eligible=cooling,
            )

            if not cooling:
                warmup_costs.append(current_cost)
            else:
                self.schedule.record(current_cost, accepted)

            self._record_trace(tracker, config, iteration, current_cost,
                               result.best_cost, solution, accepted,
                               move_name, cooling)
            yield result

            if tracker.exhausted():
                break

        tracker.record_engine(self.evaluator)
        tracker.finish(
            evaluations=self.evaluator.evaluations - evaluations_before,
        )

    def _iterate_batched(
        self,
        initial_solution: Solution,
        config: AnnealerConfig,
        budget: Optional[SearchBudget],
        on_step: Optional[StepCallback],
    ) -> Iterator[SearchResult]:
        """Batched neighborhood evaluation (``config.batch_size`` set).

        Per round, up to K candidate moves are proposed from the current
        state and scored through ``evaluator.evaluate_batch`` — one
        vectorized kernel pass with the array engine — then processed
        sequentially under the Metropolis rule.  The first acceptance
        invalidates the not-yet-processed candidates (they were scored
        against the pre-acceptance state): they are discarded and their
        iteration indices re-proposed from the new state.  Each
        iteration index owns a private seed-derived RNG stream, so the
        re-proposal — and therefore the whole trajectory — is identical
        for every batch size (``tests/sa/test_batched.py`` pins this).
        ``result.evaluations`` *does* grow with the batch size: scoring
        candidates that an earlier acceptance then discards is the price
        of speculation.
        """
        rng_master = random.Random(config.seed)
        stream_base = rng_master.getrandbits(64)
        solution = initial_solution
        tele = self.telemetry
        evaluations_before = self.evaluator.evaluations
        with tele.phase("init"):
            evaluation = self.evaluator.evaluate(solution)
            current_cost = self.cost_function(solution, evaluation)
        if not math.isfinite(current_cost):
            raise ConfigurationError("initial solution must be feasible")

        stats = MoveStats()
        tracker = SearchTracker(
            self.name,
            budget=SearchBudget(
                iterations=config.iterations,
                time_limit_s=budget.time_limit_s if budget is not None else None,
                stall_limit=config.stall_limit,
            ),
            seed=config.seed,
            on_step=on_step,
            keep_history=config.keep_trace,
            telemetry=tele,
        )
        result = tracker.result
        result.move_stats = stats
        tracker.begin(current_cost, solution)

        warmup_costs = [current_cost]
        cooling = False
        width = max(1, config.batch_size)
        iteration = 0
        stop = False
        while not stop and iteration < config.iterations:
            slots = []
            with tele.phase("propose"):
                for k in range(min(width, config.iterations - iteration)):
                    slot_rng = random.Random(
                        _stream_seed(stream_base, iteration + 1 + k)
                    )
                    move = None
                    move_name = "none"
                    try:
                        move = self.move_generator.propose(solution, slot_rng)
                        move_name = move.name
                    except InfeasibleMoveError:
                        move = None
                    slots.append((iteration + 1 + k, move, move_name, slot_rng))
            with tele.phase("evaluate"):
                outcomes = iter(self.evaluator.evaluate_batch(
                    solution,
                    [m for _it, m, _name, _rng in slots if m is not None],
                    self.cost_function,
                ))
            for it, move, move_name, slot_rng in slots:
                iteration = it
                if not cooling and it > config.warmup_iterations:
                    self.schedule.begin(warmup_costs)
                    cooling = True
                outcome = None if move is None else next(outcomes)
                if move is not None:
                    stats.record_proposed(move_name)
                if outcome is None:
                    # Infeasible draw or infeasible realization: counts
                    # an iteration, carries no thermal information.
                    stats.record_infeasible(move_name)
                    tracker.observe(
                        it, current_cost, solution,
                        accepted=False, move_name=move_name,
                        stall_eligible=False,
                    )
                    self._record_trace(tracker, config, it, current_cost,
                                       result.best_cost, solution, False,
                                       move_name, cooling)
                    yield result
                    if tracker.exhausted():
                        stop = True
                        break
                    continue
                evaluation, new_cost = outcome
                accepted = self._metropolis(
                    current_cost, new_cost, cooling, slot_rng
                )
                if accepted:
                    # The candidate was undone inside evaluate_batch;
                    # re-apply it (moves replay their cached decisions).
                    move.apply(solution)
                    current_cost = new_cost
                    stats.record_accepted(move_name)
                else:
                    stats.record_rejected(move_name)
                tracker.observe(
                    it, current_cost, solution,
                    accepted=accepted, move_name=move_name,
                    stall_eligible=cooling,
                )
                if not cooling:
                    warmup_costs.append(current_cost)
                else:
                    self.schedule.record(current_cost, accepted)
                self._record_trace(tracker, config, it, current_cost,
                                   result.best_cost, solution, accepted,
                                   move_name, cooling)
                yield result
                if tracker.exhausted():
                    stop = True
                    break
                if accepted:
                    break  # discard speculative candidates, re-propose

        tracker.record_engine(self.evaluator)
        tracker.finish(
            evaluations=self.evaluator.evaluations - evaluations_before,
        )

    # ------------------------------------------------------------------
    def _metropolis(
        self, current: float, candidate: float, cooling: bool, rng: random.Random
    ) -> bool:
        if not math.isfinite(candidate):
            return False  # cyclic realization: always reject
        delta = candidate - current
        if delta <= 0:
            return True
        if not cooling:
            return True  # infinite-temperature warmup accepts everything
        temperature = self.schedule.temperature
        if temperature <= 0:
            return False
        return rng.random() < math.exp(-delta / temperature)

    def _record_trace(
        self,
        tracker: SearchTracker,
        config: AnnealerConfig,
        iteration: int,
        current_cost: float,
        best_cost: float,
        solution: Solution,
        accepted: bool,
        move_name: str,
        cooling: bool,
    ) -> None:
        if config.keep_trace:
            tracker.record_trace(
                TraceRecord(
                    iteration=iteration,
                    temperature=self.schedule.temperature if cooling else math.inf,
                    current_cost=current_cost,
                    best_cost=best_cost,
                    num_contexts=solution.num_contexts(),
                    accepted=accepted,
                    move_name=move_name,
                )
            )
