"""The annealing engine (paper section 4.1).

The loop is deliberately plain: draw a move, realize it, score the new
solution by longest path, accept by the Metropolis criterion at the
schedule's current temperature, feed the outcome back to the adaptive
schedule.  The first ``warmup_iterations`` run at infinite temperature
(every feasible move is accepted) while cost statistics accumulate —
exactly the first 1200 iterations of the paper's Fig. 2 — after which
adaptive cooling starts.

The engine is *anytime*: iteration is exposed as a generator, so callers
can stop whenever they wish and keep the best solution so far (section
4: "it can be interrupted by the user at any time and will then return
the current solution").

The whole move-evaluate-undo loop routes through the pluggable
evaluation-engine layer (:mod:`repro.mapping.engine`): ``evaluator`` may
be an :class:`~repro.mapping.evaluator.Evaluator` facade or any
:class:`~repro.mapping.engine.EvaluationEngine`.  With the incremental
engine, a rejected move's ``undo`` needs no second rebuild — the
engine's next state diff simply patches the mutated pieces back.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional

from repro.errors import ConfigurationError, InfeasibleMoveError
from repro.mapping.cost import CostFunction, MakespanCost
from repro.mapping.evaluator import Evaluator
from repro.mapping.solution import Solution
from repro.sa.moves import MoveGenerator, MoveStats
from repro.sa.schedules import CoolingSchedule, LamDelosmeSchedule
from repro.sa.trace import TraceRecord


@dataclass
class AnnealerConfig:
    """Knobs of one annealing run.

    ``iterations`` counts every move draw (including infeasible ones),
    matching the x-axis of the paper's Fig. 2.  ``keep_trace`` disables
    per-iteration records for the 100-run sweeps of Fig. 3.
    """

    iterations: int = 5000
    warmup_iterations: int = 1200
    seed: Optional[int] = None
    keep_trace: bool = True
    #: Stop early when the best cost has not improved for this many
    #: iterations after cooling started (None = run the full budget).
    stall_limit: Optional[int] = None

    def validate(self) -> None:
        if self.iterations < 1:
            raise ConfigurationError("iterations must be >= 1")
        if not 0 <= self.warmup_iterations < self.iterations:
            raise ConfigurationError(
                "warmup_iterations must lie in [0, iterations)"
            )
        if self.stall_limit is not None and self.stall_limit < 1:
            raise ConfigurationError("stall_limit must be >= 1 or None")


@dataclass
class AnnealingResult:
    """Outcome of a run: the best solution and how we got there."""

    best_solution: Solution
    best_cost: float
    final_cost: float
    iterations_run: int
    runtime_s: float
    trace: List[TraceRecord] = field(default_factory=list)
    move_stats: MoveStats = field(default_factory=MoveStats)

    @property
    def accept_ratio(self) -> float:
        accepted = sum(self.move_stats.accepted.values())
        proposed = sum(self.move_stats.proposed.values())
        return accepted / proposed if proposed else 0.0


class SimulatedAnnealing:
    """Adaptive simulated annealing over mapping solutions."""

    def __init__(
        self,
        evaluator: Evaluator,
        move_generator: MoveGenerator,
        schedule: Optional[CoolingSchedule] = None,
        cost_function: Optional[CostFunction] = None,
        config: Optional[AnnealerConfig] = None,
    ) -> None:
        self.evaluator = evaluator
        self.move_generator = move_generator
        self.schedule = schedule if schedule is not None else LamDelosmeSchedule()
        self.cost_function = cost_function if cost_function is not None else MakespanCost()
        self.config = config if config is not None else AnnealerConfig()
        self.config.validate()

    # ------------------------------------------------------------------
    def run(self, initial_solution: Solution) -> AnnealingResult:
        """Anneal to completion (or stall) and return the best solution."""
        result: Optional[AnnealingResult] = None
        for result in self.iterate(initial_solution):
            pass
        assert result is not None
        return result

    def iterate(self, initial_solution: Solution) -> Iterator[AnnealingResult]:
        """Generator form: yields a running result every iteration.

        The yielded object is updated in place except for ``trace`` and
        ``best_solution`` (copied on improvement), so interrupting the
        loop at any point leaves a consistent best-so-far result.
        """
        config = self.config
        rng = random.Random(config.seed)
        solution = initial_solution
        evaluation = self.evaluator.evaluate(solution)
        current_cost = self.cost_function(solution, evaluation)
        if not math.isfinite(current_cost):
            raise ConfigurationError("initial solution must be feasible")

        best_solution = solution.copy()
        best_cost = current_cost
        stats = MoveStats()
        trace: List[TraceRecord] = []
        result = AnnealingResult(
            best_solution=best_solution,
            best_cost=best_cost,
            final_cost=current_cost,
            iterations_run=0,
            runtime_s=0.0,
            trace=trace,
            move_stats=stats,
        )

        warmup_costs: List[float] = [current_cost]
        cooling = False
        stall = 0
        started = time.perf_counter()
        self._started = started

        for iteration in range(1, config.iterations + 1):
            if not cooling and iteration > config.warmup_iterations:
                self.schedule.begin(warmup_costs)
                cooling = True

            accepted = False
            move_name = "none"
            try:
                move = self.move_generator.propose(solution, rng)
                move_name = move.name
                stats.record_proposed(move_name)
                move.apply(solution)
            except InfeasibleMoveError:
                # Infeasible draws consume an iteration (the paper's
                # Fig. 2 x-axis counts them) but carry no thermal
                # information, so they are not fed to the schedule.
                stats.record_infeasible(move_name)
                self._finish_iteration(
                    result, trace, iteration, current_cost, best_cost,
                    solution, accepted=False, move_name=move_name,
                    cooling=cooling, cost=current_cost,
                )
                yield result
                continue

            evaluation = self.evaluator.evaluate(solution)
            new_cost = self.cost_function(solution, evaluation)
            accepted = self._metropolis(current_cost, new_cost, cooling, rng)

            if accepted:
                current_cost = new_cost
                stats.record_accepted(move_name)
                if new_cost < best_cost:
                    best_cost = new_cost
                    best_solution = solution.copy()
                    result.best_solution = best_solution
                    result.best_cost = best_cost
                    stall = 0
                elif cooling:
                    stall += 1
            else:
                move.undo(solution)
                stats.record_rejected(move_name)
                if cooling:
                    stall += 1

            if not cooling:
                warmup_costs.append(current_cost)
            else:
                self.schedule.record(current_cost, accepted)

            self._finish_iteration(
                result, trace, iteration, current_cost, best_cost,
                solution, accepted, move_name, cooling, current_cost,
            )
            yield result

            if (
                cooling
                and config.stall_limit is not None
                and stall >= config.stall_limit
            ):
                break

        result.final_cost = current_cost
        result.runtime_s = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _metropolis(
        self, current: float, candidate: float, cooling: bool, rng: random.Random
    ) -> bool:
        if not math.isfinite(candidate):
            return False  # cyclic realization: always reject
        delta = candidate - current
        if delta <= 0:
            return True
        if not cooling:
            return True  # infinite-temperature warmup accepts everything
        temperature = self.schedule.temperature
        if temperature <= 0:
            return False
        return rng.random() < math.exp(-delta / temperature)

    def _finish_iteration(
        self,
        result: AnnealingResult,
        trace: List[TraceRecord],
        iteration: int,
        current_cost: float,
        best_cost: float,
        solution: Solution,
        accepted: bool,
        move_name: str,
        cooling: bool,
        cost: float,
    ) -> None:
        result.iterations_run = iteration
        result.final_cost = current_cost
        result.best_cost = best_cost
        result.runtime_s = time.perf_counter() - self._started
        if self.config.keep_trace:
            trace.append(
                TraceRecord(
                    iteration=iteration,
                    temperature=self.schedule.temperature if cooling else math.inf,
                    current_cost=current_cost,
                    best_cost=best_cost,
                    num_contexts=solution.num_contexts(),
                    accepted=accepted,
                    move_name=move_name,
                )
            )
