"""High-level design-space exploration tool — the paper's user-facing API.

:class:`DesignSpaceExplorer` wires together the application model, the
architecture, the evaluator, the move generator and the adaptive
annealer, reproducing the tool of the paper: give it an application and
an architecture, call :meth:`run`, read off the best mapping, its
schedule, and the iteration trace (Fig. 2's data).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.arch.architecture import Architecture
from repro.arch.resource import Resource
from repro.errors import ConfigurationError
from repro.mapping.cost import CostFunction, MakespanCost
from repro.mapping.evaluator import Evaluation, Evaluator
from repro.mapping.schedule import Schedule, extract_schedule
from repro.mapping.solution import Solution, random_initial_solution
from repro.sa.annealer import AnnealerConfig, AnnealingResult, SimulatedAnnealing
from repro.sa.moves import MoveGenerator
from repro.sa.schedules import CoolingSchedule, make_schedule
from repro.sa.trace import TraceRecord
from repro.search.strategy import (
    SearchBudget,
    SearchResult,
    SearchStrategy,
    StepCallback,
)


@dataclass
class ExplorationResult:
    """Everything an exploration run produces."""

    best_solution: Solution
    best_evaluation: Evaluation
    initial_evaluation: Evaluation
    annealing: AnnealingResult

    @property
    def trace(self) -> List[TraceRecord]:
        return self.annealing.trace

    @property
    def runtime_s(self) -> float:
        return self.annealing.runtime_s

    def schedule(self, evaluator: Evaluator) -> Schedule:
        graph = evaluator.realize(self.best_solution)
        return extract_schedule(self.best_solution, graph)


class DesignSpaceExplorer(SearchStrategy):
    """The paper's exploration tool.

    Parameters
    ----------
    application, architecture:
        The problem instance.  The architecture is mutated only when
        ``p_zero > 0`` (architecture exploration through m3/m4).
    schedule_name:
        ``"lam"`` (default, the adaptive statistical schedule),
        ``"modified_lam"`` or ``"geometric"``.
    cost_function:
        Defaults to :class:`MakespanCost` (the paper's fixed-architecture
        criterion); pass :class:`~repro.mapping.cost.SystemCost` together
        with ``p_zero > 0`` and a catalog for architecture exploration.
    bus_policy:
        ``"ordered"`` (transaction serialization, default) or ``"edge"``.
    engine:
        Evaluation engine: ``"full"`` (reference rebuild-per-candidate),
        ``"incremental"`` (delta-patching fast path) or ``"array"``
        (compiled struct-of-arrays engine with a persistent longest-path
        DP; fastest).  Same makespans bit-for-bit either way.  See
        :mod:`repro.mapping.engine`.
    batch_size:
        Opt-in batched neighborhood evaluation (see
        :class:`~repro.sa.annealer.AnnealerConfig`); ``None`` keeps the
        historical sequential loop.
    """

    name = "sa"

    def __init__(
        self,
        application,
        architecture: Architecture,
        iterations: int = 5000,
        warmup_iterations: int = 1200,
        seed: Optional[int] = None,
        schedule_name: str = "lam",
        schedule_kwargs: Optional[dict] = None,
        cost_function: Optional[CostFunction] = None,
        p_zero: float = 0.0,
        p_impl: float = 0.15,
        catalog: Optional[Sequence[Callable[[str], Resource]]] = None,
        bus_policy: str = "ordered",
        keep_trace: bool = True,
        stall_limit: Optional[int] = None,
        initial_hw_fraction: Optional[float] = None,
        engine: str = "full",
        batch_size: Optional[int] = None,
    ) -> None:
        application.validate()
        architecture.validate()
        self.application = application
        self.architecture = architecture
        self.seed = seed
        self.initial_hw_fraction = initial_hw_fraction
        self.evaluator = Evaluator(
            application, architecture, bus_policy, engine=engine
        )
        self.move_generator = MoveGenerator(
            application, p_zero=p_zero, p_impl=p_impl, catalog=catalog
        )
        horizon = max(1, iterations - warmup_iterations)
        self.schedule: CoolingSchedule = make_schedule(
            schedule_name, horizon=horizon, **(schedule_kwargs or {})
        )
        self.config = AnnealerConfig(
            iterations=iterations,
            warmup_iterations=warmup_iterations,
            seed=seed,
            keep_trace=keep_trace,
            stall_limit=stall_limit,
            batch_size=batch_size,
        )
        self.annealer = SimulatedAnnealing(
            evaluator=self.evaluator,
            move_generator=self.move_generator,
            schedule=self.schedule,
            cost_function=cost_function if cost_function is not None else MakespanCost(),
            config=self.config,
        )

    # ------------------------------------------------------------------
    def initial_solution(self) -> Solution:
        rng = random.Random(self.seed)
        return random_initial_solution(
            self.application,
            self.architecture,
            rng,
            hw_fraction=self.initial_hw_fraction,
        )

    def run(self, initial: Optional[Solution] = None) -> ExplorationResult:
        """Run the full iteration budget and return the best mapping."""
        solution = initial if initial is not None else self.initial_solution()
        initial_evaluation = self.evaluator.evaluate(solution)
        annealing = self.annealer.run(solution)
        best_evaluation = self.evaluator.evaluate(annealing.best_solution)
        return ExplorationResult(
            best_solution=annealing.best_solution,
            best_evaluation=best_evaluation,
            initial_evaluation=initial_evaluation,
            annealing=annealing,
        )

    def search(
        self,
        initial: Optional[Solution] = None,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[StepCallback] = None,
    ) -> SearchResult:
        """:class:`~repro.search.strategy.SearchStrategy` form of
        :meth:`run`: the unified result, with the full evaluations of
        the best and initial solutions in ``extras``."""
        solution = initial if initial is not None else self.initial_solution()
        initial_evaluation = self.evaluator.evaluate(solution)
        self.annealer.telemetry = self.telemetry
        annealing = self.annealer.search(
            solution, budget=budget, on_step=on_step
        )
        annealing.extras["best_evaluation"] = self.evaluator.evaluate(
            annealing.best_solution
        )
        annealing.extras["initial_evaluation"] = initial_evaluation
        return annealing

    def run_interruptible(
        self,
        stop: Callable[[AnnealingResult], bool],
        initial: Optional[Solution] = None,
    ) -> ExplorationResult:
        """Anytime variant: ``stop`` is polled after every iteration.

        Demonstrates the paper's "can be interrupted by the user at any
        time and will then return the current solution".
        """
        solution = initial if initial is not None else self.initial_solution()
        initial_evaluation = self.evaluator.evaluate(solution)
        annealing: Optional[AnnealingResult] = None
        for annealing in self.annealer.iterate(solution):
            if stop(annealing):
                break
        if annealing is None:
            raise ConfigurationError("annealer yielded no iterations")
        best_evaluation = self.evaluator.evaluate(annealing.best_solution)
        return ExplorationResult(
            best_solution=annealing.best_solution,
            best_evaluation=best_evaluation,
            initial_evaluation=initial_evaluation,
            annealing=annealing,
        )
