#!/usr/bin/env python3
"""Bring your own application: a software-defined-radio (SDR) pipeline.

Shows the full modelling API: tasks with synthesized Pareto
implementation sets, data-volume edges, a custom platform — then turns
both into *documents* and explores them through the declarative public
API (:mod:`repro.api`): the application and architecture ride inline in
an :class:`~repro.api.specs.ExplorationRequest`, so the whole workload
is one JSON file away from `repro explore --spec`.  The pipeline is a
classic SDR receive chain with two parallel demodulation branches:

    acquire -> ddc -+-> fir_i -> demod_fm --+-> deframe -> crc -> sink
                    +-> fir_q -> demod_am --+

Usage::

    python examples/custom_application.py
"""

from repro import (
    Application,
    Architecture,
    Bus,
    Processor,
    ReconfigurableCircuit,
    Task,
    extract_schedule,
    render_gantt,
)
from repro.api import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    ExplorationRequest,
    explore,
)
from repro.io import application_to_dict, architecture_to_dict
from repro.mapping.evaluator import Evaluator
from repro.model.functions import FunctionalitySpec, synthesize_implementations


def build_application() -> Application:
    app = Application("sdr_receive_chain")

    fir_spec = FunctionalitySpec("SDR_FIR", base_clbs=48, min_speedup=8.0,
                                 max_speedup=35.0, variants=6)
    demod_spec = FunctionalitySpec("DEMOD", base_clbs=64, min_speedup=5.0,
                                   max_speedup=20.0, variants=5)
    ddc_spec = FunctionalitySpec("DDC", base_clbs=72, min_speedup=10.0,
                                 max_speedup=40.0, variants=6)
    crc_spec = FunctionalitySpec("CRC", base_clbs=20, min_speedup=4.0,
                                 max_speedup=12.0, variants=5)

    def hw(spec, sw_ms):
        return synthesize_implementations(spec, sw_ms)

    tasks = [
        Task(0, "acquire", "IO", 1.0),                              # sw-only
        Task(1, "ddc", "DDC", 6.0, hw(ddc_spec, 6.0)),
        Task(2, "fir_i", "SDR_FIR", 4.0, hw(fir_spec, 4.0)),
        Task(3, "fir_q", "SDR_FIR", 4.0, hw(fir_spec, 4.0)),
        Task(4, "demod_fm", "DEMOD", 3.0, hw(demod_spec, 3.0)),
        Task(5, "demod_am", "DEMOD", 3.0, hw(demod_spec, 3.0)),
        Task(6, "deframe", "CTRL", 2.0),                            # sw-only
        Task(7, "crc", "CRC", 1.5, hw(crc_spec, 1.5)),
        Task(8, "sink", "IO", 0.5),                                 # sw-only
    ]
    for task in tasks:
        app.add_task(task)

    frame = 16.0  # KB per hop for sample buffers
    app.add_dependency(0, 1, frame)
    app.add_dependency(1, 2, frame)
    app.add_dependency(1, 3, frame)
    app.add_dependency(2, 4, frame / 2)
    app.add_dependency(3, 5, frame / 2)
    app.add_dependency(4, 6, 2.0)
    app.add_dependency(5, 6, 2.0)
    app.add_dependency(6, 7, 2.0)
    app.add_dependency(7, 8, 1.0)
    app.validate()
    return app


def build_platform() -> Architecture:
    arch = Architecture("sdr_platform", bus=Bus(rate_kbytes_per_ms=40.0))
    arch.add_resource(Processor("cortex_m", speed_factor=1.0))
    arch.add_resource(
        ReconfigurableCircuit("fabric", n_clbs=500, reconfig_ms_per_clb=0.02)
    )
    return arch


def main() -> None:
    application = build_application()

    print(f"{application.name}: {len(application)} tasks, "
          f"all-software {application.total_sw_time_ms():.1f} ms")

    request = ExplorationRequest(
        kind="single",
        application=ApplicationSpec(
            kind="inline", document=application_to_dict(application)
        ),
        architecture=ArchitectureSpec(
            kind="inline", document=architecture_to_dict(build_platform())
        ),
        budget=BudgetSpec(iterations=4000, warmup_iterations=600),
        seed=3,
    )
    response = explore(request)
    result = response.best_result
    solution = result.best_solution
    ev = response.best["evaluation"]

    print(f"\nbest mapping: {ev['makespan_ms']:.2f} ms "
          f"(speedup "
          f"{application.total_sw_time_ms() / ev['makespan_ms']:.1f}x "
          f"over all-software)")
    print(f"  {ev['hw_tasks']} hardware tasks in {ev['num_contexts']} "
          f"context(s), {ev['clbs_used']} CLBs")
    for task in solution.application.tasks():
        where = solution.context_of(task.index)
        place = f"fabric/ctx{where[1]}" if where else "cortex_m"
        impl = ""
        if where:
            choice = solution.implementation_choice(task.index)
            chosen = task.implementation(choice)
            impl = f"  [{chosen.clbs} CLBs, {chosen.time_ms:.2f} ms]"
        print(f"  {task.name:<10} -> {place}{impl}")

    evaluator = Evaluator(solution.application, solution.architecture)
    schedule = extract_schedule(solution, evaluator.realize(solution))
    print("\n" + render_gantt(schedule, width=70))


if __name__ == "__main__":
    main()
