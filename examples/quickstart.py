#!/usr/bin/env python3
"""Quickstart: map the paper's benchmark onto the paper's platform.

Runs the adaptive-annealing explorer on the 28-task motion-detection
application (ARM922 + 2000-CLB Virtex-E-class device), prints the best
mapping, its cost decomposition, and an ASCII Gantt chart.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import (
    DesignSpaceExplorer,
    epicure_architecture,
    extract_schedule,
    motion_detection_application,
    render_gantt,
)
from repro.model.motion import MOTION_DEADLINE_MS


def main(seed: int = 7) -> None:
    application = motion_detection_application()
    architecture = epicure_architecture(n_clbs=2000)

    print(f"application: {application.name}, {len(application)} tasks, "
          f"all-software time {application.total_sw_time_ms():.1f} ms "
          f"(constraint: {MOTION_DEADLINE_MS:.0f} ms)")

    explorer = DesignSpaceExplorer(
        application,
        architecture,
        iterations=8000,
        warmup_iterations=1200,
        seed=seed,
    )
    result = explorer.run()

    ev = result.best_evaluation
    print(f"\nbest mapping after {result.annealing.iterations_run} iterations "
          f"({result.runtime_s:.1f} s):")
    print(f"  execution time:      {ev.makespan_ms:.2f} ms "
          f"({'meets' if ev.meets(MOTION_DEADLINE_MS) else 'MISSES'} the constraint)")
    print(f"  contexts:            {ev.num_contexts}")
    print(f"  hw/sw split:         {ev.hw_tasks} hardware / {ev.sw_tasks} software")
    print(f"  reconfiguration:     {ev.initial_reconfig_ms:.2f} ms initial + "
          f"{ev.dynamic_reconfig_ms:.2f} ms dynamic")
    print(f"  bus transfers:       {ev.comm_ms:.2f} ms total")
    print(f"  CLBs configured:     {ev.clbs_used}")

    schedule = extract_schedule(
        result.best_solution, explorer.evaluator.realize(result.best_solution)
    )
    print("\n" + render_gantt(schedule, width=78))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
