#!/usr/bin/env python3
"""Quickstart: map the paper's benchmark onto the paper's platform.

Builds a declarative :class:`~repro.api.specs.ExplorationRequest` (the
same document ``repro explore --spec`` runs and ``--dump-spec`` emits),
executes it through :func:`repro.api.explore`, and prints the best
mapping, its cost decomposition, and an ASCII Gantt chart.

Usage::

    python examples/quickstart.py [seed]
"""

import sys

from repro import extract_schedule, render_gantt
from repro.api import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    ExplorationRequest,
    explore,
)
from repro.mapping.evaluator import Evaluator


def build_request(seed: int = 7) -> ExplorationRequest:
    return ExplorationRequest(
        kind="single",
        application=ApplicationSpec(kind="builtin", name="motion"),
        architecture=ArchitectureSpec(kind="builtin", n_clbs=2000),
        budget=BudgetSpec(iterations=8000, warmup_iterations=1200),
        seed=seed,
    )


def main(seed: int = 7) -> None:
    request = build_request(seed)
    response = explore(request)

    deadline = response.summary["deadline_ms"]
    result = response.best_result
    application = result.best_solution.application
    print(f"application: {application.name}, {len(application)} tasks, "
          f"all-software time {application.total_sw_time_ms():.1f} ms "
          f"(constraint: {deadline:.0f} ms)")

    ev = response.best["evaluation"]
    print(f"\nbest mapping after {result.iterations_run} iterations "
          f"({result.runtime_s:.1f} s):")
    print(f"  execution time:      {ev['makespan_ms']:.2f} ms "
          f"({'meets' if response.summary['deadline_met'] else 'MISSES'} "
          f"the constraint)")
    print(f"  contexts:            {ev['num_contexts']}")
    print(f"  hw/sw split:         {ev['hw_tasks']} hardware / "
          f"{ev['sw_tasks']} software")
    print(f"  reconfiguration:     {ev['initial_reconfig_ms']:.2f} ms initial + "
          f"{ev['dynamic_reconfig_ms']:.2f} ms dynamic")
    print(f"  bus transfers:       {ev['comm_ms']:.2f} ms total")
    print(f"  CLBs configured:     {ev['clbs_used']}")

    solution = result.best_solution
    evaluator = Evaluator(solution.application, solution.architecture)
    schedule = extract_schedule(solution, evaluator.realize(solution))
    print("\n" + render_gantt(schedule, width=78))

    print("\nthe same run as data (save it, ship it, `repro explore --spec` it):")
    print(request.to_json())


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
