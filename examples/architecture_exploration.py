#!/usr/bin/env python3
"""Architecture exploration — the paper's *general* mode (moves m3/m4).

The DATE'05 experiments pin the platform to one processor + one DRLC.
The underlying method, however, "explores the types and numbers of
programmable and dedicated computing resources in the system in order
to minimize the global system cost while satisfying performance
constraints".  This example turns that mode on *declaratively*: the
seed platform, the resource catalog the annealer may instantiate from,
and the system-cost objective are all data inside one
:class:`~repro.api.specs.ExplorationRequest` — and because the catalog
is declarative (not lambdas), the same spec runs under ``jobs=N``
worker processes or from a ``repro explore --spec`` file.

Usage::

    python examples/architecture_exploration.py [deadline_ms]
"""

import sys

from repro.api import (
    ApplicationSpec,
    ArchitectureSpec,
    BudgetSpec,
    EngineSpec,
    ExplorationRequest,
    StrategySpec,
    explore,
)
from repro.io import architecture_to_dict
from repro.arch.architecture import Architecture
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit

#: What the annealer may instantiate (m3) — plain data, the io.py
#: resource vocabulary.
CATALOG = (
    {"kind": "processor", "speed_factor": 1.0, "monetary_cost": 1.0},
    {"kind": "reconfigurable", "n_clbs": 1000,
     "reconfig_ms_per_clb": 0.0225, "monetary_cost": 2.0},
    {"kind": "asic", "monetary_cost": 4.0},
)


def seed_platform() -> Architecture:
    architecture = Architecture(
        "seed_platform", bus=Bus(rate_kbytes_per_ms=50.0)
    )
    architecture.add_resource(Processor("arm922", monetary_cost=1.0))
    architecture.add_resource(
        ReconfigurableCircuit(
            "virtex", n_clbs=1000, reconfig_ms_per_clb=0.0225,
            monetary_cost=2.0,
        )
    )
    return architecture


def build_request(deadline_ms: float) -> ExplorationRequest:
    return ExplorationRequest(
        kind="single",
        application=ApplicationSpec(kind="builtin", name="motion"),
        architecture=ArchitectureSpec(
            kind="inline", document=architecture_to_dict(seed_platform())
        ),
        strategy=StrategySpec(
            "sa",
            {"p_zero": 0.05},          # enables m3 / m4 draws
            cost={"kind": "system", "deadline_ms": deadline_ms,
                  "penalty_per_ms": 50.0},
            catalog=CATALOG,
        ),
        budget=BudgetSpec(iterations=8000, warmup_iterations=1200),
        engine=EngineSpec("full"),
        seed=19,
        deadline_ms=deadline_ms,
    )


def main(deadline_ms: float = 40.0) -> None:
    request = build_request(deadline_ms)
    platform = seed_platform()
    print(f"seed platform: {[r.name for r in platform.resources()]}, "
          f"cost {platform.total_monetary_cost():.1f}, "
          f"deadline {deadline_ms:.0f} ms")

    response = explore(request)
    result = response.best_result

    final_arch = result.best_solution.architecture
    ev = response.best["evaluation"]
    print(f"\nexplored for {result.runtime_s:.1f} s "
          f"({result.iterations_run} iterations)")
    print(f"final platform: "
          f"{[f'{type(r).__name__}:{r.name}' for r in final_arch.resources()]}")
    print(f"  monetary cost: {final_arch.total_monetary_cost():.1f}")
    print(f"  execution:     {ev['makespan_ms']:.2f} ms "
          f"({'meets' if ev['makespan_ms'] <= deadline_ms else 'misses'} "
          f"deadline)")
    print(f"  hw/sw split:   {ev['hw_tasks']}/{ev['sw_tasks']}, "
          f"{ev['num_contexts']} contexts")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 40.0)
