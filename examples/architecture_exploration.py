#!/usr/bin/env python3
"""Architecture exploration — the paper's *general* mode (moves m3/m4).

The DATE'05 experiments pin the platform to one processor + one DRLC.
The underlying method, however, "explores the types and numbers of
programmable and dedicated computing resources in the system in order
to minimize the global system cost while satisfying performance
constraints".  This example turns that mode on: starting from a small
platform, the annealer may instantiate resources from a catalog (and
remove drained ones) while minimizing monetary cost plus a deadline
penalty.

Usage::

    python examples/architecture_exploration.py [deadline_ms]
"""

import sys

from repro import DesignSpaceExplorer, SystemCost, motion_detection_application
from repro.arch.architecture import Architecture
from repro.arch.asic import Asic
from repro.arch.bus import Bus
from repro.arch.processor import Processor
from repro.arch.reconfigurable import ReconfigurableCircuit

CATALOG = [
    lambda name: Processor(name, speed_factor=1.0, monetary_cost=1.0),
    lambda name: ReconfigurableCircuit(
        name, n_clbs=1000, reconfig_ms_per_clb=0.0225, monetary_cost=2.0
    ),
    lambda name: Asic(name, monetary_cost=4.0),
]


def main(deadline_ms: float = 40.0) -> None:
    application = motion_detection_application()
    architecture = Architecture("seed_platform", bus=Bus(rate_kbytes_per_ms=50.0))
    architecture.add_resource(Processor("arm922", monetary_cost=1.0))
    architecture.add_resource(
        ReconfigurableCircuit(
            "virtex", n_clbs=1000, reconfig_ms_per_clb=0.0225, monetary_cost=2.0
        )
    )

    print(f"seed platform: {[r.name for r in architecture.resources()]}, "
          f"cost {architecture.total_monetary_cost():.1f}, "
          f"deadline {deadline_ms:.0f} ms")

    explorer = DesignSpaceExplorer(
        application,
        architecture,
        iterations=8000,
        warmup_iterations=1200,
        seed=19,
        p_zero=0.05,          # enables m3 / m4 draws
        catalog=CATALOG,
        cost_function=SystemCost(deadline_ms=deadline_ms, penalty_per_ms=50.0),
    )
    result = explorer.run()

    final_arch = result.best_solution.architecture
    ev = result.best_evaluation
    print(f"\nexplored for {result.runtime_s:.1f} s "
          f"({result.annealing.iterations_run} iterations)")
    print(f"final platform: "
          f"{[f'{type(r).__name__}:{r.name}' for r in final_arch.resources()]}")
    print(f"  monetary cost: {final_arch.total_monetary_cost():.1f}")
    print(f"  execution:     {ev.makespan_ms:.2f} ms "
          f"({'meets' if ev.makespan_ms <= deadline_ms else 'misses'} deadline)")
    print(f"  hw/sw split:   {ev.hw_tasks}/{ev.sw_tasks}, "
          f"{ev.num_contexts} contexts")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 40.0)
