#!/usr/bin/env python3
"""Walkthrough of the paper's Fig. 1 concepts on a 10-task graph.

Builds a task graph shaped like Fig. 1(a) (tasks A..J), realizes a
spatio-temporal partitioning in the spirit of Fig. 1(b) — three tasks
ordered on the processor, the rest split into two DRLC execution
contexts — and prints the induced search graph and schedule (Fig. 1(c)):
the ``Esw`` software sequentialization edges, the ``Ehw`` context
sequentialization edges weighted by the partial reconfiguration of the
next context, and the serialized bus transactions.  The epilogue hands
the same instance, as data, to the public API
(:func:`repro.api.explore`) and lets the annealer try to beat the
hand-built partitioning.

Usage::

    python examples/fig1_walkthrough.py
"""

from repro import (
    Application,
    Architecture,
    Bus,
    Evaluator,
    Implementation,
    Processor,
    ReconfigurableCircuit,
    Solution,
    Task,
    extract_schedule,
    render_gantt,
)

NAMES = "ABCDEFGHIJ"


def build_application() -> Application:
    app = Application("fig1_example")
    impl = lambda c, t: (Implementation(clbs=c, time_ms=t),)
    times = {  # software / (hardware clbs, hardware time)
        "A": (2.0, None), "B": (3.0, None), "C": (2.5, None),
        "D": (4.0, (120, 0.8)), "E": (3.0, (100, 0.6)),
        "F": (2.0, (80, 0.5)), "G": (3.5, (140, 0.7)),
        "H": (2.0, (90, 0.4)), "I": (2.5, (110, 0.6)),
        "J": (1.5, (60, 0.3)),
    }
    for index, name in enumerate(NAMES):
        sw, hw = times[name]
        app.add_task(Task(
            index, name, "F", sw,
            impl(*hw) if hw else (),
        ))
    edges = [  # a two-stage fan-out/fan-in like Fig. 1(a)
        ("A", "C"), ("A", "D"), ("B", "E"),
        ("C", "F"), ("D", "F"), ("D", "G"), ("E", "G"),
        ("F", "H"), ("G", "I"), ("G", "J"), ("H", "I"),
    ]
    for src, dst in edges:
        app.add_dependency(NAMES.index(src), NAMES.index(dst), 4.0)
    app.validate()
    return app


def main() -> None:
    app = build_application()
    arch = Architecture("fig1_arch", bus=Bus(rate_kbytes_per_ms=20.0))
    arch.add_resource(Processor("proc"))
    arch.add_resource(ReconfigurableCircuit("drc", n_clbs=450,
                                            reconfig_ms_per_clb=0.01))

    # Fig. 1(b)-style solution: A -> C -> B on the processor, two
    # execution contexts on the DRLC.
    solution = Solution(app, arch)
    for name in ("A", "C", "B"):
        solution.assign_to_processor(NAMES.index(name), "proc")
    solution.spawn_context(NAMES.index("D"), "drc")        # context 0
    solution.assign_to_context(NAMES.index("E"), "drc", 0)
    solution.assign_to_context(NAMES.index("F"), "drc", 0)
    solution.spawn_context(NAMES.index("G"), "drc")        # context 1
    solution.assign_to_context(NAMES.index("H"), "drc", 1)
    solution.assign_to_context(NAMES.index("I"), "drc", 1)
    # J joins context 1 only if capacity allows; otherwise a third
    # context would be spawned by the moves — here we place it directly.
    solution.assign_to_context(NAMES.index("J"), "drc", 1)
    solution.validate()

    print("solution:", solution.summary())
    print("context 0 initial nodes:",
          [NAMES[t] for t in solution.context_initial_nodes("drc", 0)])
    print("context 0 terminal nodes:",
          [NAMES[t] for t in solution.context_terminal_nodes("drc", 0)])
    print("context 1 initial nodes:",
          [NAMES[t] for t in solution.context_initial_nodes("drc", 1)])

    evaluator = Evaluator(app, arch)
    graph = evaluator.realize(solution)

    print("\nsearch-graph edges (E + Esw + Ehw + bus chain):")
    def label(node):
        return NAMES[node] if isinstance(node, int) else str(node)
    for src, dst, weight in sorted(graph.dag.edges(), key=lambda e: str(e)):
        tag = f"  w={weight:.2f}" if weight else ""
        print(f"  {label(src):>22} -> {label(dst):<22}{tag}")

    ev = evaluator.evaluate(solution)
    print(f"\nlongest path (execution time): {ev.makespan_ms:.2f} ms")
    print(f"reconfiguration: initial {ev.initial_reconfig_ms:.2f} ms, "
          f"dynamic {ev.dynamic_reconfig_ms:.2f} ms")

    schedule = extract_schedule(solution, graph)
    print("\n" + render_gantt(schedule, width=70))

    # Epilogue: the same instance as a declarative request — can the
    # annealer beat the hand-built Fig. 1(b) partitioning?
    from repro.api import (
        ApplicationSpec,
        ArchitectureSpec,
        BudgetSpec,
        ExplorationRequest,
        explore,
    )
    from repro.io import application_to_dict, architecture_to_dict

    request = ExplorationRequest(
        kind="single",
        application=ApplicationSpec(
            kind="inline", document=application_to_dict(app)
        ),
        architecture=ArchitectureSpec(
            kind="inline", document=architecture_to_dict(arch)
        ),
        budget=BudgetSpec(iterations=2000, warmup_iterations=400),
        seed=1,
    )
    explored = explore(request).best["evaluation"]
    print(f"\nannealer on the same instance (2000 iterations): "
          f"{explored['makespan_ms']:.2f} ms vs {ev.makespan_ms:.2f} ms "
          f"hand-built ({explored['num_contexts']} vs {ev.num_contexts} "
          f"contexts)")


if __name__ == "__main__":
    main()
